//! Elastic membership: an epoch-numbered alive set per world, gossip-style
//! failure detection, and *shrinking* ring collectives that re-derive their
//! neighbors from the current alive set.
//!
//! The failure model is **fail-stop**: a rank that dies stays dead, and a
//! suspicion raised after bounded retries is trusted (no healthy rank is
//! falsely evicted under crash faults, because suspicion is driven by
//! channel disconnection — [`CommError::PeerLost`] — which only a dead
//! rank's dropped endpoints can produce).
//!
//! ## Protocol
//!
//! A rank that hits `PeerLost` (or exhausts its deterministic retry budget
//! on `Timeout`) mid-collective does three things, in order:
//!
//! 1. **abort pill** — sends a [`CtrlMsg`] with [`CtrlKind::Abort`] to its
//!    alive non-suspect ring neighbors so they stop blocking on data that
//!    will never come (they observe [`CommError::Aborted`] and join in);
//! 2. **agreement** — enters [`agree_on_eviction`], a leader-based round
//!    (lowest alive non-suspect rank leads): followers send `Propose`, the
//!    leader merges every proposal, bumps the epoch iff the union is
//!    non-empty, and distributes `Decide`; a drain barrier (`Ack`/`Go`)
//!    guarantees every stale in-flight message from the aborted collective
//!    is discarded on every survivor before anyone resumes sending;
//! 3. **re-derive and re-run** — the collective returns
//!    [`CommError::Evicted`] and the caller re-runs it on the shrunken
//!    ring.
//!
//! Ranks whose collective attempt *succeeded* still join the agreement with
//! an empty proposal — the agreement doubles as a commit barrier, so a
//! survivor can never run ahead into the next collective while its peers
//! are still deciding who died.
//!
//! The drain barrier is correct because channel sends enqueue immediately:
//! every data send precedes its sender's `Propose` (program order), every
//! `Propose` precedes the leader's `Decide`, and every `Decide` precedes
//! the receiver's drain — so by the time a survivor drains, all stale
//! messages addressed to it are already in its queues.

use crate::comm::{Communicator, CtrlKind, CtrlMsg, MsgData};
use crate::fault::{splitmix64, CommError};
use burst_obs::SpanKind;
use burst_tensor::Mat;

/// Burn one retry backoff as virtual compute and count it (the metrics
/// layer reports control-plane retries as a fault-survival signal).
fn backoff_retry(comm: &mut Communicator, policy: &RetryPolicy, attempt: u32) {
    comm.faults.retries += 1;
    comm.advance_compute_named("retry_backoff", policy.backoff(attempt, comm.rank()));
}

/// Epoch-numbered view of which ranks are alive. Every rank keeps its own
/// copy; the eviction agreement keeps the copies consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    epoch: u64,
    alive: Vec<bool>,
}

impl Membership {
    /// A fresh view: every rank of an `n`-rank world alive, epoch 0.
    pub fn new(world_size: usize) -> Self {
        assert!(world_size > 0, "membership needs at least one rank");
        Membership {
            epoch: 0,
            alive: vec![true; world_size],
        }
    }

    /// Total ranks the world started with (alive or not).
    pub fn world_size(&self) -> usize {
        self.alive.len()
    }

    /// Current membership epoch (bumped once per eviction round).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Force the epoch (applied from a leader's `Decide`).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive.get(rank).copied().unwrap_or(false)
    }

    /// The alive ranks in ascending order — the member list of every
    /// shrinking collective.
    pub fn alive_ranks(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&r| self.alive[r]).collect()
    }

    pub fn num_alive(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Position of `rank` within the alive list (its ring slot), if alive.
    pub fn pos_of(&self, rank: usize) -> Option<usize> {
        if !self.is_alive(rank) {
            return None;
        }
        Some((0..rank).filter(|&r| self.alive[r]).count())
    }

    /// Mark `rank` dead. Returns whether the view changed. Does **not**
    /// bump the epoch — only the agreement does that, once per round.
    pub fn evict(&mut self, rank: usize) -> bool {
        if rank < self.alive.len() && self.alive[rank] {
            self.alive[rank] = false;
            true
        } else {
            false
        }
    }

    /// Mark `rank` alive again — the inverse of [`Membership::evict`].
    /// Returns whether the view changed. Like `evict`, this does **not**
    /// bump the epoch; only the join agreement does, once per admitted
    /// round.
    pub fn readmit(&mut self, rank: usize) -> bool {
        if rank < self.alive.len() && !self.alive[rank] {
            self.alive[rank] = true;
            true
        } else {
            false
        }
    }

    /// Cyclic next alive rank after `rank` (returns `rank` when alone).
    pub fn next_alive(&self, rank: usize) -> usize {
        let n = self.alive.len();
        for step in 1..=n {
            let r = (rank + step) % n;
            if self.alive[r] {
                return r;
            }
        }
        rank
    }

    /// Cyclic previous alive rank before `rank` (returns `rank` when alone).
    pub fn prev_alive(&self, rank: usize) -> usize {
        let n = self.alive.len();
        for step in 1..=n {
            let r = (rank + n - step) % n;
            if self.alive[r] {
                return r;
            }
        }
        rank
    }
}

/// Bounded, virtual-clock-aware, seed-deterministic retry schedule applied
/// before a timed-out peer is declared dead. Backoff is exponential with
/// seeded jitter in `[0.5, 1.0]·cap`, burned as virtual compute time so
/// the schedule is bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Receive attempts before the peer is suspected (>= 1).
    pub max_attempts: u32,
    /// First backoff, in virtual seconds.
    pub base_backoff: f64,
    /// Backoff cap, in virtual seconds.
    pub max_backoff: f64,
    /// Jitter seed (mixes with rank and attempt index).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: 1e-4,
            max_backoff: 1e-2,
            seed: 0x9e37_79b9,
        }
    }
}

impl RetryPolicy {
    /// The virtual-time backoff before retry `attempt` (0-based) on `rank`.
    /// Deterministic in (seed, rank, attempt).
    pub fn backoff(&self, attempt: u32, rank: usize) -> f64 {
        let raw = (self.base_backoff * f64::from(1u32 << attempt.min(20))).min(self.max_backoff);
        let h = splitmix64(self.seed ^ ((rank as u64) << 32) ^ u64::from(attempt));
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        raw * (0.5 + 0.5 * frac)
    }
}

/// The outcome of one eviction agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgreeOutcome {
    /// Ranks evicted this round (empty = nothing changed, commit).
    pub evicted: Vec<usize>,
    /// The membership epoch after the round.
    pub epoch: u64,
}

fn ctrl(kind: CtrlKind, epoch: u64, suspects: Vec<usize>) -> MsgData {
    MsgData::Ctrl(CtrlMsg {
        kind,
        epoch,
        suspects,
    })
}

/// Ranks a failure implicates, for gossip: the lost/late peer, or the
/// suspect list an abort pill carried.
fn suspects_of(e: &CommError) -> Vec<usize> {
    match e {
        CommError::PeerLost { src, .. } | CommError::Timeout { src, .. } => vec![*src],
        CommError::Aborted { suspects, .. } => suspects.clone(),
        _ => Vec::new(),
    }
}

/// [`suspects_of`], filtered through the failure detector: a terminated
/// peer (channel disconnect) is dead by construction and an abort pill
/// carries its sender's already-confirmed suspicion, but a *timeout* is
/// only escalated when the detector's accumulated evidence (consecutive
/// receive failures vs the policy's `max_attempts`, or phi from the
/// heartbeat/retransmit channels) confirms the peer dead rather than
/// slow. With the default detector config this reproduces the
/// pre-detector escalation decision exactly, because any timeout that
/// escapes a `max_attempts` retry loop has recorded exactly that many
/// consecutive failures.
fn confirmed_suspects(comm: &mut Communicator, e: &CommError, policy: &RetryPolicy) -> Vec<usize> {
    match e {
        CommError::Timeout { src, .. } => {
            if comm.peer_confirmed_dead(*src, policy.max_attempts) {
                vec![*src]
            } else {
                Vec::new()
            }
        }
        other => suspects_of(other),
    }
}

/// Best-effort abort pills to both alive non-suspect ring neighbors, so a
/// peer blocked on this rank's data observes [`CommError::Aborted`] instead
/// of hanging until the wall backstop. Send failures are ignored — a dead
/// neighbor needs no pill.
pub fn send_abort(comm: &mut Communicator, m: &Membership, suspects: &[usize]) {
    let me = comm.rank();
    let healthy: Vec<usize> = m
        .alive_ranks()
        .into_iter()
        .filter(|r| !suspects.contains(r))
        .collect();
    let Some(pos) = healthy.iter().position(|&r| r == me) else {
        return;
    };
    if healthy.len() < 2 {
        return;
    }
    let g = healthy.len();
    let mut targets = vec![healthy[(pos + 1) % g]];
    let prev = healthy[(pos + g - 1) % g];
    if prev != targets[0] {
        targets.push(prev);
    }
    for t in targets {
        let _ = comm.try_send(t, ctrl(CtrlKind::Abort, m.epoch(), suspects.to_vec()));
    }
}

/// Receive from `src` until a control message of kind `want` arrives.
/// Stale data payloads from the aborted collective are discarded; abort
/// pills fold their suspect lists into `gossip`. Timeouts retry on the
/// policy's schedule before giving up.
fn wait_for_ctrl(
    comm: &mut Communicator,
    src: usize,
    want: CtrlKind,
    policy: &RetryPolicy,
    gossip: &mut Vec<usize>,
) -> Result<CtrlMsg, CommError> {
    let mut attempt = 0u32;
    loop {
        match comm.try_recv(src) {
            Ok(MsgData::Ctrl(c)) if c.kind == want => return Ok(c),
            Ok(MsgData::Ctrl(c)) if c.kind == CtrlKind::Abort => {
                gossip.extend(c.suspects);
            }
            Ok(_) => {} // stale data from the aborted collective
            Err(CommError::Timeout { .. }) if attempt + 1 < policy.max_attempts.max(1) => {
                backoff_retry(comm, policy, attempt);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// True when the continuing partition after an eviction decision is a
/// strict minority of the pre-agreement membership. The winning side of a
/// network split keeps at least half the ranks, so a side whose decision
/// evicts a strict majority has necessarily mistaken a partition (or its
/// own isolation) for mass death; continuing would train a divergent
/// split-brain replica. An exact half keeps today's behavior: a two-rank
/// ring shrinking to one survivor still continues.
fn quorum_lost(m: &Membership, pre_alive: usize, evicted: &[usize]) -> bool {
    !evicted.is_empty() && 2 * m.num_alive() < pre_alive
}

/// Park the local rank after a lost quorum: mark it evicted in its own
/// membership and report the self-eviction. Callers observe the rank in
/// the returned set (or `!m.is_alive(me)`) and park instead of training
/// ahead on the minority side of a split.
fn park_self(comm: &mut Communicator, m: &mut Membership, epoch: u64) -> AgreeOutcome {
    let me = comm.rank();
    m.evict(me);
    comm.span_instant(SpanKind::Fault, "minority_partition");
    comm.span_end();
    AgreeOutcome {
        evicted: vec![me],
        epoch,
    }
}

/// Leader-based eviction agreement; see the module docs for the protocol.
///
/// Every alive rank must call this with its current suspect list (empty if
/// its collective attempt succeeded). Returns the agreed eviction set and
/// the updated epoch; `m` is updated in place. The call is also a barrier:
/// when it returns, every survivor has applied the same decision and
/// drained every stale message addressed to it.
///
/// **Quorum rule.** A decision that would leave the continuing side with a
/// strict minority of the pre-agreement membership parks the local rank
/// instead: the call returns `evicted = [me]` with the rank marked dead in
/// its own `m`. This is what stops a live-but-unreachable rank — one whose
/// peers all stopped answering because *they* evicted *it* — from evicting
/// the entire majority in absentia and training ahead as a split brain.
pub fn agree_on_eviction(
    comm: &mut Communicator,
    m: &mut Membership,
    suspects: &[usize],
    policy: &RetryPolicy,
) -> Result<AgreeOutcome, CommError> {
    let me = comm.rank();
    comm.span_begin(SpanKind::Eviction, "agree_on_eviction");
    let mut suspects: Vec<usize> = suspects
        .iter()
        .copied()
        .filter(|&s| s != me && m.is_alive(s))
        .collect();
    loop {
        suspects.sort_unstable();
        suspects.dedup();
        let healthy: Vec<usize> = m
            .alive_ranks()
            .into_iter()
            .filter(|r| !suspects.contains(r))
            .collect();
        let leader = healthy.first().copied().unwrap_or(me);
        if leader == me {
            // Leader: gather proposals from every healthy peer, merge,
            // decide, then run the drain barrier.
            let mut union = suspects.clone();
            for &p in healthy.iter().filter(|&&p| p != me) {
                let mut gossip = Vec::new();
                match wait_for_ctrl(comm, p, CtrlKind::Propose, policy, &mut gossip) {
                    Ok(c) => union.extend(c.suspects),
                    // A peer that dies while proposing is itself evicted.
                    Err(_) => union.push(p),
                }
                union.extend(gossip);
            }
            union.sort_unstable();
            union.dedup();
            union.retain(|&r| r != me && m.is_alive(r));
            let evicted = union;
            let epoch = if evicted.is_empty() {
                m.epoch()
            } else {
                m.epoch() + 1
            };
            let pre_alive = m.num_alive();
            for &r in &evicted {
                m.evict(r);
            }
            m.set_epoch(epoch);
            let survivors: Vec<usize> = m.alive_ranks().into_iter().filter(|&r| r != me).collect();
            for &p in &survivors {
                let _ = comm.try_send(p, ctrl(CtrlKind::Decide, epoch, evicted.clone()));
            }
            for &p in &survivors {
                // Tolerant: a follower dying mid-barrier is caught on the
                // next collective attempt.
                let _ = wait_for_ctrl(comm, p, CtrlKind::Ack, policy, &mut Vec::new());
            }
            comm.drain_all();
            for &p in &survivors {
                let _ = comm.try_send(p, ctrl(CtrlKind::Go, epoch, Vec::new()));
            }
            if !evicted.is_empty() {
                comm.span_instant(SpanKind::Epoch, "epoch_bump");
            }
            if quorum_lost(m, pre_alive, &evicted) {
                return Ok(park_self(comm, m, epoch));
            }
            comm.span_end();
            return Ok(AgreeOutcome { evicted, epoch });
        }
        // Follower: propose to the leader, wait for its decision. A dead
        // leader becomes a suspect and the loop re-elects.
        if comm
            .try_send(leader, ctrl(CtrlKind::Propose, m.epoch(), suspects.clone()))
            .is_err()
        {
            suspects.push(leader);
            continue;
        }
        let mut gossip = Vec::new();
        match wait_for_ctrl(comm, leader, CtrlKind::Decide, policy, &mut gossip) {
            Ok(decide) => {
                let pre_alive = m.num_alive();
                for &r in &decide.suspects {
                    m.evict(r);
                }
                m.set_epoch(decide.epoch);
                comm.drain_all();
                let _ = comm.try_send(leader, ctrl(CtrlKind::Ack, decide.epoch, Vec::new()));
                let _ = wait_for_ctrl(comm, leader, CtrlKind::Go, policy, &mut Vec::new());
                if !decide.suspects.is_empty() {
                    comm.span_instant(SpanKind::Epoch, "epoch_bump");
                }
                if quorum_lost(m, pre_alive, &decide.suspects) {
                    return Ok(park_self(comm, m, decide.epoch));
                }
                comm.span_end();
                return Ok(AgreeOutcome {
                    evicted: decide.suspects,
                    epoch: decide.epoch,
                });
            }
            Err(_) => {
                suspects.push(leader);
                suspects.extend(gossip);
            }
        }
    }
}

/// The outcome of one join agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOutcome {
    /// Ranks re-admitted this round (empty = the join round aborted, e.g.
    /// every petitioner died mid-protocol).
    pub admitted: Vec<usize>,
    /// The membership epoch after the round.
    pub epoch: u64,
}

/// Leader-based re-admission agreement — the **Join leg** of the epoch
/// protocol, the inverse of [`agree_on_eviction`].
///
/// Every current member calls this with the scheduled `joiners` set (known
/// deterministically to every rank — a real cluster's scheduler plays this
/// role); every joiner calls it too, with the same set. Roles:
///
/// * **joiner** — waits parked for the leader's [`CtrlKind::Join`] invite
///   (sending nothing unsolicited: a drain barrier the members run while it
///   waits would sweep an early petition away), replies `Join`, waits for
///   `Decide`, applies it, drains, `Ack`s and waits for `Go`. A joiner the
///   decision did not admit keeps waiting parked.
/// * **member (follower)** — proposes the join set, waits for `Decide`,
///   applies, drains, `Ack`/`Go` — the same drain barrier as eviction, so
///   no stale pre-join message can leak into the grown ring.
/// * **leader** — gathers the member proposals (the commit barrier), then
///   invites each scheduled joiner and collects its reply (a joiner that
///   dies mid-join is simply dropped from the admitted set — the abort pill
///   of the join leg is "you are not in the `Decide`"), bumps the epoch iff
///   someone was admitted, and distributes `Decide`/`Go` to members **and**
///   admitted joiners.
///
/// A member that dies mid-join surfaces as a typed error; callers fall back
/// to [`agree_on_eviction`], exactly as for any other collective failure.
pub fn agree_on_join(
    comm: &mut Communicator,
    m: &mut Membership,
    joiners: &[usize],
    policy: &RetryPolicy,
) -> Result<JoinOutcome, CommError> {
    let me = comm.rank();
    comm.span_begin(SpanKind::Join, "agree_on_join");
    let joiners: Vec<usize> = {
        let mut j: Vec<usize> = joiners
            .iter()
            .copied()
            .filter(|&r| r < m.world_size() && !m.is_alive(r))
            .collect();
        j.sort_unstable();
        j.dedup();
        j
    };
    let joining = joiners.contains(&me);
    assert!(
        joining || m.is_alive(me),
        "rank {me}: join agreement from a rank that is neither member nor joiner"
    );
    let members = m.alive_ranks();
    let leader = members[0];
    let finish = |comm: &mut Communicator, m: &mut Membership, admitted: Vec<usize>, epoch| {
        for &r in &admitted {
            m.readmit(r);
            comm.span_instant(SpanKind::Rejoin, "rank_readmitted");
        }
        m.set_epoch(epoch);
        comm.span_end();
        Ok(JoinOutcome { admitted, epoch })
    };
    if joining {
        // Petitioner: wait for the leader's invite before sending anything —
        // a parked rank's unsolicited message could be swept up by a drain
        // barrier the members run while it waits. Then: reply → Decide →
        // drain → Ack → Go.
        wait_for_ctrl(comm, leader, CtrlKind::Join, policy, &mut Vec::new())?;
        comm.try_send(leader, ctrl(CtrlKind::Join, 0, vec![me]))?;
        let decide = wait_for_ctrl(comm, leader, CtrlKind::Decide, policy, &mut Vec::new())?;
        if !decide.suspects.contains(&me) {
            // Not admitted this round; stay parked.
            comm.span_end();
            return Ok(JoinOutcome {
                admitted: Vec::new(),
                epoch: decide.epoch,
            });
        }
        comm.drain_all();
        comm.try_send(leader, ctrl(CtrlKind::Ack, decide.epoch, Vec::new()))?;
        wait_for_ctrl(comm, leader, CtrlKind::Go, policy, &mut Vec::new())?;
        // A parked rank may have missed evictions; the leader ships its
        // authoritative alive set so the joiner's view is exact.
        let flags = recv_vec_retry(comm, leader, policy)?;
        for (r, f) in flags.iter().enumerate() {
            if *f > 0.5 {
                m.readmit(r);
            } else {
                m.evict(r);
            }
        }
        return finish(comm, m, decide.suspects, decide.epoch);
    }
    if leader == me {
        // Gather member proposals first (the commit half of the barrier). A
        // member dying here is an eviction concern — bail with the error.
        for &p in members.iter().filter(|&&p| p != me) {
            wait_for_ctrl(comm, p, CtrlKind::Propose, policy, &mut Vec::new())?;
        }
        // Invite each petitioner and collect its reply; a joiner that dies
        // mid-protocol is dropped (the abort pill of the join leg is "you
        // are not in the `Decide`"), nothing else stops.
        let mut admitted: Vec<usize> = Vec::new();
        for &j in &joiners {
            if comm
                .try_send(j, ctrl(CtrlKind::Join, m.epoch(), Vec::new()))
                .is_ok()
                && wait_for_ctrl(comm, j, CtrlKind::Join, policy, &mut Vec::new()).is_ok()
            {
                admitted.push(j);
            }
        }
        let epoch = if admitted.is_empty() {
            m.epoch()
        } else {
            m.epoch() + 1
        };
        let audience: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&p| p != me)
            .chain(admitted.iter().copied())
            .collect();
        for &p in &audience {
            comm.try_send(p, ctrl(CtrlKind::Decide, epoch, admitted.clone()))?;
        }
        for &p in &audience {
            let _ = wait_for_ctrl(comm, p, CtrlKind::Ack, policy, &mut Vec::new());
        }
        comm.drain_all();
        for &p in &audience {
            let _ = comm.try_send(p, ctrl(CtrlKind::Go, epoch, Vec::new()));
        }
        // Authoritative alive set for each admitted (previously parked)
        // joiner: their own flags plus everything they missed while parked.
        let mut flags: Vec<f32> = (0..m.world_size())
            .map(|r| if m.is_alive(r) { 1.0 } else { 0.0 })
            .collect();
        for &r in &admitted {
            flags[r] = 1.0;
        }
        for &j in &admitted {
            comm.try_send_vec(j, &flags)?;
        }
        if !admitted.is_empty() {
            comm.span_instant(SpanKind::Epoch, "epoch_bump");
        }
        return finish(comm, m, admitted, epoch);
    }
    // Member follower.
    comm.try_send(leader, ctrl(CtrlKind::Propose, m.epoch(), joiners.clone()))?;
    let decide = wait_for_ctrl(comm, leader, CtrlKind::Decide, policy, &mut Vec::new())?;
    comm.drain_all();
    comm.try_send(leader, ctrl(CtrlKind::Ack, decide.epoch, Vec::new()))?;
    let _ = wait_for_ctrl(comm, leader, CtrlKind::Go, policy, &mut Vec::new());
    if !decide.suspects.is_empty() {
        comm.span_instant(SpanKind::Epoch, "epoch_bump");
    }
    finish(comm, m, decide.suspects, decide.epoch)
}

/// Voluntary departure: every current member (leavers included) applies the
/// deterministic leave schedule — evict the leavers, bump the epoch once —
/// and the survivors synchronise on a [`shrink_barrier`]. No agreement
/// round is needed because the schedule is shared knowledge (the scheduler
/// told everyone); the barrier is what makes the departure a clean cut
/// between epochs. Leavers skip the barrier and park.
pub fn agree_on_leave(
    comm: &mut Communicator,
    m: &mut Membership,
    leavers: &[usize],
    policy: &RetryPolicy,
) -> Result<AgreeOutcome, CommError> {
    let me = comm.rank();
    comm.span_begin(SpanKind::Eviction, "voluntary_leave");
    let mut departed: Vec<usize> = Vec::new();
    for &r in leavers {
        if m.evict(r) {
            departed.push(r);
        }
    }
    departed.sort_unstable();
    let epoch = if departed.is_empty() {
        m.epoch()
    } else {
        m.epoch() + 1
    };
    m.set_epoch(epoch);
    if !departed.is_empty() {
        comm.span_instant(SpanKind::Epoch, "epoch_bump");
    }
    if !departed.contains(&me) {
        shrink_barrier(comm, m, policy)?;
    }
    comm.span_end();
    Ok(AgreeOutcome {
        evicted: departed,
        epoch,
    })
}

/// Barrier over the alive set: gather-to-leader + release, mirroring
/// [`Communicator::try_barrier`] on the membership ring.
pub fn shrink_barrier(
    comm: &mut Communicator,
    m: &mut Membership,
    policy: &RetryPolicy,
) -> Result<(), CommError> {
    let (members, pos) = ring_neighbors(comm, m);
    let attempt = (|| {
        if members.len() == 1 {
            return Ok(());
        }
        if pos == 0 {
            for &src in &members[1..] {
                let mut tries = 0u32;
                loop {
                    match comm.try_recv(src) {
                        Ok(_) => break,
                        Err(CommError::Timeout { .. })
                            if tries + 1 < policy.max_attempts.max(1) =>
                        {
                            backoff_retry(comm, policy, tries);
                            tries += 1;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            for &dst in &members[1..] {
                comm.try_send(dst, MsgData::Empty)?;
            }
        } else {
            comm.try_send(members[0], MsgData::Empty)?;
            let mut tries = 0u32;
            loop {
                match comm.try_recv(members[0]) {
                    Ok(_) => break,
                    Err(CommError::Timeout { .. }) if tries + 1 < policy.max_attempts.max(1) => {
                        backoff_retry(comm, policy, tries);
                        tries += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    })();
    finish_collective(comm, m, attempt, policy)
}

/// Receive a vector from `src`, retrying timeouts on the policy schedule.
fn recv_vec_retry(
    comm: &mut Communicator,
    src: usize,
    policy: &RetryPolicy,
) -> Result<Vec<f32>, CommError> {
    let mut attempt = 0u32;
    loop {
        match comm.try_recv_vec(src) {
            Err(CommError::Timeout { .. }) if attempt + 1 < policy.max_attempts.max(1) => {
                backoff_retry(comm, policy, attempt);
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// All-reduce (sum) of a flat vector over the alive set. Mirrors
/// [`Communicator::try_all_reduce_vec`] exactly — leader-gather summed in
/// ascending member order, then broadcast — so a shrunken world's reduction
/// is bit-identical to a fresh world of the same size.
pub fn shrink_all_reduce_vec(
    comm: &mut Communicator,
    m: &mut Membership,
    v: &[f32],
    policy: &RetryPolicy,
) -> Result<Vec<f32>, CommError> {
    let (members, pos) = ring_neighbors(comm, m);
    let g = members.len();
    let attempt = (|| {
        if g == 1 {
            return Ok(v.to_vec());
        }
        if pos == 0 {
            let mut acc = v.to_vec();
            for &src in &members[1..] {
                let part = recv_vec_retry(comm, src, policy)?;
                if part.len() != acc.len() {
                    return Err(CommError::ShapeMismatch {
                        rank: comm.rank(),
                        src,
                        expected: "all-reduce vector of matching length",
                        got: format!("Vec[{}] (expected Vec[{}])", part.len(), acc.len()),
                    });
                }
                for (a, p) in acc.iter_mut().zip(&part) {
                    *a += p;
                }
            }
            for &dst in &members[1..] {
                comm.try_send_vec(dst, &acc)?;
            }
            Ok(acc)
        } else {
            comm.try_send_vec(members[0], v)?;
            recv_vec_retry(comm, members[0], policy)
        }
    })();
    finish_collective(comm, m, attempt, policy)
}

/// All-reduce (sum) of a matrix over the alive set: ring reduce-scatter +
/// all-gather when the rows divide evenly (the same algorithm, and thus the
/// same accumulation order, as [`Communicator::try_all_reduce_mat`] on a
/// fresh world of the alive size), otherwise leader-gather in ascending
/// member order plus broadcast.
pub fn shrink_all_reduce_mat(
    comm: &mut Communicator,
    m: &mut Membership,
    mat: &Mat,
    policy: &RetryPolicy,
) -> Result<Mat, CommError> {
    let g = m.num_alive();
    if g == 1 {
        return Ok(mat.clone());
    }
    if mat.rows().is_multiple_of(g) && mat.rows() >= g {
        let parts = mat.chunk_rows(g);
        let mine = shrink_reduce_scatter_mat(comm, m, &parts, policy)?;
        let gathered = shrink_all_gather_mat(comm, m, &mine, policy)?;
        return Ok(Mat::vstack(&gathered));
    }
    let (members, pos) = ring_neighbors(comm, m);
    let attempt = (|| {
        if pos == 0 {
            let mut acc = mat.clone();
            for &src in &members[1..] {
                let part = recv_mat_retry(comm, src, policy)?;
                if part.shape() != acc.shape() {
                    return Err(CommError::ShapeMismatch {
                        rank: comm.rank(),
                        src,
                        expected: "all-reduce contribution of matching shape",
                        got: format!("Mat {}x{}", part.rows(), part.cols()),
                    });
                }
                acc.add_assign(&part);
            }
            for &dst in &members[1..] {
                comm.try_send_mat(dst, &acc)?;
            }
            Ok(acc)
        } else {
            comm.try_send_mat(members[0], mat)?;
            recv_mat_retry(comm, members[0], policy)
        }
    })();
    finish_collective(comm, m, attempt, policy)
}

/// Receive a matrix from `src`, retrying timeouts on the policy schedule.
fn recv_mat_retry(
    comm: &mut Communicator,
    src: usize,
    policy: &RetryPolicy,
) -> Result<Mat, CommError> {
    let mut attempt = 0u32;
    loop {
        match comm.try_recv_mat(src) {
            Err(CommError::Timeout { .. }) if attempt + 1 < policy.max_attempts.max(1) => {
                backoff_retry(comm, policy, attempt);
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Shared epilogue of every shrinking collective: on failure, pill the
/// neighbors; always join the agreement (commit barrier); convert an
/// agreed eviction into [`CommError::Evicted`] so the caller re-derives
/// its ring and re-runs. A rank observing its *own* crash reports it
/// directly — the dead must not participate in the agreement.
fn finish_collective<T>(
    comm: &mut Communicator,
    m: &mut Membership,
    result: Result<T, CommError>,
    policy: &RetryPolicy,
) -> Result<T, CommError> {
    if matches!(result, Err(CommError::Crashed { .. })) {
        return result;
    }
    let my_suspects = match &result {
        Err(e) => {
            let s = confirmed_suspects(comm, e, policy);
            send_abort(comm, m, &s);
            s
        }
        Ok(_) => Vec::new(),
    };
    let out = agree_on_eviction(comm, m, &my_suspects, policy)?;
    if !out.evicted.is_empty() {
        return Err(CommError::Evicted {
            rank: comm.rank(),
            epoch: out.epoch,
            evicted: out.evicted,
            at: comm.time(),
        });
    }
    result
}

fn ring_neighbors(comm: &Communicator, m: &Membership) -> (Vec<usize>, usize) {
    let me = comm.rank();
    assert!(
        m.is_alive(me),
        "rank {me}: shrinking collective on an evicted rank"
    );
    let members = m.alive_ranks();
    let pos = m.pos_of(me).expect("alive rank has a position");
    (members, pos)
}

/// One step of the shrinking ring: send `data` to the next alive rank,
/// receive from the previous alive rank. On failure the membership
/// agreement runs and [`CommError::Evicted`] tells the caller to re-derive
/// and re-run.
pub fn shrink_ring_shift(
    comm: &mut Communicator,
    m: &mut Membership,
    data: MsgData,
    policy: &RetryPolicy,
) -> Result<MsgData, CommError> {
    let (members, pos) = ring_neighbors(comm, m);
    let g = members.len();
    let attempt = (|| {
        if g == 1 {
            return Ok(data.clone());
        }
        comm.try_send(members[(pos + 1) % g], data.clone())?;
        let prev = members[(pos + g - 1) % g];
        let mut tries = 0u32;
        loop {
            match comm.try_recv(prev) {
                Ok(MsgData::Ctrl(c)) => {
                    return Err(CommError::Aborted {
                        rank: comm.rank(),
                        src: prev,
                        epoch: c.epoch,
                        suspects: c.suspects,
                        at: comm.time(),
                    });
                }
                Err(CommError::Timeout { .. }) if tries + 1 < policy.max_attempts.max(1) => {
                    backoff_retry(comm, policy, tries);
                    tries += 1;
                }
                other => return other,
            }
        }
    })();
    finish_collective(comm, m, attempt, policy)
}

/// Shrinking ring all-gather over the alive set: returns one block per
/// alive rank, indexed by ring position (ascending rank order).
pub fn shrink_all_gather_mat(
    comm: &mut Communicator,
    m: &mut Membership,
    mine: &Mat,
    policy: &RetryPolicy,
) -> Result<Vec<Mat>, CommError> {
    let (members, pos) = ring_neighbors(comm, m);
    let g = members.len();
    let attempt = (|| {
        let mut parts: Vec<Option<Mat>> = vec![None; g];
        parts[pos] = Some(mine.clone());
        let next = members[(pos + 1) % g];
        let prev = members[(pos + g - 1) % g];
        let mut cursor = pos;
        for _ in 0..g.saturating_sub(1) {
            let outgoing = parts[cursor].clone().expect("shrink all-gather invariant");
            let payload = comm.mat_payload(outgoing);
            comm.try_send(next, payload)?;
            let incoming = recv_mat_retry(comm, prev, policy)?;
            cursor = (cursor + g - 1) % g;
            parts[cursor] = Some(incoming);
        }
        Ok(parts
            .into_iter()
            .map(|p| p.expect("shrink all-gather missed a block"))
            .collect())
    })();
    finish_collective(comm, m, attempt, policy)
}

/// Shrinking ring reduce-scatter (sum): `parts[p]` is this rank's
/// contribution to the alive rank at ring position `p` (`parts.len()` must
/// equal the alive count); returns the reduced block this rank owns.
pub fn shrink_reduce_scatter_mat(
    comm: &mut Communicator,
    m: &mut Membership,
    parts: &[Mat],
    policy: &RetryPolicy,
) -> Result<Mat, CommError> {
    let (members, pos) = ring_neighbors(comm, m);
    let g = members.len();
    assert_eq!(
        parts.len(),
        g,
        "rank {}: shrink reduce-scatter: need one part per alive rank \
         ({} given, {g} alive)",
        comm.rank(),
        parts.len()
    );
    let attempt = (|acc: &mut Vec<Mat>| {
        if g == 1 {
            return Ok(acc[0].clone());
        }
        let next = members[(pos + 1) % g];
        let prev = members[(pos + g - 1) % g];
        let mut cursor = (pos + 1) % g;
        for _ in 0..g - 1 {
            let outgoing = acc[cursor].clone();
            let payload = comm.mat_payload(outgoing);
            comm.try_send(prev, payload)?;
            let incoming = recv_mat_retry(comm, next, policy)?;
            cursor = (cursor + 1) % g;
            if incoming.shape() != acc[cursor].shape() {
                return Err(CommError::ShapeMismatch {
                    rank: comm.rank(),
                    src: next,
                    expected: "shrink reduce-scatter block of matching shape",
                    got: format!("Mat {}x{}", incoming.rows(), incoming.cols()),
                });
            }
            acc[cursor].add_assign(&incoming);
        }
        debug_assert_eq!(cursor, pos);
        Ok(acc[pos].clone())
    })(&mut parts.to_vec());
    finish_collective(comm, m, attempt, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::topology::Topology;
    use crate::world::World;

    #[test]
    fn membership_bookkeeping() {
        let mut m = Membership::new(4);
        assert_eq!(m.alive_ranks(), vec![0, 1, 2, 3]);
        assert_eq!(m.pos_of(2), Some(2));
        assert!(m.evict(2));
        assert!(!m.evict(2), "double eviction is a no-op");
        assert_eq!(m.alive_ranks(), vec![0, 1, 3]);
        assert_eq!(m.pos_of(3), Some(2));
        assert_eq!(m.pos_of(2), None);
        assert_eq!(m.next_alive(1), 3);
        assert_eq!(m.prev_alive(3), 1);
        assert_eq!(m.next_alive(3), 0);
        assert_eq!(m.num_alive(), 3);
        assert!(m.readmit(2), "an evicted rank can be re-admitted");
        assert!(!m.readmit(2), "double re-admission is a no-op");
        assert!(!m.readmit(7), "out-of-range re-admission is a no-op");
        assert_eq!(m.alive_ranks(), vec![0, 1, 2, 3]);
        assert_eq!(m.pos_of(2), Some(2));
    }

    #[test]
    fn leave_then_rejoin_restores_the_full_ring() {
        // Rank 2 departs voluntarily, parks, and petitions for re-admission;
        // the grown ring must be the original ring at a higher epoch, and a
        // collective over it must see all four contributions again.
        let world = World::new(Topology::single_node(4));
        let outs = world.run_results(|comm| {
            let mut m = Membership::new(comm.world_size());
            let policy = RetryPolicy::default();
            let leave = agree_on_leave(comm, &mut m, &[2], &policy).unwrap();
            assert_eq!(leave.evicted, vec![2]);
            assert_eq!(leave.epoch, 1);
            let join = agree_on_join(comm, &mut m, &[2], &policy).unwrap();
            let sum = shrink_all_reduce_vec(comm, &mut m, &[comm.rank() as f32], &policy).unwrap();
            (join, m.alive_ranks(), m.epoch(), sum)
        });
        for (r, (join, alive, epoch, sum)) in outs.into_iter().enumerate() {
            assert_eq!(join.admitted, vec![2], "rank {r} must see rank 2 admitted");
            assert_eq!(join.epoch, 2, "leave then join = two epoch bumps");
            assert_eq!(alive, vec![0, 1, 2, 3], "rank {r}: ring must regrow");
            assert_eq!(epoch, 2);
            assert_eq!(sum, vec![6.0], "rank {r}: full-ring reduction");
        }
    }

    #[test]
    fn joiner_crash_mid_join_is_dropped_not_fatal() {
        // Rank 3 leaves, then dies on its very first comm op of the join
        // petition. The leader must drop it from the admitted set and the
        // surviving members complete the round with nothing admitted.
        let plan = FaultPlan::new(13).crash_at_op(3, 0).recv_deadline(60.0);
        let world = World::with_faults(Topology::single_node(4), plan);
        let outs = world.run_faulty::<_, CommError, _>(|comm| {
            let mut m = Membership::new(comm.world_size());
            let policy = RetryPolicy::default();
            // Everyone knows the schedule: rank 3 is leaving. The leaver
            // skips the survivor barrier, so its first comm op is the Join
            // petition — where the crash fires.
            m.evict(3);
            m.set_epoch(1);
            if comm.rank() != 3 {
                shrink_barrier(comm, &mut m, &policy)?;
            }
            let join = agree_on_join(comm, &mut m, &[3], &policy)?;
            Ok((join, m.alive_ranks(), m.epoch()))
        });
        assert!(
            matches!(outs[3].result, Err(CommError::Crashed { rank: 3, .. })),
            "the dead joiner reports its own crash: {:?}",
            outs[3].result
        );
        for (r, out) in outs.iter().enumerate().take(3) {
            let (join, alive, epoch) = out.result.as_ref().expect("member completes");
            assert!(
                join.admitted.is_empty(),
                "rank {r}: a dead petitioner must not be admitted"
            );
            assert_eq!(*alive, vec![0, 1, 2], "rank {r}: ring stays shrunken");
            assert_eq!(*epoch, 1, "rank {r}: aborted join must not bump the epoch");
        }
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let p = RetryPolicy::default();
        for attempt in 0..8 {
            let a = p.backoff(attempt, 3);
            assert_eq!(a, p.backoff(attempt, 3), "backoff must be reproducible");
            assert!(a > 0.0 && a <= p.max_backoff);
        }
        assert!(
            p.backoff(5, 0) >= p.backoff(0, 0),
            "later attempts back off at least as long"
        );
        assert_ne!(p.backoff(0, 0), p.backoff(0, 1), "per-rank jitter");
    }

    #[test]
    fn shrinking_all_gather_survives_a_crashed_rank() {
        // Rank 2 dies on its second comm op; ranks 0 and 1 must agree to
        // evict it and complete the all-gather on the two-rank ring.
        let plan = FaultPlan::new(5).crash_at_op(2, 1).recv_deadline(60.0);
        let world = World::with_faults(Topology::single_node(3), plan);
        let outs = world.run_faulty::<_, CommError, _>(|comm| {
            let mut m = Membership::new(comm.world_size());
            let policy = RetryPolicy::default();
            let mine = Mat::from_vec(1, 2, vec![comm.rank() as f32, 10.0 + comm.rank() as f32]);
            loop {
                match shrink_all_gather_mat(comm, &mut m, &mine, &policy) {
                    Ok(blocks) => return Ok((blocks, m.alive_ranks(), m.epoch())),
                    Err(CommError::Evicted { .. }) => continue,
                    Err(e) => return Err(e),
                }
            }
        });
        assert!(
            matches!(outs[2].result, Err(CommError::Crashed { rank: 2, .. })),
            "the dead rank reports its own crash: {:?}",
            outs[2].result
        );
        for (r, out) in outs.iter().enumerate().take(2) {
            let (blocks, alive, epoch) = out.result.as_ref().expect("survivor completes");
            assert_eq!(*alive, vec![0, 1], "rank {r} must see rank 2 evicted");
            assert_eq!(*epoch, 1, "one eviction round bumps the epoch once");
            assert_eq!(blocks.len(), 2);
            for (pos, b) in blocks.iter().enumerate() {
                assert_eq!(
                    b.as_slice(),
                    &[pos as f32, 10.0 + pos as f32],
                    "rank {r}: block {pos} must come from alive rank {pos}"
                );
            }
        }
    }

    #[test]
    fn shrinking_reduce_scatter_matches_manual_sum_after_eviction() {
        let plan = FaultPlan::new(11).crash_at_op(1, 0).recv_deadline(60.0);
        let world = World::with_faults(Topology::single_node(3), plan);
        let outs = world.run_faulty::<_, CommError, _>(|comm| {
            let mut m = Membership::new(comm.world_size());
            let policy = RetryPolicy::default();
            loop {
                let g = m.num_alive();
                // parts[p] = rank-tagged contribution for position p.
                let parts: Vec<Mat> = (0..g)
                    .map(|p| Mat::from_vec(1, 1, vec![(comm.rank() * 10 + p) as f32]))
                    .collect();
                match shrink_reduce_scatter_mat(comm, &mut m, &parts, &policy) {
                    Ok(mine) => return Ok((mine, m.alive_ranks())),
                    Err(CommError::Evicted { .. }) => continue,
                    Err(e) => return Err(e),
                }
            }
        });
        assert!(outs[1].result.is_err(), "rank 1 dies before its first op");
        for (r, expect) in [(0usize, 0.0f32 + 20.0), (2usize, 1.0 + 21.0)] {
            let (mine, alive) = outs[r].result.as_ref().expect("survivor completes");
            assert_eq!(*alive, vec![0, 2]);
            assert_eq!(mine.as_slice(), &[expect], "rank {r} owns the summed block");
        }
    }

    #[test]
    fn clean_shrink_collectives_run_without_faults() {
        // No fault plan installed: the agreement still runs (commit
        // barrier) and must be a no-op.
        let world = World::new(Topology::single_node(4));
        let outs = world.run_results(|comm| {
            let mut m = Membership::new(comm.world_size());
            let policy = RetryPolicy::default();
            let mine = Mat::from_vec(1, 1, vec![comm.rank() as f32]);
            let blocks = shrink_all_gather_mat(comm, &mut m, &mine, &policy).unwrap();
            let shifted =
                shrink_ring_shift(comm, &mut m, MsgData::Scalar(comm.rank() as f64), &policy)
                    .unwrap();
            (blocks.len(), shifted, m.epoch())
        });
        for (r, (n, shifted, epoch)) in outs.into_iter().enumerate() {
            assert_eq!(n, 4);
            assert_eq!(epoch, 0, "clean run must not bump the epoch");
            match shifted {
                MsgData::Scalar(s) => assert_eq!(s as usize, (r + 3) % 4),
                other => panic!("rank {r}: expected scalar, got {other:?}"),
            }
        }
    }
}
