//! Per-rank communication accounting.

use serde::{Deserialize, Serialize};

/// Byte/message counters for one rank, split by link class.
///
/// `*_elems` counts logical tensor elements (what Algorithms 1–2 count as
/// `Nd` words); `*_bytes` is the modeled wire volume (per-payload width:
/// 4 bytes per f32 element, 2 per bf16 element — see
/// [`crate::topology::WireDtype`]). The BurstAttention backward claim — `3Nd + 2N`
/// words vs RingAttention's `4Nd` — is asserted directly on these counters
/// in the dattn tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    pub intra_msgs: u64,
    pub inter_msgs: u64,
    pub intra_elems: u64,
    pub inter_elems: u64,
    pub intra_bytes: f64,
    pub inter_bytes: f64,
    /// Virtual seconds this rank spent blocked waiting for data that had not
    /// yet arrived (exposed so benches can report overlap efficiency).
    pub wait_time: f64,
    /// Virtual seconds of modeled compute on this rank.
    pub compute_time: f64,
    /// Physical transmissions the reliable transport re-sent after a loss
    /// or corruption (extra traffic beyond the clean run's one
    /// transmission per message; not counted in `intra_msgs`/`inter_msgs`).
    pub retrans_msgs: u64,
    /// Wire bytes consumed by those retransmitted attempts. The clean
    /// byte counters above are unchanged by healing, so
    /// `total_bytes()` of a healed run equals the clean run exactly and
    /// `retrans_bytes` is precisely the recovery overhead.
    pub retrans_bytes: f64,
    /// Ring rounds mask-aware skipping elided entirely on this rank — no
    /// compute, no sends, no receives, no virtual time.
    pub rounds_skipped: u64,
    /// Wire bytes the skip gates avoided putting on the wire (the sends a
    /// dense schedule would have posted at the same sites). Dual of the
    /// clean byte counters: `total_bytes() + skipped_bytes` equals the
    /// dense schedule's census exactly.
    pub skipped_bytes: f64,
}

impl CommStats {
    /// Total logical elements sent (both link classes).
    pub fn total_elems(&self) -> u64 {
        self.intra_elems + self.inter_elems
    }

    /// Total wire bytes sent.
    pub fn total_bytes(&self) -> f64 {
        self.intra_bytes + self.inter_bytes
    }

    pub fn total_msgs(&self) -> u64 {
        self.intra_msgs + self.inter_msgs
    }

    /// Element-wise sum, for aggregating across ranks.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        CommStats {
            intra_msgs: self.intra_msgs + other.intra_msgs,
            inter_msgs: self.inter_msgs + other.inter_msgs,
            intra_elems: self.intra_elems + other.intra_elems,
            inter_elems: self.inter_elems + other.inter_elems,
            intra_bytes: self.intra_bytes + other.intra_bytes,
            inter_bytes: self.inter_bytes + other.inter_bytes,
            wait_time: self.wait_time + other.wait_time,
            compute_time: self.compute_time + other.compute_time,
            retrans_msgs: self.retrans_msgs + other.retrans_msgs,
            retrans_bytes: self.retrans_bytes + other.retrans_bytes,
            rounds_skipped: self.rounds_skipped + other.rounds_skipped,
            skipped_bytes: self.skipped_bytes + other.skipped_bytes,
        }
    }

    /// Total wire bytes including retransmitted attempts — what the
    /// physical fabric actually carried.
    pub fn wire_bytes_with_retrans(&self) -> f64 {
        self.total_bytes() + self.retrans_bytes
    }
}

/// Per-rank counters of injected-fault firings and their consequences,
/// kept separate from [`CommStats`] (which counts healthy traffic). All
/// fields are event counts, so cross-rank aggregation is an exact sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Messages that left with plan-injected extra latency.
    pub delays: u64,
    /// Messages the plan discarded on the wire.
    pub drops: u64,
    /// Payloads corrupted in flight (checksum catches them on receive).
    pub corruptions: u64,
    /// Crash triggers fired on this rank (0 or 1 — a rank crashes once).
    pub crashes: u64,
    /// Receives that failed on the virtual-clock deadline or wall backstop.
    pub timeouts: u64,
    /// Control-plane retry attempts (membership layer backoffs).
    pub retries: u64,
    /// Transmissions lost to a link-flap or partition outage window.
    pub flaps: u64,
    /// Physical retransmissions performed by the reliable transport.
    pub retransmits: u64,
    /// Messages delivered intact after at least one retransmission —
    /// faults that healed at the transport, invisible above it.
    pub healed: u64,
    /// Messages whose retry budget ran out: the transport delivered the
    /// legacy observable (timeout/corruption) and escalation began.
    pub giveups: u64,
    /// Failure-detector suspicion confirmations (a peer declared dead
    /// rather than slow, once per incident).
    pub suspicions: u64,
}

impl FaultCounters {
    /// Element-wise sum, for aggregating across ranks.
    pub fn merge(&self, other: &FaultCounters) -> FaultCounters {
        FaultCounters {
            delays: self.delays + other.delays,
            drops: self.drops + other.drops,
            corruptions: self.corruptions + other.corruptions,
            crashes: self.crashes + other.crashes,
            timeouts: self.timeouts + other.timeouts,
            retries: self.retries + other.retries,
            flaps: self.flaps + other.flaps,
            retransmits: self.retransmits + other.retransmits,
            healed: self.healed + other.healed,
            giveups: self.giveups + other.giveups,
            suspicions: self.suspicions + other.suspicions,
        }
    }

    /// Total fault firings of any kind on the wire or the clock (remedies
    /// — retransmits, heals — are not faults and are excluded).
    pub fn total(&self) -> u64 {
        self.delays + self.drops + self.corruptions + self.crashes + self.timeouts + self.flaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_counters_merge_and_total() {
        let a = FaultCounters {
            delays: 1,
            drops: 2,
            corruptions: 3,
            crashes: 1,
            timeouts: 4,
            retries: 5,
            flaps: 6,
            retransmits: 7,
            healed: 8,
            giveups: 9,
            suspicions: 10,
        };
        let m = a.merge(&a);
        assert_eq!(m.drops, 4);
        assert_eq!(m.retries, 10);
        assert_eq!(m.flaps, 12);
        assert_eq!(m.retransmits, 14);
        assert_eq!(m.healed, 16);
        assert_eq!(m.giveups, 18);
        assert_eq!(m.suspicions, 20);
        assert_eq!(m.total(), 34, "remedies are excluded from total()");
        assert_eq!(FaultCounters::default().total(), 0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = CommStats {
            intra_msgs: 1,
            inter_msgs: 2,
            intra_elems: 10,
            inter_elems: 20,
            intra_bytes: 100.0,
            inter_bytes: 200.0,
            wait_time: 0.5,
            compute_time: 1.5,
            retrans_msgs: 3,
            retrans_bytes: 50.0,
            rounds_skipped: 4,
            skipped_bytes: 25.0,
        };
        let m = a.merge(&a);
        assert_eq!(m.total_msgs(), 6);
        assert_eq!(m.total_elems(), 60);
        assert_eq!(m.total_bytes(), 600.0);
        assert_eq!(m.wait_time, 1.0);
        assert_eq!(m.compute_time, 3.0);
        assert_eq!(m.retrans_msgs, 6);
        assert_eq!(m.retrans_bytes, 100.0);
        assert_eq!(m.wire_bytes_with_retrans(), 700.0);
        assert_eq!(m.rounds_skipped, 8);
        assert_eq!(m.skipped_bytes, 50.0);
    }
}
