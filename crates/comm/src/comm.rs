//! The per-rank [`Communicator`]: P2P messaging, collectives, virtual clock,
//! and fallible `try_*` variants that surface injected faults as typed
//! [`CommError`]s instead of panics.

use crate::fault::{CommError, CrashAt, FaultPlan, LossKind};
use crate::stats::{CommStats, FaultCounters};
use crate::topology::{Topology, WireDtype};
use crate::trace::TraceEvent;
use crate::transport::FailureDetector;
use burst_obs::{
    MemCategory, MemId, MemLedger, MemReport, RankSink, RankTrace, SpanKind, DEFAULT_SPAN_CAPACITY,
};
use burst_tensor::{Bf16Mat, Mat};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Wall-clock backstop for receives under a fault plan: the virtual-clock
/// deadline is the real timeout mechanism (deterministic), but if a bug ever
/// leaves a rank blocked on a message that will never be sent, this bound
/// converts the would-be deadlock into a typed error instead of a hang.
const WALL_BACKSTOP: Duration = Duration::from_secs(30);

/// Kind of an elastic-layer control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlKind {
    /// "I am abandoning the current collective" — sent by a rank that hit a
    /// failure mid-collective so its healthy neighbors stop waiting for data.
    Abort,
    /// A follower's eviction proposal to the agreement leader.
    Propose,
    /// The leader's eviction decision (new epoch + evicted set).
    Decide,
    /// A follower acknowledging the decision (its stale-message drain is
    /// complete).
    Ack,
    /// The leader's release: every survivor drained, safe to resume.
    Go,
    /// A parked rank petitioning the leader for re-admission (the join leg
    /// of the epoch protocol; `suspects` carries the joiner itself).
    Join,
}

/// An elastic-layer control message: abort pills and the eviction-agreement
/// protocol ride the same deterministic channels as data, so a control
/// message arriving where data was expected is itself a typed signal
/// ([`CommError::Aborted`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlMsg {
    pub kind: CtrlKind,
    pub epoch: u64,
    pub suspects: Vec<usize>,
}

/// A message payload. Real data moves between ranks so distributed
/// algorithms are numerically exact end-to-end.
#[derive(Debug, Clone)]
pub enum MsgData {
    Mat(Mat),
    /// A matrix rounded to bfloat16 at the sender (half-width wire format;
    /// see [`crate::topology::WireDtype`]). Decoded back to `f32` on receive.
    Bf16Mat(Bf16Mat),
    Vec(Vec<f32>),
    Scalar(f64),
    Empty,
    /// Elastic-layer control traffic (see [`CtrlMsg`]).
    Ctrl(CtrlMsg),
}

impl MsgData {
    /// Logical element count used for wire-time modeling.
    pub fn elems(&self) -> usize {
        match self {
            MsgData::Mat(m) => m.len(),
            MsgData::Bf16Mat(m) => m.len(),
            MsgData::Vec(v) => v.len(),
            MsgData::Scalar(_) => 1,
            MsgData::Empty => 0,
            MsgData::Ctrl(c) => c.suspects.len() + 2,
        }
    }

    /// Bytes this payload occupies on the wire. Unlike [`MsgData::elems`],
    /// this is per-variant: an f32 matrix or statistics vector is 4 bytes
    /// per element, a bf16 matrix 2, a scalar 8, and control traffic is
    /// billed at 8 bytes per logical element (small either way).
    pub fn wire_bytes(&self) -> f64 {
        match self {
            MsgData::Mat(m) => m.len() as f64 * 4.0,
            MsgData::Bf16Mat(m) => m.len() as f64 * 2.0,
            MsgData::Vec(v) => v.len() as f64 * 4.0,
            MsgData::Scalar(_) => 8.0,
            MsgData::Empty => 0.0,
            MsgData::Ctrl(c) => (c.suspects.len() + 2) as f64 * 8.0,
        }
    }

    /// Human-readable payload kind + shape, for error messages.
    pub fn describe(&self) -> String {
        match self {
            MsgData::Mat(m) => format!("Mat {}x{}", m.rows(), m.cols()),
            MsgData::Bf16Mat(m) => format!("Bf16Mat {}x{}", m.rows(), m.cols()),
            MsgData::Vec(v) => format!("Vec[{}]", v.len()),
            MsgData::Scalar(_) => "Scalar".to_string(),
            MsgData::Empty => "Empty".to_string(),
            MsgData::Ctrl(c) => format!("Ctrl {:?} epoch={}", c.kind, c.epoch),
        }
    }

    /// FNV-1a over the payload bits (shape included), for in-flight
    /// corruption detection. Only computed when a fault plan is active.
    fn checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u64| {
            h ^= b;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        match self {
            MsgData::Mat(m) => {
                eat(m.rows() as u64);
                eat(m.cols() as u64);
                for v in m.as_slice() {
                    eat(v.to_bits() as u64);
                }
            }
            MsgData::Bf16Mat(m) => {
                eat(m.rows() as u64);
                eat(m.cols() as u64);
                for &b in m.as_bits() {
                    eat(b as u64);
                }
            }
            MsgData::Vec(v) => {
                eat(v.len() as u64);
                for x in v {
                    eat(x.to_bits() as u64);
                }
            }
            MsgData::Scalar(s) => eat(s.to_bits()),
            MsgData::Empty => eat(0),
            MsgData::Ctrl(c) => {
                eat(c.kind as u64);
                eat(c.epoch);
                for &s in &c.suspects {
                    eat(s as u64);
                }
            }
        }
        h
    }

    /// Flip the sign bit of the first element (injected corruption). The
    /// checksum is taken *before* this, so the receiver detects it.
    fn corrupt_in_place(&mut self) {
        match self {
            MsgData::Mat(m) => {
                if let Some(x) = m.as_mut_slice().first_mut() {
                    *x = f32::from_bits(x.to_bits() ^ 0x8000_0000);
                }
            }
            MsgData::Bf16Mat(m) => {
                if let Some(b) = m.as_bits_mut().first_mut() {
                    *b ^= 0x8000;
                }
            }
            MsgData::Vec(v) => {
                if let Some(x) = v.first_mut() {
                    *x = f32::from_bits(x.to_bits() ^ 0x8000_0000);
                }
            }
            MsgData::Scalar(s) => *s = f64::from_bits(s.to_bits() ^ (1 << 63)),
            MsgData::Empty => {}
            MsgData::Ctrl(c) => c.epoch ^= 1,
        }
    }
}

/// A message in flight: payload plus its causal virtual arrival time and
/// (under a fault plan) a payload checksum. `dropped` marks a message the
/// plan discarded on the wire — the receiver consumes it as a timeout.
#[derive(Debug, Clone)]
pub struct Msg {
    pub arrival: f64,
    pub data: MsgData,
    pub checksum: u64,
    pub dropped: bool,
}

/// One rank's endpoint into the simulated cluster.
///
/// Sends are non-blocking in virtual time (NCCL multi-stream style): the
/// sender's clock does not advance, but the message occupies the sender's
/// egress port (NVLink port intra-node, the GPU's IB NIC inter-node), so
/// back-to-back sends through one port serialise. A receive advances the
/// local clock to the message's arrival time — communication posted early
/// and consumed late therefore overlaps with compute automatically.
///
/// Every operation has two forms: the infallible classic form (`send`,
/// `recv_mat`, `all_gather_mat`, …) that panics on failure with a message
/// naming the local rank, the peer and the expected payload kind, and a
/// fallible `try_*` form returning `Result<_, CommError>`. Under a fault
/// plan the infallible forms panic with the typed [`CommError`] itself as
/// the payload so [`crate::World::run_faulty`] can recover it.
pub struct Communicator {
    rank: usize,
    topo: Topology,
    tx: Vec<Sender<Msg>>,
    rx: Vec<Receiver<Msg>>,
    clock: f64,
    intra_port_free: f64,
    nic_free: f64,
    stats: CommStats,
    /// Span sink for the observability layer (`None` = tracing off; the
    /// sink never touches the virtual clock, so enabling it is
    /// bit-identical to running without it).
    obs: Option<RankSink>,
    /// Virtual-memory accountant (`None` = accounting off). Like `obs`, a
    /// pure observer of the virtual clock: hooks record buffer lifetimes
    /// but never advance time, so accounting on is bit-identical to off.
    mem: Option<MemLedger>,
    /// LIFO stack of open checkpoint-stash entries: the model layer pushes
    /// one entry per stored block in the forward and pops in reverse block
    /// order during the backward, without threading ledger ids through the
    /// checkpointing data structures.
    mem_stash: Vec<MemId>,
    fault: Option<FaultPlan>,
    /// Injected-fault firing counters (always on; zero on a healthy run).
    pub(crate) faults: FaultCounters,
    /// The crash trigger fired (counted once; the rank stays crashed).
    crash_fired: bool,
    /// Communication operations performed so far (sends + receives).
    ops: u64,
    /// Per-destination sent-message counters (fault trigger indexing).
    sent: Vec<u64>,
    /// Deterministic virtual-time failure detector: per-peer evidence of
    /// receive failures, retransmit history and heartbeat silence. Pure
    /// bookkeeping (never touches the clock); consulted by the membership
    /// layer to decide dead-vs-slow before escalating a timeout.
    detector: FailureDetector,
    /// Slow-kernel straggler factor from the fault plan (1.0 = healthy).
    compute_factor: f64,
    /// Depth of open recompute scopes: while nonzero, `advance_compute`
    /// tags its kernel spans `"recompute"` (gradient-checkpointing re-runs
    /// of forward code). Never touches the clock math.
    recompute_depth: u32,
}

/// Absolute virtual-clock deadline for a receive posted at `posted` with a
/// timeout budget of `budget` seconds, saturating instead of overflowing to
/// infinity when the clock sits near `f64::MAX`. An *unset* budget
/// (infinite) stays infinite — only finite budgets are clamped, so a
/// configured deadline can never silently become "no deadline".
pub fn saturating_deadline(posted: f64, budget: f64) -> f64 {
    if !budget.is_finite() {
        return f64::INFINITY;
    }
    let d = posted + budget;
    if d.is_finite() {
        d
    } else {
        f64::MAX
    }
}

impl Communicator {
    pub(crate) fn new(
        rank: usize,
        topo: Topology,
        tx: Vec<Sender<Msg>>,
        rx: Vec<Receiver<Msg>>,
        fault: Option<FaultPlan>,
    ) -> Self {
        let world = topo.world_size();
        let compute_factor = fault
            .as_ref()
            .map(|p| p.compute_slowdown(rank))
            .unwrap_or(1.0);
        let detector = FailureDetector::new(
            world,
            fault.as_ref().map(|p| p.detector_cfg()).unwrap_or_default(),
        );
        Communicator {
            rank,
            topo,
            tx,
            rx,
            clock: 0.0,
            intra_port_free: 0.0,
            nic_free: 0.0,
            stats: CommStats::default(),
            obs: None,
            mem: None,
            mem_stash: Vec::new(),
            fault,
            faults: FaultCounters::default(),
            crash_fired: false,
            ops: 0,
            sent: vec![0; world],
            detector,
            compute_factor,
            recompute_depth: 0,
        }
    }

    /// Start recording hierarchical spans on the virtual clock into a
    /// pre-sized per-rank [`RankSink`] (see [`burst_obs`]). Off by default.
    pub fn start_trace(&mut self) {
        self.obs = Some(RankSink::with_capacity(self.rank, DEFAULT_SPAN_CAPACITY));
    }

    /// Start tracing with an explicit span capacity (tests use small sinks
    /// to probe the growth path).
    pub fn start_trace_with_capacity(&mut self, cap: usize) {
        self.obs = Some(RankSink::with_capacity(self.rank, cap));
    }

    /// Whether span recording is active.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.obs.is_some()
    }

    /// Stop tracing and return the recorded events, flattened to the legacy
    /// [`TraceEvent`] form (kernel, send and recv leaves in record order;
    /// structural and wait spans are dropped). Prefer
    /// [`Communicator::take_rank_trace`] for the full span tree.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let Some(sink) = self.obs.take() else {
            return Vec::new();
        };
        let trace = sink.finish(self.clock);
        trace
            .spans
            .iter()
            .filter_map(|s| match s.kind {
                SpanKind::Kernel => Some(TraceEvent::Compute {
                    start: s.start,
                    end: s.end,
                }),
                SpanKind::Send => Some(TraceEvent::Send {
                    dst: s.peer as usize,
                    elems: s.elems as usize,
                    depart: s.start,
                    arrival: s.end,
                    inter_node: s.inter,
                }),
                SpanKind::Recv => Some(TraceEvent::Recv {
                    src: s.peer as usize,
                    elems: s.elems as usize,
                    posted: s.start,
                    completed: s.end,
                }),
                _ => None,
            })
            .collect()
    }

    /// Start the per-rank virtual-memory accountant (see
    /// [`burst_obs::mem`]). Off by default; strictly an observer of the
    /// virtual clock.
    pub fn start_mem_accounting(&mut self) {
        self.mem = Some(MemLedger::new(self.rank));
        self.mem_stash.clear();
    }

    /// Whether memory accounting is active.
    #[inline]
    pub fn mem_accounting(&self) -> bool {
        self.mem.is_some()
    }

    /// Stop accounting and return the finished ledger, force-closing (with
    /// warnings) any interval still open — on a crashed rank this is what
    /// keeps the ledger balanced (allocation == free + live-at-crash).
    /// `None` if accounting was off.
    pub fn take_mem_report(&mut self) -> Option<MemReport> {
        let clock = self.clock;
        // Ids index into the ledger being taken; a crashed pass's leftovers
        // are force-closed by `finish`, so the stack must not leak into a
        // future ledger.
        self.mem_stash.clear();
        self.mem.take().map(|m| m.finish(clock))
    }

    /// Register a named buffer of `bytes` becoming live now. No-op (and
    /// `None`) when accounting is off; never touches the clock.
    pub fn mem_alloc(&mut self, name: &str, cat: MemCategory, bytes: u64) -> Option<MemId> {
        let clock = self.clock;
        self.mem.as_mut().map(|m| m.alloc(name, cat, bytes, clock))
    }

    /// Close a ledger entry opened by [`Communicator::mem_alloc`]. Accepts
    /// the `Option` handle directly so call sites stay one line.
    pub fn mem_free(&mut self, id: Option<MemId>) {
        if let (Some(m), Some(id)) = (self.mem.as_mut(), id) {
            m.free(id, self.clock);
        }
    }

    /// Open a checkpoint-stash entry and push it on the stash stack. The
    /// model's checkpointing code stores per-block stashes in forward order
    /// and consumes them in reverse, so LIFO pairing frees the right entry
    /// without the `Stored` structures carrying ledger ids. No-op when
    /// accounting is off.
    pub fn mem_stash_push(&mut self, bytes: u64) {
        if let Some(id) = self.mem_alloc("ckpt_stash", MemCategory::CkptStash, bytes) {
            self.mem_stash.push(id);
        }
    }

    /// Close the most recently opened, still-open stash entry. No-op when
    /// accounting is off or the stack is empty (a crashed pass's leftovers
    /// are force-closed by [`Communicator::take_mem_report`] instead).
    pub fn mem_stash_pop(&mut self) {
        let id = self.mem_stash.pop();
        self.mem_free(id);
    }

    /// Raise the (ungated) workspace lane's high-water mark to at least
    /// `bytes` — called with a scratch allocator's resident size at the
    /// end of a pass.
    pub fn mem_note_workspace(&mut self, bytes: u64) {
        if let Some(m) = self.mem.as_mut() {
            m.note_peak(MemCategory::Workspace, bytes);
        }
    }

    /// `(len, capacity)` of the ledger's entry vector — the zero-churn
    /// steady-state contract compares this across rounds.
    pub fn mem_fingerprint(&self) -> Option<(usize, usize)> {
        self.mem.as_ref().map(MemLedger::fingerprint)
    }

    /// Current live bytes on one accountant lane (0 when accounting is off).
    pub fn mem_cur(&self, cat: MemCategory) -> u64 {
        self.mem.as_ref().map_or(0, |m| m.cur(cat))
    }

    /// Bytes `elems` matrix elements occupy at the topology's wire dtype —
    /// the rate communication buffers are billed at (a bf16 wire halves
    /// the circulating ring-buffer footprint, exactly as a real bf16 comm
    /// buffer would).
    #[inline]
    pub fn mem_wire_bytes(&self, elems: usize) -> u64 {
        self.topo.wire_bytes(elems) as u64
    }

    /// Stop tracing and return the full per-rank span tree, force-closing
    /// (with warnings) anything left open. `None` if tracing was off.
    pub fn take_rank_trace(&mut self) -> Option<RankTrace> {
        let clock = self.clock;
        self.obs.take().map(|s| s.finish(clock))
    }

    /// Open a structural span (step, layer, attention round, …) at the
    /// current virtual time. No-op when tracing is off; never advances the
    /// clock.
    #[inline]
    pub fn span_begin(&mut self, kind: SpanKind, name: &'static str) {
        if let Some(obs) = &mut self.obs {
            obs.begin(kind, name, self.clock);
        }
    }

    /// Close the innermost open span at the current virtual time.
    #[inline]
    pub fn span_end(&mut self) {
        if let Some(obs) = &mut self.obs {
            obs.end(self.clock);
        }
    }

    /// Number of spans currently open (0 when tracing is off). Capture this
    /// before fallible work and hand it to [`Communicator::span_unwind`] on
    /// the error path.
    #[inline]
    pub fn span_depth(&self) -> usize {
        self.obs.as_ref().map_or(0, RankSink::open_count)
    }

    /// Close open spans at the current virtual time until at most `depth`
    /// remain — settles the stack after a `?` skipped the matching
    /// `span_end` calls (e.g. a ring round that failed mid-flight).
    #[inline]
    pub fn span_unwind(&mut self, depth: usize) {
        if let Some(obs) = &mut self.obs {
            obs.unwind_to(depth, self.clock);
        }
    }

    /// Record an instantaneous event (epoch bump, fault firing, …).
    #[inline]
    pub fn span_instant(&mut self, kind: SpanKind, name: &'static str) {
        if let Some(obs) = &mut self.obs {
            obs.instant(kind, name, self.clock);
        }
    }

    /// `(buffer address, capacity)` of the active span sink — lets tests
    /// assert the steady-state ring round records without reallocating.
    pub fn trace_fingerprint(&self) -> Option<(usize, usize)> {
        self.obs.as_ref().map(RankSink::buffer_fingerprint)
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn world_size(&self) -> usize {
        self.topo.world_size()
    }

    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    #[inline]
    pub fn node(&self) -> usize {
        self.topo.node_of(self.rank)
    }

    #[inline]
    pub fn local_rank(&self) -> usize {
        self.topo.local_rank(self.rank)
    }

    /// Current virtual time on this rank, in seconds.
    #[inline]
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// Communication/compute counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Injected-fault firing counters accumulated so far (all zero on a
    /// healthy run).
    #[inline]
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
    }

    /// Record one ring round elided entirely by mask-aware skipping (no
    /// compute, no traffic, no virtual time). Pure accounting: never
    /// touches the clock.
    #[inline]
    pub fn note_round_skipped(&mut self) {
        self.stats.rounds_skipped += 1;
    }

    /// Record a suppressed `Mat` send of `elems` elements — wire bytes a
    /// dense schedule would have shipped at this site, billed at the
    /// topology's wire dtype. Pure accounting.
    #[inline]
    pub fn note_skipped_mat(&mut self, elems: usize) {
        self.stats.skipped_bytes += self.topo.wire_bytes(elems);
    }

    /// Record a suppressed statistics-vector send of `len` f32 elements
    /// (LSE/D vectors always travel at 4 bytes each). Pure accounting.
    #[inline]
    pub fn note_skipped_vec(&mut self, len: usize) {
        self.stats.skipped_bytes += 4.0 * len as f64;
    }

    /// Communication operations (sends + receives) performed so far — the
    /// index space of [`FaultPlan::crash_at_op`].
    #[inline]
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Whether a fault plan is installed on this world.
    #[inline]
    pub fn has_faults(&self) -> bool {
        self.fault.is_some()
    }

    /// The installed fault plan, if any.
    #[inline]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The failure detector's accrued suspicion (phi) toward `peer` at the
    /// current virtual time. Diagnostic read — see
    /// [`crate::transport::FailureDetector::phi`].
    pub fn suspicion_phi(&self, peer: usize) -> f64 {
        self.detector.phi(peer, self.clock)
    }

    /// Read access to the failure detector's evidence (tests/diagnostics).
    pub fn failure_detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// Consult the failure detector: is `peer` confirmed *dead* rather
    /// than merely *slow*? `default_fail_threshold` is the consulting
    /// retry policy's `max_attempts`, so with a default
    /// [`crate::transport::DetectorCfg`] the answer reproduces the
    /// pre-detector escalation decision exactly. The first confirmation of
    /// an incident is announced as a suspicion span and counted in
    /// [`FaultCounters::suspicions`].
    pub fn peer_confirmed_dead(&mut self, peer: usize, default_fail_threshold: u32) -> bool {
        let dead = self
            .detector
            .is_dead(peer, default_fail_threshold, self.clock);
        if dead && self.detector.announce_suspicion(peer) {
            self.faults.suspicions += 1;
            self.span_instant(SpanKind::Fault, "suspect");
        }
        dead
    }

    /// The gradient poison scheduled for this rank at (`step`, `micro`),
    /// if any (compute-side fault injection).
    #[inline]
    pub fn grad_poison(&self, step: u64, micro: u64) -> Option<f32> {
        self.fault
            .as_ref()
            .and_then(|p| p.grad_poison(self.rank, step, micro))
    }

    /// Escalate a typed error through the infallible API: under a fault
    /// plan the panic payload is the [`CommError`] itself (recoverable by
    /// [`crate::World::run_faulty`]); otherwise a readable message.
    #[track_caller]
    pub fn escalate(&self, e: CommError) -> ! {
        if self.fault.is_some() {
            std::panic::panic_any(e)
        } else {
            panic!("{e}")
        }
    }

    /// Model `seconds` of local compute (advances the virtual clock). A
    /// slow-kernel straggler factor from the fault plan stretches the
    /// advance deterministically.
    pub fn advance_compute(&mut self, seconds: f64) {
        let name = if self.recompute_depth > 0 {
            "recompute"
        } else {
            "compute"
        };
        self.advance_compute_named(name, seconds);
    }

    /// Enter (`true`) or leave (`false`) a recompute scope: while inside,
    /// [`Communicator::advance_compute`] tags kernel spans `"recompute"`.
    /// Depth-counted so nested scopes compose. Affects only span names —
    /// the clock and stats are byte-for-byte unchanged.
    pub fn recompute_scope(&mut self, enter: bool) {
        if enter {
            self.recompute_depth += 1;
        } else {
            debug_assert!(self.recompute_depth > 0, "recompute_scope underflow");
            self.recompute_depth = self.recompute_depth.saturating_sub(1);
        }
    }

    /// [`Communicator::advance_compute`] for gradient-checkpointing
    /// recomputation: identical clock math, but the kernel span is named
    /// `"recompute"` so the metrics layer can split recompute time out.
    pub fn advance_recompute(&mut self, seconds: f64) {
        self.advance_compute_named("recompute", seconds);
    }

    /// Named form of [`Communicator::advance_compute`] — the name tags the
    /// recorded kernel span; the clock math is byte-for-byte the same for
    /// every name, so instrumentation choices cannot change numerics.
    pub fn advance_compute_named(&mut self, name: &'static str, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        let seconds = seconds * self.compute_factor;
        if seconds > 0.0 {
            if let Some(obs) = &mut self.obs {
                obs.leaf(
                    SpanKind::Kernel,
                    name,
                    self.clock,
                    self.clock + seconds,
                    u32::MAX,
                    0,
                    false,
                );
            }
        }
        self.clock += seconds;
        self.stats.compute_time += seconds;
    }

    /// Check this rank's scheduled crash trigger and count the operation.
    /// Once the trigger fires every subsequent operation fails too — a
    /// crashed rank stays crashed.
    fn check_crash(&mut self) -> Result<(), CommError> {
        if let Some(plan) = &self.fault {
            let fired = match plan.crash_trigger(self.rank) {
                Some(CrashAt::Time(t)) => self.clock >= t,
                Some(CrashAt::Op(n)) => self.ops >= n,
                None => false,
            };
            if fired {
                if !self.crash_fired {
                    self.crash_fired = true;
                    self.faults.crashes += 1;
                    if let Some(obs) = &mut self.obs {
                        obs.instant(SpanKind::Fault, "crash", self.clock);
                    }
                }
                return Err(CommError::Crashed {
                    rank: self.rank,
                    at: self.clock,
                });
            }
        }
        self.ops = self.ops.saturating_add(1);
        Ok(())
    }

    /// The virtual-clock deadline for a receive posted now (saturating:
    /// a clock near `f64::MAX` must not overflow a finite budget into
    /// "no deadline").
    fn recv_deadline_abs(&self) -> f64 {
        match &self.fault {
            Some(plan) => saturating_deadline(self.clock, plan.deadline_secs()),
            None => f64::INFINITY,
        }
    }

    /// Non-blocking send of `data` to `dst` (fallible form).
    pub fn try_send(&mut self, dst: usize, data: MsgData) -> Result<(), CommError> {
        assert!(
            dst < self.world_size(),
            "rank {}: send: dst {dst} out of range (world size {})",
            self.rank,
            self.world_size()
        );
        assert_ne!(
            dst, self.rank,
            "rank {}: send: self-send is not supported",
            self.rank
        );
        self.check_crash()?;
        let mut data = data;
        let elems = data.elems();
        let bytes = data.wire_bytes();
        let link = self.topo.link(self.rank, dst);
        let inter = !self.topo.same_node(self.rank, dst);
        let tx_time = link.serialization(bytes);
        // Take the plan so its queries can interleave with the mutable
        // accounting below; restored before returning.
        let plan = self.fault.take();
        let transport = plan.as_ref().and_then(|p| p.transport());
        let (depart, arrival, checksum, dropped) = if let Some(tp) = transport {
            // Reliable path: the plan is shared deterministic data, so the
            // sender simulates the whole ack/retransmit dialogue locally.
            // Each physical attempt consumes a message index, occupies the
            // egress port and is billed on the wire; a lost or corrupted
            // attempt schedules a retransmission one RTO later, and only
            // the final (clean) transmission is enqueued — the receiver
            // never sees the healed failures.
            let p = plan.as_ref().expect("transport policy implies a plan");
            let checksum = data.checksum();
            let mut attempt = 0u32;
            let mut resend_gate = 0.0f64;
            loop {
                let msg_index = self.sent[dst];
                self.sent[dst] = self.sent[dst].saturating_add(1);
                let extra = p.extra_latency(self.rank, dst, msg_index);
                let port_free = if inter {
                    &mut self.nic_free
                } else {
                    &mut self.intra_port_free
                };
                let depart = self.clock.max(*port_free).max(resend_gate);
                *port_free = depart + tx_time;
                let arrival = depart + link.latency + extra + tx_time;
                let loss = p.link_loss(self.rank, dst, msg_index, depart);
                let corrupted = loss.is_none() && p.should_corrupt(self.rank, dst, msg_index);
                if extra > 0.0 {
                    self.faults.delays += 1;
                    self.span_instant(SpanKind::Fault, "delay");
                }
                match loss {
                    Some(LossKind::Drop) => {
                        self.faults.drops += 1;
                        self.span_instant(SpanKind::Fault, "drop");
                    }
                    Some(LossKind::Flap) => {
                        self.faults.flaps += 1;
                        self.span_instant(SpanKind::Fault, "flap");
                    }
                    Some(LossKind::Partition) => {
                        self.faults.flaps += 1;
                        self.span_instant(SpanKind::Fault, "partition");
                    }
                    None => {}
                }
                if corrupted {
                    self.faults.corruptions += 1;
                    self.span_instant(SpanKind::Fault, "corrupt");
                }
                let failed = loss.is_some() || corrupted;
                if failed && attempt < tp.max_resends {
                    // Billed as retransmit overhead, invisible above the
                    // transport; the next attempt departs one RTO later,
                    // which is what lets it outlive a flap/partition window.
                    self.stats.retrans_msgs += 1;
                    self.stats.retrans_bytes += bytes;
                    self.faults.retransmits += 1;
                    self.detector.record_retransmit(dst);
                    if let Some(obs) = &mut self.obs {
                        obs.leaf(
                            SpanKind::Retransmit,
                            "retransmit",
                            depart,
                            arrival,
                            dst as u32,
                            elems as u64,
                            inter,
                        );
                    }
                    resend_gate = depart + tp.rto(attempt, self.rank, dst, msg_index);
                    if let Some(mem) = &mut self.mem {
                        // The transport holds the payload for the re-send:
                        // queued bytes from the (constant-clock) post until
                        // the next attempt may depart. Charged at the post
                        // clock so lane charge times stay monotone.
                        let clock = self.clock;
                        mem.charge_until(
                            MemCategory::RetransQueue,
                            bytes as u64,
                            clock,
                            resend_gate,
                        );
                    }
                    attempt += 1;
                    continue;
                }
                if failed {
                    // Retry budget exhausted: hand the failure up the
                    // ladder by delivering the legacy observable (the
                    // receiver sees a timeout or a checksum mismatch).
                    self.faults.giveups += 1;
                    self.span_instant(SpanKind::Fault, "giveup");
                    if corrupted {
                        data.corrupt_in_place();
                    }
                } else if attempt > 0 {
                    self.faults.healed += 1;
                    self.span_instant(SpanKind::Fault, "healed");
                }
                break (depart, arrival, checksum, loss.is_some());
            }
        } else {
            // Legacy wire: deterministic extra latency/jitter, drops and
            // corruption, all keyed off the plan seed and message index;
            // every loss surfaces directly to the receiver.
            let msg_index = self.sent[dst];
            self.sent[dst] = self.sent[dst].saturating_add(1);
            let port_free_now = if inter {
                self.nic_free
            } else {
                self.intra_port_free
            };
            let depart = self.clock.max(port_free_now);
            let (extra, loss, checksum, corrupted) = match &plan {
                Some(p) => {
                    let extra = p.extra_latency(self.rank, dst, msg_index);
                    let loss = p.link_loss(self.rank, dst, msg_index, depart);
                    let checksum = data.checksum();
                    let corrupted = p.should_corrupt(self.rank, dst, msg_index);
                    if corrupted {
                        data.corrupt_in_place();
                    }
                    (extra, loss, checksum, corrupted)
                }
                None => (0.0, None, 0, false),
            };
            if extra > 0.0 {
                self.faults.delays += 1;
                self.span_instant(SpanKind::Fault, "delay");
            }
            match loss {
                Some(LossKind::Drop) => {
                    self.faults.drops += 1;
                    self.span_instant(SpanKind::Fault, "drop");
                }
                Some(LossKind::Flap) => {
                    self.faults.flaps += 1;
                    self.span_instant(SpanKind::Fault, "flap");
                }
                Some(LossKind::Partition) => {
                    self.faults.flaps += 1;
                    self.span_instant(SpanKind::Fault, "partition");
                }
                None => {}
            }
            if corrupted {
                self.faults.corruptions += 1;
                self.span_instant(SpanKind::Fault, "corrupt");
            }
            let port_free = if inter {
                &mut self.nic_free
            } else {
                &mut self.intra_port_free
            };
            *port_free = depart + tx_time;
            (
                depart,
                depart + link.latency + extra + tx_time,
                checksum,
                loss.is_some(),
            )
        };
        self.fault = plan;
        if inter {
            self.stats.inter_msgs += 1;
            self.stats.inter_elems += elems as u64;
            self.stats.inter_bytes += bytes;
        } else {
            self.stats.intra_msgs += 1;
            self.stats.intra_elems += elems as u64;
            self.stats.intra_bytes += bytes;
        }
        if let Some(obs) = &mut self.obs {
            obs.leaf(
                SpanKind::Send,
                "send",
                depart,
                arrival,
                dst as u32,
                elems as u64,
                inter,
            );
        }
        if let Some(mem) = &mut self.mem {
            // Sender-side in-flight occupancy: the sender owns the payload
            // from post until delivery, `[clock, arrival)`. Lane-only — no
            // ledger entry — so steady-state rounds append nothing; charged
            // at the post clock, which is monotone per rank, so the lane
            // peak is the exact peak of its step function.
            let clock = self.clock;
            mem.charge_until(MemCategory::InFlight, bytes as u64, clock, arrival);
        }
        self.tx[dst]
            .send(Msg {
                arrival,
                data,
                checksum,
                dropped,
            })
            .map_err(|_| CommError::PeerLost {
                rank: self.rank,
                src: dst,
                at: self.clock,
            })
    }

    /// Non-blocking send of `data` to `dst`. Panics (with rank/peer
    /// context) if the peer has terminated.
    #[track_caller]
    pub fn send(&mut self, dst: usize, data: MsgData) {
        if let Err(e) = self.try_send(dst, data) {
            self.escalate(e);
        }
    }

    /// Blocking receive of the next message from `src` (fallible form).
    /// Advances the clock to the message's causal arrival time; a message
    /// arriving after the fault plan's virtual deadline — or dropped on the
    /// wire — is consumed as [`CommError::Timeout`], and a payload failing
    /// checksum validation as [`CommError::Corrupt`].
    pub fn try_recv(&mut self, src: usize) -> Result<MsgData, CommError> {
        assert!(
            src < self.world_size(),
            "rank {}: recv: src {src} out of range (world size {})",
            self.rank,
            self.world_size()
        );
        assert_ne!(
            src, self.rank,
            "rank {}: recv: self-recv is not supported",
            self.rank
        );
        self.check_crash()?;
        let posted = self.clock;
        let deadline = self.recv_deadline_abs();
        let msg = if self.fault.is_some() {
            match self.rx[src].recv_timeout(WALL_BACKSTOP) {
                Ok(m) => m,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerLost {
                        rank: self.rank,
                        src,
                        at: self.clock,
                    });
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.faults.timeouts += 1;
                    self.detector.record_failure(src);
                    self.span_instant(SpanKind::Fault, "timeout");
                    return Err(CommError::Timeout {
                        rank: self.rank,
                        src,
                        deadline,
                        at: self.clock,
                    });
                }
            }
        } else {
            match self.rx[src].recv() {
                Ok(m) => m,
                Err(_) => {
                    return Err(CommError::PeerLost {
                        rank: self.rank,
                        src,
                        at: self.clock,
                    });
                }
            }
        };
        if msg.dropped || msg.arrival > deadline {
            // The wait burns virtual time up to the deadline; the message
            // itself is gone (dropped) or too late to use.
            if deadline.is_finite() && deadline > self.clock {
                self.stats.wait_time += deadline - self.clock;
                if let Some(obs) = &mut self.obs {
                    obs.leaf(
                        SpanKind::Wait,
                        "deadline",
                        self.clock,
                        deadline,
                        src as u32,
                        0,
                        false,
                    );
                }
                self.clock = deadline;
            }
            self.faults.timeouts += 1;
            self.detector.record_failure(src);
            self.span_instant(SpanKind::Fault, "timeout");
            return Err(CommError::Timeout {
                rank: self.rank,
                src,
                deadline,
                at: self.clock,
            });
        }
        if msg.arrival > self.clock {
            self.stats.wait_time += msg.arrival - self.clock;
            if let Some(obs) = &mut self.obs {
                obs.leaf(
                    SpanKind::Wait,
                    "wait",
                    self.clock,
                    msg.arrival,
                    src as u32,
                    0,
                    false,
                );
            }
            self.clock = msg.arrival;
        }
        if self.fault.is_some() && msg.data.checksum() != msg.checksum {
            self.detector.record_failure(src);
            return Err(CommError::Corrupt {
                rank: self.rank,
                src,
                detail: format!(
                    "checksum mismatch on {} (expected {:#x}, got {:#x})",
                    msg.data.describe(),
                    msg.checksum,
                    msg.data.checksum()
                ),
            });
        }
        if self.fault.is_some() {
            self.detector.record_ok(src, self.clock);
        }
        if let Some(obs) = &mut self.obs {
            obs.leaf(
                SpanKind::Recv,
                "recv",
                posted,
                self.clock,
                src as u32,
                msg.data.elems() as u64,
                false,
            );
        }
        Ok(msg.data)
    }

    /// Blocking receive of the next message from `src`. Panics (with
    /// rank/peer context) if the peer has terminated.
    #[track_caller]
    pub fn recv(&mut self, src: usize) -> MsgData {
        match self.try_recv(src) {
            Ok(d) => d,
            Err(e) => self.escalate(e),
        }
    }

    /// A control message arrived where data was expected: the sender
    /// abandoned the collective. Convert it to the typed signal.
    fn aborted_by(&self, src: usize, c: CtrlMsg) -> CommError {
        CommError::Aborted {
            rank: self.rank,
            src,
            epoch: c.epoch,
            suspects: c.suspects,
            at: self.clock,
        }
    }

    /// Discard every message currently queued on this rank's inbound
    /// channels without advancing the virtual clock — used between
    /// membership epochs to clear stale in-flight data from an aborted
    /// collective. Returns the number of messages discarded.
    pub fn drain_all(&mut self) -> usize {
        let mut n = 0;
        for src in 0..self.world_size() {
            if src == self.rank {
                continue;
            }
            while self.rx[src].try_recv().is_ok() {
                n += 1;
            }
        }
        n
    }

    // ----- typed helpers ---------------------------------------------------

    /// Wrap a matrix in the wire payload selected by the topology's
    /// [`WireDtype`]: under [`WireDtype::F32`] the matrix travels as-is;
    /// under [`WireDtype::Bf16`] it is rounded (nearest-even) at the sender
    /// and occupies 2 bytes per element on the wire. Because decoding is
    /// exact and re-encoding a decoded matrix is lossless, a shard that
    /// circulates a ring is rounded exactly once.
    pub fn mat_payload(&self, m: Mat) -> MsgData {
        match self.topo.wire_dtype {
            WireDtype::F32 => MsgData::Mat(m),
            WireDtype::Bf16 => MsgData::Bf16Mat(Bf16Mat::from_mat(&m)),
        }
    }

    pub fn send_mat(&mut self, dst: usize, m: &Mat) {
        let payload = self.mat_payload(m.clone());
        self.send(dst, payload);
    }

    pub fn try_send_mat(&mut self, dst: usize, m: &Mat) -> Result<(), CommError> {
        let payload = self.mat_payload(m.clone());
        self.try_send(dst, payload)
    }

    /// Receive a matrix from `src`. Accepts either wire dtype — an f32
    /// payload is returned untouched, a bf16 payload is decoded (exactly)
    /// back to `f32`.
    pub fn try_recv_mat(&mut self, src: usize) -> Result<Mat, CommError> {
        match self.try_recv(src)? {
            MsgData::Mat(m) => Ok(m),
            MsgData::Bf16Mat(m) => Ok(m.to_mat()),
            MsgData::Ctrl(c) => Err(self.aborted_by(src, c)),
            other => Err(CommError::ShapeMismatch {
                rank: self.rank,
                src,
                expected: "Mat",
                got: other.describe(),
            }),
        }
    }

    #[track_caller]
    pub fn recv_mat(&mut self, src: usize) -> Mat {
        match self.try_recv_mat(src) {
            Ok(m) => m,
            Err(e) => self.escalate(e),
        }
    }

    pub fn send_vec(&mut self, dst: usize, v: &[f32]) {
        self.send(dst, MsgData::Vec(v.to_vec()));
    }

    pub fn try_send_vec(&mut self, dst: usize, v: &[f32]) -> Result<(), CommError> {
        self.try_send(dst, MsgData::Vec(v.to_vec()))
    }

    pub fn try_recv_vec(&mut self, src: usize) -> Result<Vec<f32>, CommError> {
        match self.try_recv(src)? {
            MsgData::Vec(v) => Ok(v),
            MsgData::Ctrl(c) => Err(self.aborted_by(src, c)),
            other => Err(CommError::ShapeMismatch {
                rank: self.rank,
                src,
                expected: "Vec",
                got: other.describe(),
            }),
        }
    }

    #[track_caller]
    pub fn recv_vec(&mut self, src: usize) -> Vec<f32> {
        match self.try_recv_vec(src) {
            Ok(v) => v,
            Err(e) => self.escalate(e),
        }
    }

    pub fn send_scalar(&mut self, dst: usize, s: f64) {
        self.send(dst, MsgData::Scalar(s));
    }

    pub fn try_recv_scalar(&mut self, src: usize) -> Result<f64, CommError> {
        match self.try_recv(src)? {
            MsgData::Scalar(s) => Ok(s),
            MsgData::Ctrl(c) => Err(self.aborted_by(src, c)),
            other => Err(CommError::ShapeMismatch {
                rank: self.rank,
                src,
                expected: "Scalar",
                got: other.describe(),
            }),
        }
    }

    #[track_caller]
    pub fn recv_scalar(&mut self, src: usize) -> f64 {
        match self.try_recv_scalar(src) {
            Ok(s) => s,
            Err(e) => self.escalate(e),
        }
    }

    // ----- ring helpers ----------------------------------------------------

    #[inline]
    pub fn next_rank(&self) -> usize {
        self.topo.next_rank(self.rank)
    }

    #[inline]
    pub fn prev_rank(&self) -> usize {
        self.topo.prev_rank(self.rank)
    }

    #[inline]
    pub fn next_in_node(&self) -> usize {
        self.topo.next_in_node(self.rank)
    }

    #[inline]
    pub fn prev_in_node(&self) -> usize {
        self.topo.prev_in_node(self.rank)
    }

    #[inline]
    pub fn peer_next_node(&self) -> usize {
        self.topo.peer_next_node(self.rank)
    }

    #[inline]
    pub fn peer_prev_node(&self) -> usize {
        self.topo.peer_prev_node(self.rank)
    }

    /// One synchronous step of the flat global ring: send `data` to the next
    /// rank, receive the previous rank's message.
    pub fn ring_shift(&mut self, data: MsgData) -> MsgData {
        self.send(self.next_rank(), data);
        self.recv(self.prev_rank())
    }

    /// Fallible [`Communicator::ring_shift`].
    pub fn try_ring_shift(&mut self, data: MsgData) -> Result<MsgData, CommError> {
        self.try_send(self.next_rank(), data)?;
        self.try_recv(self.prev_rank())
    }

    // ----- collectives -----------------------------------------------------

    /// Global barrier: gather-to-0 + broadcast of empty messages. After it
    /// returns, every rank's clock equals the global maximum (plus the
    /// barrier's own latency cost).
    pub fn barrier(&mut self) {
        if let Err(e) = self.try_barrier() {
            self.escalate(e);
        }
    }

    /// Fallible [`Communicator::barrier`].
    pub fn try_barrier(&mut self) -> Result<(), CommError> {
        let g = self.world_size();
        if g == 1 {
            return Ok(());
        }
        if self.rank == 0 {
            for src in 1..g {
                let _ = self.try_recv(src)?;
            }
            for dst in 1..g {
                self.try_send(dst, MsgData::Empty)?;
            }
        } else {
            self.try_send(0, MsgData::Empty)?;
            let _ = self.try_recv(0)?;
        }
        Ok(())
    }

    /// Ring all-gather: returns every rank's matrix, indexed by rank.
    ///
    /// Implements the standard `G-1`-step ring (each step forwards the block
    /// received in the previous step), so port occupancy and latency follow
    /// the real algorithm.
    pub fn all_gather_mat(&mut self, mine: &Mat) -> Vec<Mat> {
        match self.try_all_gather_mat(mine) {
            Ok(v) => v,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible [`Communicator::all_gather_mat`].
    pub fn try_all_gather_mat(&mut self, mine: &Mat) -> Result<Vec<Mat>, CommError> {
        let g = self.world_size();
        let mut parts: Vec<Option<Mat>> = vec![None; g];
        parts[self.rank] = Some(mine.clone());
        let mut cursor = self.rank; // index of the block we forward next
        for _ in 0..g.saturating_sub(1) {
            let outgoing = parts[cursor].clone().expect("ring all-gather invariant");
            let payload = self.mat_payload(outgoing);
            self.try_send(self.next_rank(), payload)?;
            let incoming = self.try_recv_mat(self.prev_rank())?;
            cursor = (cursor + g - 1) % g;
            parts[cursor] = Some(incoming);
        }
        Ok(parts
            .into_iter()
            .map(|p| p.expect("ring all-gather missed a block"))
            .collect())
    }

    /// Ring reduce-scatter (sum): `parts[d]` is this rank's contribution to
    /// destination rank `d`; returns the fully reduced block owned by this
    /// rank.
    #[track_caller]
    pub fn reduce_scatter_mat(&mut self, parts: &[Mat]) -> Mat {
        match self.try_reduce_scatter_mat(parts) {
            Ok(m) => m,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible [`Communicator::reduce_scatter_mat`].
    #[track_caller]
    pub fn try_reduce_scatter_mat(&mut self, parts: &[Mat]) -> Result<Mat, CommError> {
        let g = self.world_size();
        assert_eq!(
            parts.len(),
            g,
            "rank {}: reduce_scatter: need one part per rank ({} given, world size {g})",
            self.rank,
            parts.len()
        );
        if g == 1 {
            return Ok(parts[0].clone());
        }
        // Standard ring: block b starts at rank (b + G - 1) % G and flows
        // toward decreasing ranks, accumulating, until it lands on rank b.
        let mut acc: Vec<Mat> = parts.to_vec();
        let mut cursor = (self.rank + 1) % g; // block we send first
        for _ in 0..g - 1 {
            let outgoing = acc[cursor].clone();
            let payload = self.mat_payload(outgoing);
            self.try_send(self.prev_rank(), payload)?;
            let incoming = self.try_recv_mat(self.next_rank())?;
            cursor = (cursor + 1) % g;
            if incoming.shape() != acc[cursor].shape() {
                return Err(CommError::ShapeMismatch {
                    rank: self.rank,
                    src: self.next_rank(),
                    expected: "reduce-scatter block of matching shape",
                    got: format!(
                        "Mat {}x{} (expected {}x{})",
                        incoming.rows(),
                        incoming.cols(),
                        acc[cursor].rows(),
                        acc[cursor].cols()
                    ),
                });
            }
            acc[cursor].add_assign(&incoming);
        }
        debug_assert_eq!(cursor, self.rank);
        Ok(acc[self.rank].clone())
    }

    /// All-reduce (sum) of a matrix: ring reduce-scatter over row blocks
    /// followed by ring all-gather when the row count divides evenly,
    /// otherwise a gather-broadcast fallback.
    pub fn all_reduce_mat(&mut self, m: &Mat) -> Mat {
        match self.try_all_reduce_mat(m) {
            Ok(m) => m,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible [`Communicator::all_reduce_mat`].
    pub fn try_all_reduce_mat(&mut self, m: &Mat) -> Result<Mat, CommError> {
        let g = self.world_size();
        if g == 1 {
            return Ok(m.clone());
        }
        if m.rows().is_multiple_of(g) && m.rows() >= g {
            let parts = m.chunk_rows(g);
            let mine = self.try_reduce_scatter_mat(&parts)?;
            let gathered = self.try_all_gather_mat(&mine)?;
            Ok(Mat::vstack(&gathered))
        } else {
            // Gather to rank 0, reduce, broadcast.
            if self.rank == 0 {
                let mut acc = m.clone();
                for src in 1..g {
                    let part = self.try_recv_mat(src)?;
                    if part.shape() != acc.shape() {
                        return Err(CommError::ShapeMismatch {
                            rank: self.rank,
                            src,
                            expected: "all-reduce contribution of matching shape",
                            got: format!(
                                "Mat {}x{} (expected {}x{})",
                                part.rows(),
                                part.cols(),
                                acc.rows(),
                                acc.cols()
                            ),
                        });
                    }
                    acc.add_assign(&part);
                }
                for dst in 1..g {
                    self.try_send_mat(dst, &acc)?;
                }
                Ok(acc)
            } else {
                self.try_send_mat(0, m)?;
                self.try_recv_mat(0)
            }
        }
    }

    /// All-to-all: `outgoing[d]` goes to rank `d`; returns `incoming[s]`
    /// from each rank `s` (our own block passes through untouched).
    #[track_caller]
    pub fn all_to_all_mat(&mut self, outgoing: Vec<Mat>) -> Vec<Mat> {
        match self.try_all_to_all_mat(outgoing) {
            Ok(v) => v,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible [`Communicator::all_to_all_mat`].
    #[track_caller]
    pub fn try_all_to_all_mat(&mut self, outgoing: Vec<Mat>) -> Result<Vec<Mat>, CommError> {
        let g = self.world_size();
        assert_eq!(
            outgoing.len(),
            g,
            "rank {}: all_to_all: need one block per rank ({} given, world size {g})",
            self.rank,
            outgoing.len()
        );
        let mut incoming: Vec<Option<Mat>> = vec![None; g];
        // Schedule sends in an offset pattern (classic balanced exchange).
        let mut keep = None;
        for (d, block) in outgoing.into_iter().enumerate() {
            if d == self.rank {
                keep = Some(block);
            } else {
                let payload = self.mat_payload(block);
                self.try_send(d, payload)?;
            }
        }
        incoming[self.rank] = keep;
        for off in 1..g {
            let src = (self.rank + g - off) % g;
            incoming[src] = Some(self.try_recv_mat(src)?);
        }
        Ok(incoming
            .into_iter()
            .map(|p| p.expect("all_to_all missed a block"))
            .collect())
    }

    /// Broadcast from `root`. Non-root ranks pass `None`.
    #[track_caller]
    pub fn broadcast_mat(&mut self, root: usize, m: Option<&Mat>) -> Mat {
        match self.try_broadcast_mat(root, m) {
            Ok(m) => m,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible [`Communicator::broadcast_mat`].
    #[track_caller]
    pub fn try_broadcast_mat(&mut self, root: usize, m: Option<&Mat>) -> Result<Mat, CommError> {
        if self.rank == root {
            let m = m.unwrap_or_else(|| {
                panic!("rank {}: broadcast: root must supply the matrix", self.rank)
            });
            for dst in 0..self.world_size() {
                if dst != root {
                    self.try_send_mat(dst, m)?;
                }
            }
            Ok(m.clone())
        } else {
            self.try_recv_mat(root)
        }
    }

    /// All-reduce (sum) of a flat vector via gather-broadcast (used for
    /// scalars/short vectors where ring overhead is irrelevant).
    pub fn all_reduce_vec(&mut self, v: &[f32]) -> Vec<f32> {
        match self.try_all_reduce_vec(v) {
            Ok(v) => v,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible [`Communicator::all_reduce_vec`].
    pub fn try_all_reduce_vec(&mut self, v: &[f32]) -> Result<Vec<f32>, CommError> {
        let g = self.world_size();
        if g == 1 {
            return Ok(v.to_vec());
        }
        if self.rank == 0 {
            let mut acc = v.to_vec();
            for src in 1..g {
                let part = self.try_recv_vec(src)?;
                if part.len() != acc.len() {
                    return Err(CommError::ShapeMismatch {
                        rank: self.rank,
                        src,
                        expected: "all-reduce vector of matching length",
                        got: format!("Vec[{}] (expected Vec[{}])", part.len(), acc.len()),
                    });
                }
                for (a, p) in acc.iter_mut().zip(&part) {
                    *a += p;
                }
            }
            for dst in 1..g {
                self.try_send_vec(dst, &acc)?;
            }
            Ok(acc)
        } else {
            self.try_send_vec(0, v)?;
            self.try_recv_vec(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_math_saturates_near_clock_max() {
        // A virtual clock parked near f64::MAX plus a large-but-finite
        // timeout budget must clamp to f64::MAX, not overflow to infinity
        // (which would silently disable the deadline).
        let d = saturating_deadline(f64::MAX, 1e307);
        assert!(d.is_finite(), "finite budget must yield a finite deadline");
        assert_eq!(d, f64::MAX);
        // Ordinary arithmetic is untouched.
        assert_eq!(saturating_deadline(1.5, 2.0), 3.5);
        // An unset (infinite) budget genuinely means "no deadline".
        assert_eq!(saturating_deadline(1e100, f64::INFINITY), f64::INFINITY);
        assert_eq!(saturating_deadline(f64::MAX, f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn ctrl_messages_have_checksums_and_describe() {
        let c = MsgData::Ctrl(CtrlMsg {
            kind: CtrlKind::Abort,
            epoch: 3,
            suspects: vec![1, 2],
        });
        assert_eq!(c.elems(), 4);
        assert!(c.describe().contains("Abort"));
        let mut tampered = c.clone();
        tampered.corrupt_in_place();
        assert_ne!(c.checksum(), tampered.checksum());
    }
}
