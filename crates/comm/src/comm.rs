//! The per-rank [`Communicator`]: P2P messaging, collectives, virtual clock.

use crate::stats::CommStats;
use crate::topology::Topology;
use crate::trace::TraceEvent;
use burst_tensor::Mat;
use crossbeam::channel::{Receiver, Sender};

/// A message payload. Real data moves between ranks so distributed
/// algorithms are numerically exact end-to-end.
#[derive(Debug, Clone)]
pub enum MsgData {
    Mat(Mat),
    Vec(Vec<f32>),
    Scalar(f64),
    Empty,
}

impl MsgData {
    /// Logical element count used for wire-time modeling.
    pub fn elems(&self) -> usize {
        match self {
            MsgData::Mat(m) => m.len(),
            MsgData::Vec(v) => v.len(),
            MsgData::Scalar(_) => 1,
            MsgData::Empty => 0,
        }
    }
}

/// A message in flight: payload plus its causal virtual arrival time.
#[derive(Debug, Clone)]
pub struct Msg {
    pub arrival: f64,
    pub data: MsgData,
}

/// One rank's endpoint into the simulated cluster.
///
/// Sends are non-blocking in virtual time (NCCL multi-stream style): the
/// sender's clock does not advance, but the message occupies the sender's
/// egress port (NVLink port intra-node, the GPU's IB NIC inter-node), so
/// back-to-back sends through one port serialise. A receive advances the
/// local clock to the message's arrival time — communication posted early
/// and consumed late therefore overlaps with compute automatically.
pub struct Communicator {
    rank: usize,
    topo: Topology,
    tx: Vec<Sender<Msg>>,
    rx: Vec<Receiver<Msg>>,
    clock: f64,
    intra_port_free: f64,
    nic_free: f64,
    stats: CommStats,
    trace: Option<Vec<TraceEvent>>,
}

impl Communicator {
    pub(crate) fn new(
        rank: usize,
        topo: Topology,
        tx: Vec<Sender<Msg>>,
        rx: Vec<Receiver<Msg>>,
    ) -> Self {
        Communicator {
            rank,
            topo,
            tx,
            rx,
            clock: 0.0,
            intra_port_free: 0.0,
            nic_free: 0.0,
            stats: CommStats::default(),
            trace: None,
        }
    }

    /// Start recording a virtual-time event trace (see [`crate::trace`]).
    pub fn start_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stop tracing and return the recorded events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn world_size(&self) -> usize {
        self.topo.world_size()
    }

    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    #[inline]
    pub fn node(&self) -> usize {
        self.topo.node_of(self.rank)
    }

    #[inline]
    pub fn local_rank(&self) -> usize {
        self.topo.local_rank(self.rank)
    }

    /// Current virtual time on this rank, in seconds.
    #[inline]
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// Communication/compute counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Model `seconds` of local compute (advances the virtual clock).
    pub fn advance_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        if seconds > 0.0 {
            if let Some(trace) = &mut self.trace {
                trace.push(TraceEvent::Compute {
                    start: self.clock,
                    end: self.clock + seconds,
                });
            }
        }
        self.clock += seconds;
        self.stats.compute_time += seconds;
    }

    /// Non-blocking send of `data` to `dst`.
    #[track_caller]
    pub fn send(&mut self, dst: usize, data: MsgData) {
        assert!(dst < self.world_size(), "send: dst {dst} out of range");
        assert_ne!(dst, self.rank, "send: self-send is not supported");
        let elems = data.elems();
        let bytes = self.topo.wire_bytes(elems);
        let link = self.topo.link(self.rank, dst);
        let port_free = if self.topo.same_node(self.rank, dst) {
            &mut self.intra_port_free
        } else {
            &mut self.nic_free
        };
        let depart = self.clock.max(*port_free);
        let tx_time = link.serialization(bytes);
        *port_free = depart + tx_time;
        let arrival = depart + link.latency + tx_time;
        if self.topo.same_node(self.rank, dst) {
            self.stats.intra_msgs += 1;
            self.stats.intra_elems += elems as u64;
            self.stats.intra_bytes += bytes;
        } else {
            self.stats.inter_msgs += 1;
            self.stats.inter_elems += elems as u64;
            self.stats.inter_bytes += bytes;
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Send {
                dst,
                elems,
                depart,
                arrival,
                inter_node: !self.topo.same_node(self.rank, dst),
            });
        }
        self.tx[dst]
            .send(Msg { arrival, data })
            .expect("send: peer rank terminated");
    }

    /// Blocking receive of the next message from `src`. Advances the clock
    /// to the message's causal arrival time.
    #[track_caller]
    pub fn recv(&mut self, src: usize) -> MsgData {
        assert!(src < self.world_size(), "recv: src {src} out of range");
        assert_ne!(src, self.rank, "recv: self-recv is not supported");
        let msg = self.rx[src].recv().expect("recv: peer rank terminated");
        let posted = self.clock;
        if msg.arrival > self.clock {
            self.stats.wait_time += msg.arrival - self.clock;
            self.clock = msg.arrival;
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Recv {
                src,
                elems: msg.data.elems(),
                posted,
                completed: self.clock,
            });
        }
        msg.data
    }

    // ----- typed helpers ---------------------------------------------------

    pub fn send_mat(&mut self, dst: usize, m: &Mat) {
        self.send(dst, MsgData::Mat(m.clone()));
    }

    #[track_caller]
    pub fn recv_mat(&mut self, src: usize) -> Mat {
        match self.recv(src) {
            MsgData::Mat(m) => m,
            other => panic!("recv_mat from {src}: got {other:?}"),
        }
    }

    pub fn send_vec(&mut self, dst: usize, v: &[f32]) {
        self.send(dst, MsgData::Vec(v.to_vec()));
    }

    #[track_caller]
    pub fn recv_vec(&mut self, src: usize) -> Vec<f32> {
        match self.recv(src) {
            MsgData::Vec(v) => v,
            other => panic!("recv_vec from {src}: got {other:?}"),
        }
    }

    pub fn send_scalar(&mut self, dst: usize, s: f64) {
        self.send(dst, MsgData::Scalar(s));
    }

    #[track_caller]
    pub fn recv_scalar(&mut self, src: usize) -> f64 {
        match self.recv(src) {
            MsgData::Scalar(s) => s,
            other => panic!("recv_scalar from {src}: got {other:?}"),
        }
    }

    // ----- ring helpers ----------------------------------------------------

    #[inline]
    pub fn next_rank(&self) -> usize {
        self.topo.next_rank(self.rank)
    }

    #[inline]
    pub fn prev_rank(&self) -> usize {
        self.topo.prev_rank(self.rank)
    }

    #[inline]
    pub fn next_in_node(&self) -> usize {
        self.topo.next_in_node(self.rank)
    }

    #[inline]
    pub fn prev_in_node(&self) -> usize {
        self.topo.prev_in_node(self.rank)
    }

    #[inline]
    pub fn peer_next_node(&self) -> usize {
        self.topo.peer_next_node(self.rank)
    }

    #[inline]
    pub fn peer_prev_node(&self) -> usize {
        self.topo.peer_prev_node(self.rank)
    }

    /// One synchronous step of the flat global ring: send `data` to the next
    /// rank, receive the previous rank's message.
    pub fn ring_shift(&mut self, data: MsgData) -> MsgData {
        self.send(self.next_rank(), data);
        self.recv(self.prev_rank())
    }

    // ----- collectives -----------------------------------------------------

    /// Global barrier: gather-to-0 + broadcast of empty messages. After it
    /// returns, every rank's clock equals the global maximum (plus the
    /// barrier's own latency cost).
    pub fn barrier(&mut self) {
        let g = self.world_size();
        if g == 1 {
            return;
        }
        if self.rank == 0 {
            for src in 1..g {
                let _ = self.recv(src);
            }
            for dst in 1..g {
                self.send(dst, MsgData::Empty);
            }
        } else {
            self.send(0, MsgData::Empty);
            let _ = self.recv(0);
        }
    }

    /// Ring all-gather: returns every rank's matrix, indexed by rank.
    ///
    /// Implements the standard `G-1`-step ring (each step forwards the block
    /// received in the previous step), so port occupancy and latency follow
    /// the real algorithm.
    pub fn all_gather_mat(&mut self, mine: &Mat) -> Vec<Mat> {
        let g = self.world_size();
        let mut parts: Vec<Option<Mat>> = vec![None; g];
        parts[self.rank] = Some(mine.clone());
        let mut cursor = self.rank; // index of the block we forward next
        for _ in 0..g.saturating_sub(1) {
            let outgoing = parts[cursor].clone().expect("ring all-gather invariant");
            self.send(self.next_rank(), MsgData::Mat(outgoing));
            let incoming = self.recv_mat(self.prev_rank());
            cursor = (cursor + g - 1) % g;
            parts[cursor] = Some(incoming);
        }
        parts
            .into_iter()
            .map(|p| p.expect("ring all-gather missed a block"))
            .collect()
    }

    /// Ring reduce-scatter (sum): `parts[d]` is this rank's contribution to
    /// destination rank `d`; returns the fully reduced block owned by this
    /// rank.
    #[track_caller]
    pub fn reduce_scatter_mat(&mut self, parts: &[Mat]) -> Mat {
        let g = self.world_size();
        assert_eq!(parts.len(), g, "reduce_scatter: need one part per rank");
        if g == 1 {
            return parts[0].clone();
        }
        // Standard ring: block b starts at rank (b + G - 1) % G and flows
        // toward decreasing ranks, accumulating, until it lands on rank b.
        let mut acc: Vec<Mat> = parts.to_vec();
        let mut cursor = (self.rank + 1) % g; // block we send first
        for _ in 0..g - 1 {
            let outgoing = acc[cursor].clone();
            self.send(self.prev_rank(), MsgData::Mat(outgoing));
            let incoming = self.recv_mat(self.next_rank());
            cursor = (cursor + 1) % g;
            acc[cursor].add_assign(&incoming);
        }
        debug_assert_eq!(cursor, self.rank);
        acc[self.rank].clone()
    }

    /// All-reduce (sum) of a matrix: ring reduce-scatter over row blocks
    /// followed by ring all-gather when the row count divides evenly,
    /// otherwise a gather-broadcast fallback.
    pub fn all_reduce_mat(&mut self, m: &Mat) -> Mat {
        let g = self.world_size();
        if g == 1 {
            return m.clone();
        }
        if m.rows().is_multiple_of(g) && m.rows() >= g {
            let parts = m.chunk_rows(g);
            let mine = self.reduce_scatter_mat(&parts);
            let gathered = self.all_gather_mat(&mine);
            Mat::vstack(&gathered)
        } else {
            // Gather to rank 0, reduce, broadcast.
            if self.rank == 0 {
                let mut acc = m.clone();
                for src in 1..g {
                    acc.add_assign(&self.recv_mat(src));
                }
                for dst in 1..g {
                    self.send_mat(dst, &acc);
                }
                acc
            } else {
                self.send_mat(0, m);
                self.recv_mat(0)
            }
        }
    }

    /// All-to-all: `outgoing[d]` goes to rank `d`; returns `incoming[s]`
    /// from each rank `s` (our own block passes through untouched).
    #[track_caller]
    pub fn all_to_all_mat(&mut self, outgoing: Vec<Mat>) -> Vec<Mat> {
        let g = self.world_size();
        assert_eq!(outgoing.len(), g, "all_to_all: need one block per rank");
        let mut incoming: Vec<Option<Mat>> = vec![None; g];
        // Schedule sends in an offset pattern (classic balanced exchange).
        let mut keep = None;
        for (d, block) in outgoing.into_iter().enumerate() {
            if d == self.rank {
                keep = Some(block);
            } else {
                self.send(d, MsgData::Mat(block));
            }
        }
        incoming[self.rank] = keep;
        for off in 1..g {
            let src = (self.rank + g - off) % g;
            incoming[src] = Some(self.recv_mat(src));
        }
        incoming
            .into_iter()
            .map(|p| p.expect("all_to_all missed a block"))
            .collect()
    }

    /// Broadcast from `root`. Non-root ranks pass `None`.
    #[track_caller]
    pub fn broadcast_mat(&mut self, root: usize, m: Option<&Mat>) -> Mat {
        if self.rank == root {
            let m = m.expect("broadcast: root must supply the matrix");
            for dst in 0..self.world_size() {
                if dst != root {
                    self.send_mat(dst, m);
                }
            }
            m.clone()
        } else {
            self.recv_mat(root)
        }
    }

    /// All-reduce (sum) of a flat vector via gather-broadcast (used for
    /// scalars/short vectors where ring overhead is irrelevant).
    pub fn all_reduce_vec(&mut self, v: &[f32]) -> Vec<f32> {
        let g = self.world_size();
        if g == 1 {
            return v.to_vec();
        }
        if self.rank == 0 {
            let mut acc = v.to_vec();
            for src in 1..g {
                let part = self.recv_vec(src);
                assert_eq!(part.len(), acc.len(), "all_reduce_vec: length mismatch");
                for (a, p) in acc.iter_mut().zip(&part) {
                    *a += p;
                }
            }
            for dst in 1..g {
                self.send_vec(dst, &acc);
            }
            acc
        } else {
            self.send_vec(0, v);
            self.recv_vec(0)
        }
    }
}
