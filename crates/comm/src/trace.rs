//! Virtual-time tracing: per-rank event timelines.
//!
//! When enabled, a [`crate::Communicator`] records every send (with its
//! modeled wire interval), receive (with the time spent blocked) and
//! compute span. The resulting trace is what the paper's Fig. 5 overlap
//! diagrams draw: you can *see* activations departing before the compute
//! that hides them and gradients trailing one round behind.

use serde::{Deserialize, Serialize};

/// One event on a rank's virtual timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message departed through this rank's egress port.
    Send {
        dst: usize,
        elems: usize,
        /// When the port started transmitting.
        depart: f64,
        /// When the payload fully arrived at `dst`.
        arrival: f64,
        /// Crossed the node boundary (NIC) rather than NVLink.
        inter_node: bool,
    },
    /// A receive completed.
    Recv {
        src: usize,
        elems: usize,
        /// Local clock when the receive was posted.
        posted: f64,
        /// Local clock after the message was consumed.
        completed: f64,
    },
    /// A span of modeled local compute.
    Compute { start: f64, end: f64 },
}

impl TraceEvent {
    /// The interval this event occupies on the rank's timeline.
    pub fn interval(&self) -> (f64, f64) {
        match self {
            TraceEvent::Send {
                depart, arrival, ..
            } => (*depart, *arrival),
            TraceEvent::Recv {
                posted, completed, ..
            } => (*posted, *completed),
            TraceEvent::Compute { start, end } => (*start, *end),
        }
    }

    /// Seconds this rank was *blocked* by the event (zero for sends, which
    /// are asynchronous in virtual time).
    pub fn blocked_secs(&self) -> f64 {
        match self {
            TraceEvent::Send { .. } => 0.0,
            TraceEvent::Recv {
                posted, completed, ..
            } => (completed - posted).max(0.0),
            TraceEvent::Compute { start, end } => end - start,
        }
    }
}

/// Summarise a rank's trace: `(compute, wait, send_count, bytes_modeled)`.
/// Robust to arbitrary event order and zero-length spans (all fields are
/// order-independent sums, clamped so a degenerate interval cannot go
/// negative).
pub fn summarize(trace: &[TraceEvent]) -> TraceSummary {
    let mut s = TraceSummary::default();
    for e in trace {
        match e {
            TraceEvent::Compute { start, end } => s.compute_secs += (end - start).max(0.0),
            TraceEvent::Recv {
                posted, completed, ..
            } => {
                s.wait_secs += (completed - posted).max(0.0);
                s.recvs += 1;
            }
            TraceEvent::Send {
                elems, inter_node, ..
            } => {
                s.sends += 1;
                s.sent_elems += elems;
                if *inter_node {
                    s.inter_sends += 1;
                }
            }
        }
    }
    s
}

/// Aggregate numbers derived from a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    pub compute_secs: f64,
    pub wait_secs: f64,
    pub sends: usize,
    pub inter_sends: usize,
    pub recvs: usize,
    pub sent_elems: usize,
}

/// Render a fixed-width ASCII Gantt row for a rank's timeline:
/// `#` = compute, `.` = blocked waiting, ` ` = idle/overlapped comm.
///
/// Events are sorted by interval start before painting (the recorder emits
/// them in *completion* order), zero-length spans paint a single cell, and
/// a degenerate timeline (`t_end <= 0` — e.g. 1 rank, 0 compute) collapses
/// everything onto the first cell instead of dividing by zero.
pub fn ascii_lane(trace: &[TraceEvent], t_end: f64, width: usize) -> String {
    let mut lane = vec![' '; width];
    if width == 0 {
        return String::new();
    }
    let mut events: Vec<&TraceEvent> = trace.iter().collect();
    events.sort_by(|a, b| {
        a.interval()
            .0
            .partial_cmp(&b.interval().0)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let scale = if t_end > 0.0 {
        width as f64 / t_end
    } else {
        0.0
    };
    let mut paint = |a: f64, b: f64, ch: char| {
        if !a.is_finite() || !b.is_finite() || b < a {
            return;
        }
        let lo = ((a * scale).floor() as usize).min(width - 1);
        let hi = ((b * scale).ceil() as usize).clamp(lo + 1, width);
        for c in lane.iter_mut().take(hi).skip(lo) {
            if *c == ' ' || (ch == '#' && *c == '.') {
                *c = ch;
            }
        }
    };
    for e in events {
        match e {
            TraceEvent::Compute { start, end } => paint(*start, *end, '#'),
            TraceEvent::Recv {
                posted, completed, ..
            } => paint(*posted, *completed, '.'),
            TraceEvent::Send { .. } => {}
        }
    }
    lane.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_accumulates() {
        let trace = vec![
            TraceEvent::Compute {
                start: 0.0,
                end: 1.0,
            },
            TraceEvent::Send {
                dst: 1,
                elems: 10,
                depart: 0.5,
                arrival: 0.9,
                inter_node: true,
            },
            TraceEvent::Recv {
                src: 1,
                elems: 5,
                posted: 1.0,
                completed: 1.5,
            },
        ];
        let s = summarize(&trace);
        assert_eq!(s.compute_secs, 1.0);
        assert_eq!(s.wait_secs, 0.5);
        assert_eq!(s.sends, 1);
        assert_eq!(s.inter_sends, 1);
        assert_eq!(s.recvs, 1);
        assert_eq!(s.sent_elems, 10);
    }

    #[test]
    fn ascii_lane_paints_compute_over_waits() {
        let trace = vec![
            TraceEvent::Recv {
                src: 0,
                elems: 1,
                posted: 0.0,
                completed: 1.0,
            },
            TraceEvent::Compute {
                start: 0.5,
                end: 1.0,
            },
        ];
        let lane = ascii_lane(&trace, 1.0, 8);
        assert_eq!(lane.len(), 8);
        assert!(lane.starts_with("...."), "{lane:?}");
        assert!(lane.ends_with("####"), "{lane:?}");
    }

    #[test]
    fn ascii_lane_handles_degenerate_timelines() {
        // Zero-length span on a zero-length timeline: 1 rank, 0 compute.
        let trace = vec![TraceEvent::Compute {
            start: 0.0,
            end: 0.0,
        }];
        let lane = ascii_lane(&trace, 0.0, 8);
        assert_eq!(lane.len(), 8);
        assert_eq!(&lane[..1], "#", "zero-length span paints one cell");
        // Empty trace, zero width: no panic, no cells.
        assert_eq!(ascii_lane(&[], 1.0, 0), "");
        // Zero-length wait at the very end of the timeline stays in range.
        let trace = vec![TraceEvent::Recv {
            src: 0,
            elems: 0,
            posted: 1.0,
            completed: 1.0,
        }];
        let lane = ascii_lane(&trace, 1.0, 4);
        assert_eq!(lane, "   .");
    }

    #[test]
    fn ascii_lane_sorts_events_before_painting() {
        // Recorded in completion order (recv completes after the compute
        // that preceded it started): painting must not depend on order.
        let shuffled = vec![
            TraceEvent::Compute {
                start: 0.5,
                end: 1.0,
            },
            TraceEvent::Recv {
                src: 0,
                elems: 1,
                posted: 0.0,
                completed: 1.0,
            },
        ];
        let sorted = vec![shuffled[1].clone(), shuffled[0].clone()];
        assert_eq!(ascii_lane(&shuffled, 1.0, 8), ascii_lane(&sorted, 1.0, 8));
        // summarize tolerates inverted intervals without going negative.
        let s = summarize(&[TraceEvent::Compute {
            start: 2.0,
            end: 1.0,
        }]);
        assert_eq!(s.compute_secs, 0.0);
    }

    #[test]
    fn blocked_secs_semantics() {
        let send = TraceEvent::Send {
            dst: 0,
            elems: 1,
            depart: 0.0,
            arrival: 5.0,
            inter_node: false,
        };
        assert_eq!(send.blocked_secs(), 0.0);
        let recv = TraceEvent::Recv {
            src: 0,
            elems: 1,
            posted: 1.0,
            completed: 3.0,
        };
        assert_eq!(recv.blocked_secs(), 2.0);
    }
}
