//! Deterministic fault injection: typed communication errors and a seeded
//! [`FaultPlan`] that turns the virtual cluster into a failure testbed.
//!
//! The plan is pure data attached to a [`crate::World`]: it schedules rank
//! crashes (at a virtual time or at the n-th communication operation),
//! per-link extra delay and seeded jitter (stragglers), message drops and
//! payload corruption. Because every trigger is keyed off the deterministic
//! virtual clock and per-link message counters — never off wall time or OS
//! scheduling — the same plan and seed reproduce the same failure, bit for
//! bit, on every run.
//!
//! Failures surface as [`CommError`] values naming the local rank, the peer
//! and the deadline or payload detail involved, instead of context-free
//! panics or deadlocks. The fallible `try_*` operations on
//! [`crate::Communicator`] return them directly;
//! [`crate::World::run_faulty`] collects per-rank `Result`s so one dead
//! rank no longer aborts the whole simulation.

/// A typed communication failure. Every injected fault (crash, timeout,
/// drop, corruption) and every structural misuse (wrong payload kind)
/// resolves to one of these, carrying enough context to attribute the
/// failure to a rank, a peer and a cause.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// The peer's rank thread terminated (crashed or returned early) while
    /// `rank` was exchanging data with it. `at` is the observer's virtual
    /// clock when the loss was detected.
    PeerLost { rank: usize, src: usize, at: f64 },
    /// A message from `src` did not arrive by the virtual-clock deadline
    /// (straggler link or dropped packet). `at` is the observer's virtual
    /// clock when the timeout fired.
    Timeout {
        rank: usize,
        src: usize,
        deadline: f64,
        at: f64,
    },
    /// The payload kind or shape did not match what the receiver expected.
    ShapeMismatch {
        rank: usize,
        src: usize,
        expected: &'static str,
        got: String,
    },
    /// The payload failed checksum validation (in-flight corruption).
    Corrupt {
        rank: usize,
        src: usize,
        detail: String,
    },
    /// This rank hit its scheduled [`FaultPlan`] crash point.
    Crashed { rank: usize, at: f64 },
    /// A rank panicked with a payload that was not a [`CommError`]
    /// (collected by [`crate::World::run_faulty`] instead of unwinding).
    Panicked { rank: usize, detail: String },
    /// A control message (abort/eviction traffic from the elastic layer)
    /// arrived where a data payload was expected: peer `src` abandoned the
    /// collective in flight, naming `suspects` as the ranks it believes
    /// dead. The receiver should stop the collective and join the eviction
    /// agreement (see `membership`).
    Aborted {
        rank: usize,
        src: usize,
        epoch: u64,
        suspects: Vec<usize>,
        at: f64,
    },
    /// The alive set changed underneath a shrinking collective: `evicted`
    /// ranks were removed at membership epoch `epoch`. The caller must
    /// re-derive its ring neighbors from the updated membership and re-run.
    Evicted {
        rank: usize,
        epoch: u64,
        evicted: Vec<usize>,
        at: f64,
    },
}

impl CommError {
    /// The rank on which the error was observed.
    pub fn rank(&self) -> usize {
        match self {
            CommError::PeerLost { rank, .. }
            | CommError::Timeout { rank, .. }
            | CommError::ShapeMismatch { rank, .. }
            | CommError::Corrupt { rank, .. }
            | CommError::Crashed { rank, .. }
            | CommError::Panicked { rank, .. }
            | CommError::Aborted { rank, .. }
            | CommError::Evicted { rank, .. } => *rank,
        }
    }

    /// The peer involved, when the failure has one.
    pub fn peer(&self) -> Option<usize> {
        match self {
            CommError::PeerLost { src, .. }
            | CommError::Timeout { src, .. }
            | CommError::ShapeMismatch { src, .. }
            | CommError::Corrupt { src, .. }
            | CommError::Aborted { src, .. } => Some(*src),
            CommError::Crashed { .. } | CommError::Panicked { .. } | CommError::Evicted { .. } => {
                None
            }
        }
    }

    /// The virtual time at which the failure was observed, when known —
    /// pins each rank's failure to the deterministic virtual clock so
    /// eviction decisions and test assertions can reason about *when*, not
    /// just where, a rank died.
    pub fn at_time(&self) -> Option<f64> {
        match self {
            CommError::PeerLost { at, .. }
            | CommError::Timeout { at, .. }
            | CommError::Crashed { at, .. }
            | CommError::Aborted { at, .. }
            | CommError::Evicted { at, .. } => Some(*at),
            CommError::ShapeMismatch { .. }
            | CommError::Corrupt { .. }
            | CommError::Panicked { .. } => None,
        }
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerLost { rank, src, at } => {
                write!(
                    f,
                    "rank {rank}: peer rank {src} terminated (observed at virtual time {at:.6}s)"
                )
            }
            CommError::Timeout {
                rank,
                src,
                deadline,
                at,
            } => write!(
                f,
                "rank {rank}: message from rank {src} missed its virtual deadline \
                 ({deadline:.6}s, observed at {at:.6}s)"
            ),
            CommError::ShapeMismatch {
                rank,
                src,
                expected,
                got,
            } => write!(
                f,
                "rank {rank}: payload from rank {src} has wrong kind/shape: \
                 expected {expected}, got {got}"
            ),
            CommError::Corrupt { rank, src, detail } => {
                write!(f, "rank {rank}: corrupt payload from rank {src}: {detail}")
            }
            CommError::Crashed { rank, at } => {
                write!(f, "rank {rank}: injected crash at virtual time {at:.6}s")
            }
            CommError::Panicked { rank, detail } => {
                write!(f, "rank {rank}: panicked: {detail}")
            }
            CommError::Aborted {
                rank,
                src,
                epoch,
                suspects,
                at,
            } => write!(
                f,
                "rank {rank}: peer rank {src} aborted the collective at epoch {epoch} \
                 suspecting ranks {suspects:?} (observed at {at:.6}s)"
            ),
            CommError::Evicted {
                rank,
                epoch,
                evicted,
                at,
            } => write!(
                f,
                "rank {rank}: membership shrank to epoch {epoch} (evicted ranks \
                 {evicted:?} at virtual time {at:.6}s); re-derive neighbors and re-run"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// When a scheduled crash fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashAt {
    /// Crash at the first communication operation at or after this virtual
    /// time.
    Time(f64),
    /// Crash at the n-th communication operation (send or receive,
    /// 0-based) on that rank.
    Op(u64),
}

/// The direction of a scheduled elastic membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The rank departs the training ring before executing the step.
    Leave,
    /// The rank petitions the leader for re-admission before the step.
    Join,
}

/// One scheduled membership event: before executing `step`, `rank` either
/// leaves the training ring or petitions to rejoin it. Joins at a step are
/// processed before leaves at the same step, so a valid schedule requires a
/// rank's rejoin step to be strictly greater than its departure step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    pub step: u64,
    pub rank: usize,
    pub kind: ChurnKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct LinkFault {
    src: usize,
    dst: usize,
    /// Deterministic extra one-way latency on every message (straggler).
    extra_latency: f64,
    /// Amplitude of seeded per-message jitter added on top (uniform in
    /// `[0, jitter]`, derived from the plan seed and the message index).
    jitter: f64,
}

/// A directed link outage window: every message departing on `src → dst`
/// within `[from, until)` of virtual time is lost on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlapWindow {
    src: usize,
    dst: usize,
    from: f64,
    until: f64,
}

/// A network partition window: messages crossing between two different
/// `groups` within `[from, until)` of virtual time are lost in both
/// directions. Ranks not listed in any group form one implicit group of
/// their own (so `partition(&[&[0, 1]], ..)` cuts `{0, 1}` off from
/// everyone else).
#[derive(Debug, Clone, PartialEq)]
struct PartitionWindow {
    groups: Vec<Vec<usize>>,
    from: f64,
    until: f64,
}

impl PartitionWindow {
    fn group_of(&self, rank: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(&rank))
            .unwrap_or(usize::MAX)
    }
}

/// Why the wire lost a physical transmission — reported so the fault
/// counters can split "a packet vanished" from "the link was down".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// A per-index drop trigger or burst-drop window fired.
    Drop,
    /// The message departed inside a link-flap outage window.
    Flap,
    /// The message crossed a partition boundary during a partition window.
    Partition,
}

/// SplitMix64: a tiny, high-quality deterministic mixer — all jitter
/// randomness derives from it so a plan's seed fully determines the run.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic schedule of injected faults.
///
/// Built with a fluent API and attached to a [`crate::World`] via
/// [`crate::World::with_faults`]:
///
/// ```
/// use burst_comm::{FaultPlan, Topology, World};
/// let plan = FaultPlan::new(42)
///     .crash_at_op(2, 8)            // rank 2 dies at its 9th comm op
///     .delay_link(0, 1, 5e-3, 1e-4) // straggler NIC with jitter
///     .drop_msg(1, 0, 3)            // 4th message on link 1→0 vanishes
///     .recv_deadline(1e-3);         // virtual-clock receive timeout
/// let world = World::with_faults(Topology::single_node(4), plan);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<(usize, CrashAt)>,
    links: Vec<LinkFault>,
    drops: Vec<(usize, usize, u64)>,
    corrupts: Vec<(usize, usize, u64)>,
    recv_deadline: Option<f64>,
    /// Compute-side gradient poisoning: (rank, step, micro-batch, value)
    /// overwrites one gradient entry with `value` (NaN/Inf) after that
    /// micro-batch's backward pass.
    poisons: Vec<(usize, u64, u64, f32)>,
    /// Compute-side stragglers: (rank, factor) multiplies every
    /// `advance_compute` on that rank by `factor` (slow kernel).
    slowdowns: Vec<(usize, f64)>,
    /// Elastic membership schedule: voluntary leaves and rejoin petitions
    /// keyed off the training step counter (see [`ChurnEvent`]).
    churn: Vec<ChurnEvent>,
    /// Burst-drop windows: `(src, dst, from_index, count)` discards that
    /// many consecutive messages on the link starting at `from_index`.
    drop_windows: Vec<(usize, usize, u64, u64)>,
    /// Directed link-flap outage windows on the virtual clock.
    flaps: Vec<FlapWindow>,
    /// Network partition windows on the virtual clock.
    partitions: Vec<PartitionWindow>,
    /// Reliable-delivery transport (ack/retransmit below the comm API).
    /// `None` = the pre-transport wire: every loss surfaces to the
    /// receiver and escalation is immediate.
    transport: Option<crate::transport::TransportPolicy>,
    /// Failure-detector thresholds (always consulted before a timed-out
    /// peer is reported to the membership agreement; the default config
    /// reproduces the retry policy's escalation timing exactly).
    detector: Option<crate::transport::DetectorCfg>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedule `rank` to crash at the first comm op at or after virtual
    /// time `t`.
    pub fn crash_at_time(mut self, rank: usize, t: f64) -> Self {
        self.crashes.push((rank, CrashAt::Time(t)));
        self
    }

    /// Schedule `rank` to crash at its `op`-th communication operation
    /// (sends and receives both count, 0-based).
    pub fn crash_at_op(mut self, rank: usize, op: u64) -> Self {
        self.crashes.push((rank, CrashAt::Op(op)));
        self
    }

    /// Add `extra_latency` seconds (plus seeded jitter in `[0, jitter]`)
    /// to every message on the directed link `src → dst` (a straggler NIC).
    pub fn delay_link(mut self, src: usize, dst: usize, extra_latency: f64, jitter: f64) -> Self {
        self.links.push(LinkFault {
            src,
            dst,
            extra_latency,
            jitter,
        });
        self
    }

    /// Drop the `index`-th message (0-based) sent on the directed link
    /// `src → dst`. The receiver observes a virtual-deadline timeout
    /// instead of the payload.
    pub fn drop_msg(mut self, src: usize, dst: usize, index: u64) -> Self {
        self.drops.push((src, dst, index));
        self
    }

    /// Corrupt the payload of the `index`-th message on `src → dst`; the
    /// receiver's checksum validation reports it as [`CommError::Corrupt`].
    pub fn corrupt_msg(mut self, src: usize, dst: usize, index: u64) -> Self {
        self.corrupts.push((src, dst, index));
        self
    }

    /// Drop `count` consecutive messages on `src → dst` starting at
    /// message `from_index` (a burst-drop window — congestion shedding a
    /// whole train of packets).
    pub fn drop_burst(mut self, src: usize, dst: usize, from_index: u64, count: u64) -> Self {
        self.drop_windows.push((src, dst, from_index, count));
        self
    }

    /// Take the directed link `src → dst` down for virtual time
    /// `[from, until)`: every message *departing* in that window is lost.
    /// With a reliable transport whose retry budget outlives the window,
    /// the flap heals invisibly; without one, each lost message surfaces
    /// as a receive timeout.
    pub fn flap_link(mut self, src: usize, dst: usize, from: f64, until: f64) -> Self {
        assert!(from <= until, "flap window must have from <= until");
        self.flaps.push(FlapWindow {
            src,
            dst,
            from,
            until,
        });
        self
    }

    /// Partition the cluster for virtual time `[from, until)`: messages
    /// crossing between different `groups` are lost in both directions.
    /// Ranks not listed in any group form one implicit group of their own.
    pub fn partition(mut self, groups: &[&[usize]], from: f64, until: f64) -> Self {
        assert!(from <= until, "partition window must have from <= until");
        self.partitions.push(PartitionWindow {
            groups: groups.iter().map(|g| g.to_vec()).collect(),
            from,
            until,
        });
        self
    }

    /// Enable the reliable-delivery transport with default policy: lost or
    /// corrupted transmissions are retransmitted on a seeded RTO schedule
    /// instead of surfacing to the receiver (see [`crate::transport`]).
    pub fn reliable(self) -> Self {
        self.with_transport(crate::transport::TransportPolicy::default())
    }

    /// Enable the reliable-delivery transport with an explicit policy.
    pub fn with_transport(mut self, policy: crate::transport::TransportPolicy) -> Self {
        self.transport = Some(policy);
        self
    }

    /// Override the failure detector's thresholds (defaults reproduce the
    /// retry policy's escalation timing; see
    /// [`crate::transport::DetectorCfg`]).
    pub fn with_detector(mut self, cfg: crate::transport::DetectorCfg) -> Self {
        self.detector = Some(cfg);
        self
    }

    /// The reliable-transport policy, if enabled.
    pub fn transport(&self) -> Option<crate::transport::TransportPolicy> {
        self.transport
    }

    /// The failure-detector configuration (defaults when not overridden).
    pub fn detector_cfg(&self) -> crate::transport::DetectorCfg {
        self.detector.unwrap_or_default()
    }

    /// Overwrite one gradient entry on `rank` with `value` (typically NaN
    /// or Inf) after the backward pass of micro-batch 0 of step `step` — a
    /// compute-side fault: the communication layer stays healthy but the
    /// numerics go bad.
    pub fn poison_grad(self, rank: usize, step: u64, value: f32) -> Self {
        self.poison_grad_micro(rank, step, 0, value)
    }

    /// Like [`FaultPlan::poison_grad`], but targets a specific micro-batch
    /// within the step (for gradient-accumulation runs).
    pub fn poison_grad_micro(mut self, rank: usize, step: u64, micro: u64, value: f32) -> Self {
        self.poisons.push((rank, step, micro, value));
        self
    }

    /// Multiply every compute advance on `rank` by `factor` — a slow-kernel
    /// straggler that stretches the rank's virtual compute time without
    /// touching any link.
    pub fn slow_compute(mut self, rank: usize, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "slowdown factor must be a finite value >= 1, got {factor}"
        );
        self.slowdowns.push((rank, factor));
        self
    }

    /// The poison value scheduled for (`rank`, `step`, `micro`), if any.
    pub fn grad_poison(&self, rank: usize, step: u64, micro: u64) -> Option<f32> {
        self.poisons
            .iter()
            .find(|&&(r, s, m, _)| (r, s, m) == (rank, step, micro))
            .map(|&(_, _, _, v)| v)
    }

    /// Whether any gradient poison is scheduled for `rank` at all — lets
    /// the training loop skip per-micro gradient snapshots on clean runs.
    pub fn has_poisons(&self, rank: usize) -> bool {
        self.poisons.iter().any(|&(r, ..)| r == rank)
    }

    /// The compute-slowdown factor for `rank` (1.0 when unaffected).
    pub fn compute_slowdown(&self, rank: usize) -> f64 {
        self.slowdowns
            .iter()
            .filter(|&&(r, _)| r == rank)
            .map(|&(_, f)| f)
            .product::<f64>()
            .max(1.0)
    }

    /// Schedule `rank` to leave the training ring voluntarily just before
    /// executing `step` (0-based). The survivors agree on the departure,
    /// bump the membership epoch, and continue on the shrunken ring; the
    /// leaver parks until (and unless) a matching [`FaultPlan::join_at`] is
    /// scheduled.
    pub fn leave_at(mut self, rank: usize, step: u64) -> Self {
        self.churn.push(ChurnEvent {
            step,
            rank,
            kind: ChurnKind::Leave,
        });
        self
    }

    /// Schedule parked `rank` to petition for re-admission just before
    /// executing `step`. Must come strictly after the rank's departure
    /// (joins at a step are processed before leaves at the same step).
    pub fn join_at(mut self, rank: usize, step: u64) -> Self {
        self.churn.push(ChurnEvent {
            step,
            rank,
            kind: ChurnKind::Join,
        });
        self
    }

    /// Generate a seeded leave/join storm: `events` membership changes
    /// spread over training steps `1..steps`, Poisson-flavoured in that
    /// event kinds and victims are drawn from the plan's deterministic
    /// mixer. The generator enforces validity — a rank leaves only while
    /// present, rejoins only strictly after it left, rank 0 never departs
    /// (so the leader every parked rank petitions stays stable), and at
    /// least two ranks remain present at all times.
    pub fn churn_storm(mut self, world: usize, steps: u64, events: usize) -> Self {
        assert!(world >= 3, "churn storm needs >= 3 ranks, got {world}");
        assert!(steps >= 2, "churn storm needs >= 2 steps, got {steps}");
        let mut state = self.seed ^ 0x00c0_ffee_c0ff_ee00;
        let mut roll = move || {
            state = splitmix64(state);
            state
        };
        let mut present = vec![true; world];
        // The step each absent rank left at, to keep rejoins strictly later.
        let mut left_at = vec![0u64; world];
        for i in 0..events as u64 {
            // Non-decreasing spread of the events over the horizon.
            let step = 1 + i * (steps - 1) / events as u64;
            let absent: Vec<usize> = (0..world)
                .filter(|&r| !present[r] && left_at[r] < step)
                .collect();
            let n_present = present.iter().filter(|&&p| p).count();
            let leavable: Vec<usize> = (1..world)
                .filter(|&r| present[r] && n_present > 2)
                .collect();
            let leave = if absent.is_empty() {
                true
            } else if leavable.is_empty() {
                false
            } else {
                roll() % 2 == 0
            };
            if leave {
                let r = leavable[(roll() % leavable.len() as u64) as usize];
                present[r] = false;
                left_at[r] = step;
                self.churn.push(ChurnEvent {
                    step,
                    rank: r,
                    kind: ChurnKind::Leave,
                });
            } else {
                let r = absent[(roll() % absent.len() as u64) as usize];
                present[r] = true;
                self.churn.push(ChurnEvent {
                    step,
                    rank: r,
                    kind: ChurnKind::Join,
                });
            }
        }
        self
    }

    /// The full churn schedule, in insertion (= step) order.
    pub fn churn_events(&self) -> &[ChurnEvent] {
        &self.churn
    }

    /// Whether any elastic membership events are scheduled at all.
    pub fn has_churn(&self) -> bool {
        !self.churn.is_empty()
    }

    /// Ranks scheduled to leave just before `step`, ascending.
    pub fn leaves_at(&self, step: u64) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .churn
            .iter()
            .filter(|e| e.kind == ChurnKind::Leave && e.step == step)
            .map(|e| e.rank)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Ranks scheduled to petition for re-admission just before `step`,
    /// ascending.
    pub fn joins_at(&self, step: u64) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .churn
            .iter()
            .filter(|e| e.kind == ChurnKind::Join && e.step == step)
            .map(|e| e.rank)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The step at which parked `rank` is scheduled to rejoin after having
    /// left at `after` (the earliest join strictly later than `after`), if
    /// any — what a departed rank consults to know when to petition.
    pub fn rejoin_step(&self, rank: usize, after: u64) -> Option<u64> {
        self.churn
            .iter()
            .filter(|e| e.kind == ChurnKind::Join && e.rank == rank && e.step > after)
            .map(|e| e.step)
            .min()
    }

    /// Set the virtual-clock receive deadline: a `try_recv` whose message
    /// arrives more than `seconds` of virtual time after the receive was
    /// posted fails with [`CommError::Timeout`]. Default: no deadline.
    pub fn recv_deadline(mut self, seconds: f64) -> Self {
        self.recv_deadline = Some(seconds);
        self
    }

    /// The configured virtual receive deadline (`INFINITY` when unset).
    pub fn deadline_secs(&self) -> f64 {
        self.recv_deadline.unwrap_or(f64::INFINITY)
    }

    /// The crash trigger for `rank`, if one is scheduled.
    pub(crate) fn crash_trigger(&self, rank: usize) -> Option<CrashAt> {
        self.crashes
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|(_, at)| *at)
    }

    /// Deterministic extra latency for message `index` on `src → dst`.
    pub(crate) fn extra_latency(&self, src: usize, dst: usize, index: u64) -> f64 {
        let mut extra = 0.0;
        for l in &self.links {
            if l.src == src && l.dst == dst {
                extra += l.extra_latency;
                if l.jitter > 0.0 {
                    let h = splitmix64(
                        self.seed
                            ^ (src as u64).wrapping_mul(0x100_0001)
                            ^ (dst as u64).wrapping_mul(0x1_0000_01b3)
                            ^ index.wrapping_mul(0x9e3779b1),
                    );
                    extra += l.jitter * (h >> 11) as f64 / (1u64 << 53) as f64;
                }
            }
        }
        extra
    }

    pub(crate) fn should_drop(&self, src: usize, dst: usize, index: u64) -> bool {
        self.drops
            .iter()
            .any(|&(s, d, i)| (s, d, i) == (src, dst, index))
    }

    pub(crate) fn should_corrupt(&self, src: usize, dst: usize, index: u64) -> bool {
        self.corrupts
            .iter()
            .any(|&(s, d, i)| (s, d, i) == (src, dst, index))
    }

    /// Whether — and why — the wire loses a physical transmission of
    /// message `index` on `src → dst` departing at virtual time `at`.
    /// Keying flap/partition windows off the *departure* time is what lets
    /// a retransmitting transport outlive them: each RTO backoff pushes
    /// the next attempt's departure later until it clears the window.
    pub(crate) fn link_loss(
        &self,
        src: usize,
        dst: usize,
        index: u64,
        at: f64,
    ) -> Option<LossKind> {
        if self.should_drop(src, dst, index) {
            return Some(LossKind::Drop);
        }
        if self
            .drop_windows
            .iter()
            .any(|&(s, d, f, c)| s == src && d == dst && index >= f && index < f.saturating_add(c))
        {
            return Some(LossKind::Drop);
        }
        if self
            .flaps
            .iter()
            .any(|w| w.src == src && w.dst == dst && at >= w.from && at < w.until)
        {
            return Some(LossKind::Flap);
        }
        if self
            .partitions
            .iter()
            .any(|p| at >= p.from && at < p.until && p.group_of(src) != p.group_of(dst))
        {
            return Some(LossKind::Partition);
        }
        None
    }

    /// Whether the plan schedules any transient wire faults at all (used
    /// by docs/tests to label all-transient plans).
    pub fn has_transient_faults(&self) -> bool {
        !self.drops.is_empty()
            || !self.corrupts.is_empty()
            || !self.drop_windows.is_empty()
            || !self.flaps.is_empty()
            || !self.partitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let plan = FaultPlan::new(7).delay_link(0, 1, 1e-3, 5e-4);
        for idx in 0..32 {
            let a = plan.extra_latency(0, 1, idx);
            let b = plan.extra_latency(0, 1, idx);
            assert_eq!(a, b, "same seed and index must give identical jitter");
            assert!((1e-3..1e-3 + 5e-4).contains(&a));
        }
        // Different indices produce different jitter (with overwhelming
        // probability for this seed).
        assert_ne!(plan.extra_latency(0, 1, 0), plan.extra_latency(0, 1, 1));
        // Unaffected links see no delay.
        assert_eq!(plan.extra_latency(1, 0, 0), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).delay_link(0, 1, 0.0, 1e-3);
        let b = FaultPlan::new(2).delay_link(0, 1, 0.0, 1e-3);
        assert_ne!(a.extra_latency(0, 1, 0), b.extra_latency(0, 1, 0));
    }

    #[test]
    fn triggers_match_exact_messages() {
        let plan = FaultPlan::new(0).drop_msg(2, 3, 5).corrupt_msg(3, 2, 1);
        assert!(plan.should_drop(2, 3, 5));
        assert!(!plan.should_drop(2, 3, 4));
        assert!(!plan.should_drop(3, 2, 5));
        assert!(plan.should_corrupt(3, 2, 1));
        assert!(!plan.should_corrupt(3, 2, 0));
    }

    #[test]
    fn error_accessors_report_rank_and_peer() {
        let e = CommError::Timeout {
            rank: 3,
            src: 1,
            deadline: 0.5,
            at: 0.75,
        };
        assert_eq!(e.rank(), 3);
        assert_eq!(e.peer(), Some(1));
        assert_eq!(e.at_time(), Some(0.75));
        assert!(format!("{e}").contains("rank 3"));
        assert!(format!("{e}").contains("rank 1"));
        let c = CommError::Crashed { rank: 2, at: 1.0 };
        assert_eq!(c.peer(), None);
        assert_eq!(c.at_time(), Some(1.0));
        let a = CommError::Aborted {
            rank: 0,
            src: 2,
            epoch: 1,
            suspects: vec![3],
            at: 2.5,
        };
        assert_eq!(a.peer(), Some(2));
        assert_eq!(a.at_time(), Some(2.5));
        let v = CommError::Evicted {
            rank: 0,
            epoch: 2,
            evicted: vec![1, 3],
            at: 3.0,
        };
        assert_eq!(v.peer(), None);
        assert!(format!("{v}").contains("epoch 2"));
    }

    #[test]
    fn churn_schedule_is_queryable_per_step() {
        let plan = FaultPlan::new(3)
            .leave_at(2, 4)
            .leave_at(1, 4)
            .join_at(2, 7)
            .join_at(1, 9);
        assert!(plan.has_churn());
        assert_eq!(plan.leaves_at(4), vec![1, 2]);
        assert_eq!(plan.leaves_at(5), Vec::<usize>::new());
        assert_eq!(plan.joins_at(7), vec![2]);
        assert_eq!(plan.joins_at(9), vec![1]);
        assert_eq!(plan.rejoin_step(2, 4), Some(7));
        assert_eq!(plan.rejoin_step(1, 4), Some(9));
        assert_eq!(plan.rejoin_step(1, 9), None);
        assert_eq!(plan.churn_events().len(), 4);
        assert!(!FaultPlan::new(0).has_churn());
    }

    #[test]
    fn churn_storm_is_deterministic_and_valid() {
        for seed in [7u64, 23, 42, 1234] {
            let a = FaultPlan::new(seed).churn_storm(6, 24, 8);
            let b = FaultPlan::new(seed).churn_storm(6, 24, 8);
            assert_eq!(a.churn_events(), b.churn_events());
            assert_eq!(a.churn_events().len(), 8);

            // Replay the schedule and check every validity invariant.
            let mut present = [true; 6];
            let mut left_at = [0u64; 6];
            let mut last_step = 0u64;
            for e in a.churn_events() {
                assert!(e.step >= last_step, "events must be step-ordered");
                last_step = e.step;
                assert!(e.step >= 1 && e.step < 24);
                match e.kind {
                    ChurnKind::Leave => {
                        assert_ne!(e.rank, 0, "rank 0 must never depart");
                        assert!(present[e.rank], "only present ranks may leave");
                        present[e.rank] = false;
                        left_at[e.rank] = e.step;
                        let n = present.iter().filter(|&&p| p).count();
                        assert!(n >= 2, "membership must never shrink below 2");
                    }
                    ChurnKind::Join => {
                        assert!(!present[e.rank], "only absent ranks may join");
                        assert!(
                            e.step > left_at[e.rank],
                            "rejoin must be strictly after departure"
                        );
                        present[e.rank] = true;
                    }
                }
            }
        }
        // Different seeds give different storms (for these seeds).
        let a = FaultPlan::new(7).churn_storm(6, 24, 8);
        let b = FaultPlan::new(8).churn_storm(6, 24, 8);
        assert_ne!(a.churn_events(), b.churn_events());
    }

    #[test]
    fn burst_windows_flaps_and_partitions_trigger_precisely() {
        let plan = FaultPlan::new(5)
            .drop_burst(0, 1, 4, 3)
            .flap_link(2, 3, 1e-3, 2e-3)
            .partition(&[&[0, 1]], 5e-3, 6e-3);
        assert!(plan.has_transient_faults());
        // Burst window covers indices [4, 7) on 0→1 only.
        assert_eq!(plan.link_loss(0, 1, 3, 0.0), None);
        assert_eq!(plan.link_loss(0, 1, 4, 0.0), Some(LossKind::Drop));
        assert_eq!(plan.link_loss(0, 1, 6, 0.0), Some(LossKind::Drop));
        assert_eq!(plan.link_loss(0, 1, 7, 0.0), None);
        assert_eq!(plan.link_loss(1, 0, 5, 0.0), None);
        // Flap is directed and keyed off departure time, half-open window.
        assert_eq!(plan.link_loss(2, 3, 0, 0.5e-3), None);
        assert_eq!(plan.link_loss(2, 3, 0, 1e-3), Some(LossKind::Flap));
        assert_eq!(plan.link_loss(2, 3, 0, 1.9e-3), Some(LossKind::Flap));
        assert_eq!(plan.link_loss(2, 3, 0, 2e-3), None);
        assert_eq!(plan.link_loss(3, 2, 0, 1.5e-3), None);
        // Partition cuts {0,1} from the implicit rest, both directions.
        assert_eq!(plan.link_loss(0, 2, 0, 5.5e-3), Some(LossKind::Partition));
        assert_eq!(plan.link_loss(2, 1, 0, 5.5e-3), Some(LossKind::Partition));
        assert_eq!(plan.link_loss(0, 1, 0, 5.5e-3), None, "same group stays up");
        assert_eq!(
            plan.link_loss(2, 3, 0, 5.5e-3),
            None,
            "implicit group stays up"
        );
        assert_eq!(plan.link_loss(0, 2, 0, 6e-3), None, "window is half-open");
        // Per-index drops still report as plain drops.
        let p2 = FaultPlan::new(0).drop_msg(1, 2, 9);
        assert_eq!(p2.link_loss(1, 2, 9, 0.0), Some(LossKind::Drop));
        assert!(!FaultPlan::new(0).has_transient_faults());
    }

    #[test]
    fn transport_and_detector_are_opt_in() {
        let plain = FaultPlan::new(1);
        assert!(plain.transport().is_none());
        assert_eq!(
            plain.detector_cfg(),
            crate::transport::DetectorCfg::default()
        );
        let reliable = FaultPlan::new(1).reliable();
        assert_eq!(
            reliable.transport(),
            Some(crate::transport::TransportPolicy::default())
        );
        let strict = FaultPlan::new(1).with_detector(crate::transport::DetectorCfg {
            fail_threshold: Some(7),
            ..Default::default()
        });
        assert_eq!(strict.detector_cfg().fail_threshold, Some(7));
    }

    #[test]
    fn compute_faults_are_queried_per_rank_and_step() {
        let plan = FaultPlan::new(9)
            .poison_grad(1, 4, f32::NAN)
            .poison_grad_micro(2, 0, 1, f32::INFINITY)
            .slow_compute(3, 2.5);
        assert!(plan.grad_poison(1, 4, 0).unwrap().is_nan());
        assert_eq!(plan.grad_poison(2, 0, 1), Some(f32::INFINITY));
        assert_eq!(plan.grad_poison(0, 4, 0), None);
        assert_eq!(plan.grad_poison(1, 3, 0), None);
        assert_eq!(plan.compute_slowdown(3), 2.5);
        assert_eq!(plan.compute_slowdown(0), 1.0);
    }
}
