//! The self-healing transport: reliable delivery on the virtual clock and
//! a deterministic failure detector.
//!
//! This is the bottom rung of the recovery ladder (see DESIGN.md §13).
//! When a [`crate::FaultPlan`] carries a [`TransportPolicy`], every
//! point-to-point message is delivered through an ack/retransmit dialogue
//! that the *sender simulates locally*: the plan is shared deterministic
//! data, so the sender knows exactly which physical transmission attempts
//! the wire will lose (drops, burst-drop windows, link flaps, partitions)
//! or corrupt, bills each failed attempt as retransmit traffic, pushes the
//! next attempt out by a seeded retransmission timeout (RTO), and finally
//! enqueues one clean message carrying the accumulated later arrival time.
//! The receiver never sees the failed attempts — a healed fault is
//! invisible above the transport, so the final numerical results of a
//! healed run are **bit-identical** to a clean run; only virtual time and
//! wire-byte accounting differ. This mirrors how InfiniBand's link-layer
//! retransmission hides transient loss from the verbs consumer.
//!
//! When the outage outlives the retry budget the transport gives up and
//! delivers the legacy observable — a dropped marker (receiver times out)
//! or the corrupted payload (receiver's checksum fires) — handing the
//! failure to the next rung: the [`FailureDetector`] decides whether the
//! peer is *dead* (evict via membership agreement) or merely *slow* (keep
//! retrying), from evidence accumulated deterministically on the virtual
//! clock: consecutive receive failures, retransmit history, and
//! phi-accrual-style silence relative to the peer's observed heartbeat
//! gap. Everything here is a pure function of the fault plan and seeds —
//! no wall clocks, no OS scheduling.

use crate::fault::splitmix64;

/// Reliable-delivery configuration, attached to a plan with
/// [`crate::FaultPlan::reliable`] or [`crate::FaultPlan::with_transport`].
/// Absent (the default), the wire behaves exactly as before this layer
/// existed: a lost message surfaces as a receive timeout and escalation is
/// immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportPolicy {
    /// Retransmission attempts per message beyond the first transmission.
    pub max_resends: u32,
    /// First retransmission timeout, in virtual seconds.
    pub rto_base: f64,
    /// Retransmission timeout cap, in virtual seconds.
    pub rto_max: f64,
    /// Jitter seed (mixes with link endpoints and the message index).
    pub seed: u64,
}

impl Default for TransportPolicy {
    fn default() -> Self {
        TransportPolicy {
            max_resends: 8,
            rto_base: 2e-4,
            rto_max: 5e-2,
            seed: 0x7ea7_ac4d_0bad_cafe,
        }
    }
}

impl TransportPolicy {
    /// The virtual-time gap between physical attempt `attempt` (0-based)
    /// and its retransmission: exponential backoff capped at `rto_max`,
    /// stretched by seeded jitter in `[1.0, 1.5]×` so parallel links do
    /// not retransmit in lockstep. Deterministic in (seed, link, index,
    /// attempt).
    pub fn rto(&self, attempt: u32, src: usize, dst: usize, index: u64) -> f64 {
        let raw = (self.rto_base * f64::from(1u32 << attempt.min(20))).min(self.rto_max);
        let h = splitmix64(
            self.seed
                ^ ((src as u64) << 40)
                ^ ((dst as u64) << 20)
                ^ index.wrapping_mul(0x9e37_79b9)
                ^ (u64::from(attempt) << 56),
        );
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        raw * (1.0 + 0.5 * frac)
    }

    /// Guaranteed minimum virtual-time window the retry schedule covers:
    /// jitter only stretches RTOs, so any outage shorter than this beyond
    /// the first departure is healed within the resend budget. Tests and
    /// fault plans use this to construct provably-transient flap windows.
    pub fn min_retry_budget(&self) -> f64 {
        (0..self.max_resends)
            .map(|a| (self.rto_base * f64::from(1u32 << a.min(20))).min(self.rto_max))
            .sum()
    }
}

/// Failure-detector thresholds, attached to a plan with
/// [`crate::FaultPlan::with_detector`]. The defaults reproduce the
/// pre-detector escalation timing exactly: a peer is confirmed dead after
/// as many consecutive receive failures as the membership layer's
/// [`crate::RetryPolicy::max_attempts`], and the phi (silence) channel is
/// disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorCfg {
    /// Consecutive receive failures that confirm a suspicion. `None`
    /// defers to the consulting retry policy's `max_attempts`.
    pub fail_threshold: Option<u32>,
    /// Phi (accrued suspicion) level that confirms a suspicion via the
    /// heartbeat/silence channel. `INFINITY` disables it.
    pub phi_threshold: f64,
    /// Floor for the observed heartbeat gap, so phi stays finite when the
    /// peer was exchanging messages back-to-back.
    pub min_gap: f64,
    /// Suspicion accrued per recorded retransmission toward the peer
    /// (transport-level evidence that the link is struggling).
    pub retransmit_weight: f64,
}

impl Default for DetectorCfg {
    fn default() -> Self {
        DetectorCfg {
            fail_threshold: None,
            phi_threshold: f64::INFINITY,
            min_gap: 1e-6,
            retransmit_weight: 0.25,
        }
    }
}

/// Per-peer health evidence, all on the virtual clock.
#[derive(Debug, Clone, Copy, Default)]
struct PeerHealth {
    /// Virtual time of the last successful receive from the peer.
    last_ok: f64,
    /// EWMA of the gap between successful receives (the peer's observed
    /// heartbeat interval).
    mean_gap: f64,
    /// Successful receives recorded (the silence channel needs a baseline).
    samples: u64,
    /// Receive failures since the last success.
    consec_fails: u32,
    /// Retransmissions toward the peer since the last success (decayed on
    /// every success).
    recent_retransmits: u32,
    /// Whether a suspicion for this peer has already been announced (so
    /// the suspicion span/counter fires once per incident).
    announced: bool,
}

/// Deterministic virtual-time failure detector: accumulates per-peer
/// evidence (receive successes/failures, retransmit history) and answers
/// the one question the membership layer needs — is this peer *dead*, or
/// merely *slow*? Pure bookkeeping: it never touches the virtual clock,
/// so enabling it is bit-invisible to the simulation.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    cfg: DetectorCfg,
    peers: Vec<PeerHealth>,
}

impl FailureDetector {
    pub fn new(world: usize, cfg: DetectorCfg) -> Self {
        FailureDetector {
            cfg,
            peers: vec![PeerHealth::default(); world],
        }
    }

    pub fn cfg(&self) -> &DetectorCfg {
        &self.cfg
    }

    /// A payload from `peer` arrived intact at virtual time `now`: reset
    /// the failure streak, decay retransmit evidence, fold the inter-ok
    /// gap into the heartbeat EWMA.
    pub fn record_ok(&mut self, peer: usize, now: f64) {
        let p = &mut self.peers[peer];
        if p.samples > 0 {
            let gap = (now - p.last_ok).max(0.0);
            p.mean_gap = if p.samples == 1 {
                gap
            } else {
                0.875 * p.mean_gap + 0.125 * gap
            };
        }
        p.last_ok = now;
        p.samples += 1;
        p.consec_fails = 0;
        p.recent_retransmits /= 2;
        p.announced = false;
    }

    /// A receive from `peer` failed (virtual deadline or wall backstop).
    pub fn record_failure(&mut self, peer: usize) {
        let p = &mut self.peers[peer];
        p.consec_fails = p.consec_fails.saturating_add(1);
    }

    /// The transport retransmitted a message toward `peer`.
    pub fn record_retransmit(&mut self, peer: usize) {
        let p = &mut self.peers[peer];
        p.recent_retransmits = p.recent_retransmits.saturating_add(1);
    }

    /// Receive failures since the last success from `peer`.
    pub fn consecutive_failures(&self, peer: usize) -> u32 {
        self.peers[peer].consec_fails
    }

    /// Accrued suspicion toward `peer` at virtual time `now`
    /// (phi-accrual style, base-10): each consecutive receive failure
    /// contributes 1.0, retransmit history contributes
    /// `retransmit_weight` each, and — once a heartbeat baseline of three
    /// successes exists — silence contributes
    /// `(now − last_ok) / (mean_gap · ln 10)`, the phi of an
    /// exponentially distributed heartbeat with the observed mean.
    pub fn phi(&self, peer: usize, now: f64) -> f64 {
        let p = &self.peers[peer];
        let mut phi = f64::from(p.consec_fails)
            + self.cfg.retransmit_weight * f64::from(p.recent_retransmits);
        if p.samples >= 3 {
            let gap = p.mean_gap.max(self.cfg.min_gap);
            let silence = (now - p.last_ok).max(0.0);
            phi += silence / (gap * std::f64::consts::LN_10);
        }
        phi
    }

    /// Whether the evidence confirms `peer` dead rather than slow.
    /// `default_fail_threshold` is the consulting retry policy's
    /// `max_attempts` — with a default [`DetectorCfg`] this reproduces the
    /// pre-detector escalation decision exactly.
    pub fn is_dead(&self, peer: usize, default_fail_threshold: u32, now: f64) -> bool {
        let p = &self.peers[peer];
        let thr = self
            .cfg
            .fail_threshold
            .unwrap_or(default_fail_threshold)
            .max(1);
        if p.consec_fails >= thr {
            return true;
        }
        self.cfg.phi_threshold.is_finite() && self.phi(peer, now) >= self.cfg.phi_threshold
    }

    /// Confirm-once latch for the suspicion span/counter: returns `true`
    /// the first time a suspicion is confirmed for `peer` (resets when the
    /// peer produces a successful receive again).
    pub fn announce_suspicion(&mut self, peer: usize) -> bool {
        let p = &mut self.peers[peer];
        if p.announced {
            false
        } else {
            p.announced = true;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rto_is_deterministic_bounded_and_grows() {
        let tp = TransportPolicy::default();
        for attempt in 0..6 {
            let a = tp.rto(attempt, 0, 1, 7);
            let b = tp.rto(attempt, 0, 1, 7);
            assert_eq!(a, b, "same inputs must give the same RTO");
            let raw = (tp.rto_base * f64::from(1u32 << attempt)).min(tp.rto_max);
            assert!(
                (raw..=1.5 * raw).contains(&a),
                "jitter must stay in [1, 1.5]×"
            );
        }
        // Different links / indices decorrelate.
        assert_ne!(tp.rto(0, 0, 1, 7), tp.rto(0, 1, 0, 7));
        assert_ne!(tp.rto(0, 0, 1, 7), tp.rto(0, 0, 1, 8));
        // The guaranteed budget is the un-jittered sum.
        let expect: f64 = (0..tp.max_resends)
            .map(|a| (tp.rto_base * f64::from(1u32 << a)).min(tp.rto_max))
            .sum();
        assert_eq!(tp.min_retry_budget(), expect);
        assert!(
            tp.min_retry_budget() > 0.05,
            "default budget covers ≥ 50 ms"
        );
    }

    #[test]
    fn count_threshold_matches_retry_policy_semantics() {
        let mut d = FailureDetector::new(4, DetectorCfg::default());
        assert!(!d.is_dead(2, 3, 0.0));
        d.record_failure(2);
        d.record_failure(2);
        assert!(
            !d.is_dead(2, 3, 0.0),
            "two failures stay below max_attempts=3"
        );
        d.record_failure(2);
        assert!(d.is_dead(2, 3, 0.0), "three consecutive failures confirm");
        // A success resets the streak: slow, not dead.
        d.record_ok(2, 1.0);
        assert!(!d.is_dead(2, 3, 1.0));
        // An explicit threshold overrides the policy default.
        let mut strict = FailureDetector::new(
            4,
            DetectorCfg {
                fail_threshold: Some(5),
                ..DetectorCfg::default()
            },
        );
        for _ in 0..4 {
            strict.record_failure(1);
        }
        assert!(
            !strict.is_dead(1, 3, 0.0),
            "cfg threshold 5 outranks policy 3"
        );
        strict.record_failure(1);
        assert!(strict.is_dead(1, 3, 0.0));
    }

    #[test]
    fn phi_accrues_with_silence_against_the_heartbeat_gap() {
        let cfg = DetectorCfg {
            phi_threshold: 4.0,
            ..DetectorCfg::default()
        };
        let mut d = FailureDetector::new(2, cfg);
        // Establish a 1 ms heartbeat.
        for i in 0..8 {
            d.record_ok(1, i as f64 * 1e-3);
        }
        let last = 7e-3;
        assert!(
            d.phi(1, last + 1e-3) < 1.0,
            "one heartbeat of silence is normal"
        );
        assert!(!d.is_dead(1, 3, last + 1e-3));
        // 20 heartbeats of silence: phi ≈ 20/ln10 ≈ 8.7 ≥ 4 → dead.
        assert!(d.phi(1, last + 20e-3) > 4.0);
        assert!(d.is_dead(1, 3, last + 20e-3));
        // phi is monotone in silence.
        assert!(d.phi(1, last + 30e-3) > d.phi(1, last + 20e-3));
    }

    #[test]
    fn retransmit_history_accrues_and_decays() {
        let cfg = DetectorCfg {
            retransmit_weight: 0.5,
            ..DetectorCfg::default()
        };
        let mut d = FailureDetector::new(2, cfg);
        for _ in 0..4 {
            d.record_retransmit(1);
        }
        assert_eq!(d.phi(1, 0.0), 2.0);
        d.record_ok(1, 1.0);
        assert_eq!(d.phi(1, 1.0), 1.0, "success halves retransmit evidence");
        d.record_ok(1, 2.0);
        d.record_failure(1);
        assert_eq!(d.phi(1, 2.0), 1.5, "failures stack on retransmit history");
    }

    #[test]
    fn suspicion_announcement_is_once_per_incident() {
        let mut d = FailureDetector::new(2, DetectorCfg::default());
        d.record_failure(1);
        assert!(d.announce_suspicion(1));
        assert!(
            !d.announce_suspicion(1),
            "second announcement is suppressed"
        );
        d.record_ok(1, 1.0);
        d.record_failure(1);
        assert!(d.announce_suspicion(1), "a new incident announces again");
    }
}
