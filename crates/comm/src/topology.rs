//! Cluster topology: node layout, link performance parameters, and the
//! wire dtype for tensor payloads.

use serde::{Deserialize, Serialize};

/// Element dtype used for matrix payloads on the wire.
///
/// Selecting [`WireDtype::Bf16`] makes the typed send helpers and the
/// `*_mat` collectives encode matrices through
/// [`Bf16Mat`](burst_tensor::Bf16Mat) before enqueueing: the payload
/// genuinely occupies (and is billed at) 2 bytes per element, and the
/// receiver decodes back to `f32`, observing bf16-rounded values. Softmax
/// statistics (LSE/D vectors) always travel as `f32` — they are `O(m)`
/// against the `O(m·d)` matrices and their precision anchors the online
/// merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WireDtype {
    /// Full-precision payloads: 4 bytes per element, values untouched.
    #[default]
    F32,
    /// bfloat16 payloads: 2 bytes per element, values rounded to nearest
    /// even at the sender.
    Bf16,
}

impl WireDtype {
    /// Wire width in bytes per element.
    #[inline]
    pub fn width(self) -> f64 {
        match self {
            WireDtype::F32 => 4.0,
            WireDtype::Bf16 => 2.0,
        }
    }

    /// Short label for reports and traces.
    pub fn label(self) -> &'static str {
        match self {
            WireDtype::F32 => "f32",
            WireDtype::Bf16 => "bf16",
        }
    }
}

/// A point-to-point link model: `time(bytes) = latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-way latency in seconds.
    pub latency: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl Link {
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        Link { latency, bandwidth }
    }

    /// Pure serialisation (bandwidth) term for `bytes`.
    #[inline]
    pub fn serialization(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth
    }

    /// Full transfer time for `bytes`.
    #[inline]
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// The shape of the simulated cluster.
///
/// Ranks are numbered `0..nodes*gpus_per_node`; rank `r` lives on node
/// `r / gpus_per_node` with local index `r % gpus_per_node`. Intra-node
/// traffic uses the NVLink [`Link`]; inter-node traffic uses the sending
/// GPU's dedicated NIC [`Link`] (the paper's testbed has one HDR NIC per
/// GPU, so per-GPU inter-node bandwidth is a single NIC's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    pub nodes: usize,
    pub gpus_per_node: usize,
    /// NVLink (intra-node) link model.
    pub intra: Link,
    /// Per-GPU InfiniBand NIC (inter-node) link model.
    pub inter: Link,
    /// Dtype for matrix payloads on the wire (see [`WireDtype`]).
    pub wire_dtype: WireDtype,
}

impl Topology {
    pub fn new(nodes: usize, gpus_per_node: usize, intra: Link, inter: Link) -> Self {
        assert!(nodes > 0 && gpus_per_node > 0, "Topology: empty cluster");
        Topology {
            nodes,
            gpus_per_node,
            intra,
            inter,
            wire_dtype: WireDtype::default(),
        }
    }

    /// The same topology with bf16 matrix payloads on the wire.
    pub fn with_wire_dtype(mut self, dtype: WireDtype) -> Self {
        self.wire_dtype = dtype;
        self
    }

    /// The paper's testbed: A800 nodes with 400 GB/s NVLink and one
    /// 200 Gb/s (25 GB/s) HDR InfiniBand NIC per GPU. Latencies are typical
    /// measured values (NVLink ~3 µs effective per NCCL op, IB ~10 µs).
    pub fn a800(nodes: usize, gpus_per_node: usize) -> Self {
        Topology::new(
            nodes,
            gpus_per_node,
            Link::new(3e-6, 400e9),
            Link::new(10e-6, 25e9),
        )
    }

    /// A single-node topology where every link is NVLink.
    pub fn single_node(gpus: usize) -> Self {
        Topology::a800(1, gpus)
    }

    /// An idealised uniform cluster (for unit tests): every link identical.
    pub fn uniform(world: usize, link: Link) -> Self {
        Topology::new(1, world, link, link)
    }

    #[inline]
    pub fn world_size(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    #[inline]
    #[track_caller]
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.world_size(), "rank {rank} out of range");
        rank / self.gpus_per_node
    }

    #[inline]
    pub fn local_rank(&self, rank: usize) -> usize {
        rank % self.gpus_per_node
    }

    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Link used when `src` sends to `dst`.
    #[inline]
    pub fn link(&self, src: usize, dst: usize) -> Link {
        if self.same_node(src, dst) {
            self.intra
        } else {
            self.inter
        }
    }

    /// Wire bytes for `elems` tensor elements at the configured matrix
    /// payload dtype. Payload-specific accounting (f32 vectors, control
    /// messages) happens in the mailbox; this is the matrix-payload rate.
    #[inline]
    pub fn wire_bytes(&self, elems: usize) -> f64 {
        elems as f64 * self.wire_dtype.width()
    }

    /// Successor on the flat global ring.
    #[inline]
    pub fn next_rank(&self, rank: usize) -> usize {
        (rank + 1) % self.world_size()
    }

    /// Predecessor on the flat global ring.
    #[inline]
    pub fn prev_rank(&self, rank: usize) -> usize {
        (rank + self.world_size() - 1) % self.world_size()
    }

    /// Successor on the intra-node sub-ring (same node, next local rank).
    #[inline]
    pub fn next_in_node(&self, rank: usize) -> usize {
        let node = self.node_of(rank);
        node * self.gpus_per_node + (self.local_rank(rank) + 1) % self.gpus_per_node
    }

    /// Predecessor on the intra-node sub-ring.
    #[inline]
    pub fn prev_in_node(&self, rank: usize) -> usize {
        let node = self.node_of(rank);
        let g = self.gpus_per_node;
        node * g + (self.local_rank(rank) + g - 1) % g
    }

    /// Peer with the same local rank on the next node (inter-node ring).
    #[inline]
    pub fn peer_next_node(&self, rank: usize) -> usize {
        let node = (self.node_of(rank) + 1) % self.nodes;
        node * self.gpus_per_node + self.local_rank(rank)
    }

    /// Peer with the same local rank on the previous node.
    #[inline]
    pub fn peer_prev_node(&self, rank: usize) -> usize {
        let node = (self.node_of(rank) + self.nodes - 1) % self.nodes;
        node * self.gpus_per_node + self.local_rank(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_indexing() {
        let t = Topology::a800(2, 4);
        assert_eq!(t.world_size(), 8);
        assert_eq!(t.node_of(5), 1);
        assert_eq!(t.local_rank(5), 1);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn link_selection() {
        let t = Topology::a800(2, 4);
        assert_eq!(t.link(0, 3), t.intra);
        assert_eq!(t.link(3, 4), t.inter);
        assert!(t.intra.bandwidth > t.inter.bandwidth);
    }

    #[test]
    fn transfer_time_formula() {
        let l = Link::new(1e-6, 1e9);
        let t = l.transfer_time(1e9);
        assert!((t - (1.0 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn ring_neighbors_wrap() {
        let t = Topology::a800(2, 4);
        assert_eq!(t.next_rank(7), 0);
        assert_eq!(t.prev_rank(0), 7);
        // Intra-node sub-ring stays in the node.
        assert_eq!(t.next_in_node(3), 0);
        assert_eq!(t.next_in_node(7), 4);
        assert_eq!(t.prev_in_node(4), 7);
        // Inter-node ring preserves local rank.
        assert_eq!(t.peer_next_node(2), 6);
        assert_eq!(t.peer_next_node(6), 2);
        assert_eq!(t.peer_prev_node(2), 6);
    }

    #[test]
    fn sub_rings_partition_global_ring() {
        // Walking next_in_node from any rank visits exactly its node's ranks.
        let t = Topology::a800(3, 4);
        for start in 0..t.world_size() {
            let mut seen = vec![start];
            let mut r = t.next_in_node(start);
            while r != start {
                seen.push(r);
                r = t.next_in_node(r);
            }
            assert_eq!(seen.len(), t.gpus_per_node);
            assert!(seen.iter().all(|&x| t.same_node(x, start)));
        }
    }

    #[test]
    fn wire_bytes_follow_the_wire_dtype() {
        let t = Topology::a800(1, 2);
        assert_eq!(t.wire_dtype, WireDtype::F32);
        assert_eq!(t.wire_bytes(100), 400.0);
        let b = t.with_wire_dtype(WireDtype::Bf16);
        assert_eq!(b.wire_bytes(100), 200.0, "bf16 halves the wire");
        assert_eq!(WireDtype::F32.width(), 4.0);
        assert_eq!(WireDtype::Bf16.width(), 2.0);
        assert_eq!(WireDtype::Bf16.label(), "bf16");
    }
}
