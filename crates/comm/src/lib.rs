//! # burst-comm
//!
//! A deterministic, multi-threaded **cluster simulator** standing in for the
//! NCCL/NVLink/InfiniBand substrate of the BurstEngine paper.
//!
//! Each simulated GPU (*rank*) is an OS thread. Ranks exchange real data —
//! [`burst_tensor::Mat`] payloads move over crossbeam channels, so every
//! distributed algorithm built on this crate is numerically end-to-end exact.
//! Performance is accounted in **virtual time** with a LogGP-style model:
//!
//! * every message carries its causal arrival time, computed from the
//!   sender's clock, the link's latency, its bandwidth, and the *occupancy*
//!   of the sender's egress port (NVLink port for intra-node traffic, the
//!   GPU's dedicated IB NIC for inter-node traffic);
//! * a receive advances the receiver's clock to
//!   `max(local_clock, arrival)` — so communication posted early and
//!   consumed late overlaps with compute *for free*, exactly like a
//!   non-blocking `isend`/`irecv` pair with a wait;
//! * explicit compute is added with [`Communicator::advance_compute`].
//!
//! Because arrival times depend only on message causality (never on OS
//! scheduling), the virtual clock is **bit-deterministic across runs**, while
//! still capturing the phenomena the paper's evaluation turns on: the
//! inter-node bandwidth cliff, NIC serialisation in flat rings, and
//! communication/computation overlap.
//!
//! The topology mirrors the paper's testbed: `nodes × gpus_per_node`
//! ranks, NVLink intra-node, one InfiniBand NIC per GPU inter-node
//! ([`Topology::a800`]).

pub mod comm;
pub mod fault;
pub mod membership;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod transport;
pub mod world;

pub use comm::{saturating_deadline, Communicator, CtrlKind, CtrlMsg, Msg, MsgData};
pub use fault::{ChurnEvent, ChurnKind, CommError, CrashAt, FaultPlan, LossKind};
pub use membership::{
    agree_on_eviction, agree_on_join, agree_on_leave, send_abort, shrink_all_gather_mat,
    shrink_all_reduce_mat, shrink_all_reduce_vec, shrink_barrier, shrink_reduce_scatter_mat,
    shrink_ring_shift, AgreeOutcome, JoinOutcome, Membership, RetryPolicy,
};
pub use stats::{CommStats, FaultCounters};
pub use topology::{Link, Topology, WireDtype};
pub use trace::{ascii_lane, summarize, TraceEvent, TraceSummary};
pub use transport::{DetectorCfg, FailureDetector, TransportPolicy};
pub use world::{RankOutput, World};

/// The observability layer the communicator records into (re-exported so
/// downstream crates can name span kinds without a direct `burst-obs` dep).
pub use burst_obs as obs;
pub use burst_obs::{
    MemCategory, MemId, MemLedger, MemReport, PeakBytes, RankSink, RankTrace, SpanKind,
};
