//! Property-based tests of the simulated cluster's collectives under
//! randomised world sizes, shapes and payloads.

use burst_comm::{Topology, World};
use burst_tensor::Mat;
use proptest::prelude::*;

fn rank_mat(rank: usize, rows: usize, cols: usize, salt: u64) -> Mat {
    Mat::from_fn(rows, cols, |r, c| {
        ((rank as u64 * 131 + r as u64 * 17 + c as u64 * 3 + salt) % 97) as f32 - 48.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_gather_collects_every_rank_in_order(
        g in 1usize..6,
        rows in 1usize..6,
        cols in 1usize..5,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            comm.all_gather_mat(&rank_mat(comm.rank(), rows, cols, salt))
        });
        for got in &outs {
            prop_assert_eq!(got.len(), g);
            for (src, m) in got.iter().enumerate() {
                prop_assert_eq!(m.clone(), rank_mat(src, rows, cols, salt));
            }
        }
    }

    #[test]
    fn reduce_scatter_equals_manual_sum(
        g in 1usize..6,
        rows in 1usize..5,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let parts: Vec<Mat> = (0..g)
                .map(|d| rank_mat(comm.rank() * 10 + d, rows, 2, salt))
                .collect();
            comm.reduce_scatter_mat(&parts)
        });
        for (dst, got) in outs.iter().enumerate() {
            let mut expect = rank_mat(dst, rows, 2, salt);
            for src in 1..g {
                expect.add_assign(&rank_mat(src * 10 + dst, rows, 2, salt));
            }
            prop_assert!(burst_tensor::testutil::allclose(got, &expect, 1e-4, 1e-4));
        }
    }

    #[test]
    fn all_reduce_is_rank_invariant_sum(
        g in 1usize..6,
        rows in 1usize..8,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            comm.all_reduce_mat(&rank_mat(comm.rank(), rows, 3, salt))
        });
        let mut expect = rank_mat(0, rows, 3, salt);
        for src in 1..g {
            expect.add_assign(&rank_mat(src, rows, 3, salt));
        }
        for got in &outs {
            prop_assert!(burst_tensor::testutil::allclose(got, &expect, 1e-4, 1e-4));
        }
    }

    #[test]
    fn all_to_all_is_a_transpose(
        g in 1usize..6,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let outgoing: Vec<Mat> = (0..g)
                .map(|d| rank_mat(comm.rank() * 100 + d, 2, 2, salt))
                .collect();
            comm.all_to_all_mat(outgoing)
        });
        for (me, got) in outs.iter().enumerate() {
            for (src, m) in got.iter().enumerate() {
                prop_assert_eq!(m.clone(), rank_mat(src * 100 + me, 2, 2, salt));
            }
        }
    }

    #[test]
    fn virtual_clocks_are_schedule_independent(
        nodes in 1usize..3,
        gpn in 1usize..4,
        rows in 1usize..32,
    ) {
        let run = || {
            let world = World::new(Topology::a800(nodes, gpn));
            let outs = world.run(move |comm| {
                let m = rank_mat(comm.rank(), rows, 4, 7);
                let all = comm.all_gather_mat(&m);
                comm.barrier();
                all.len()
            });
            outs.iter().map(|o| (o.time, o.stats.total_bytes())).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// all-to-all with *heterogeneous* block shapes: each (src, dst) pair
    /// carries its own row count, so misrouting or reordering cannot hide
    /// behind uniform shapes. Running it twice (sending back what arrived)
    /// must restore every original payload bit-for-bit — including on
    /// single-rank and non-power-of-two worlds.
    #[test]
    fn all_to_all_roundtrip_restores_ragged_payloads(
        g in prop_oneof![Just(1usize), Just(2), Just(3), Just(5)],
        cols in 1usize..4,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let me = comm.rank();
            let original: Vec<Mat> = (0..g)
                .map(|d| rank_mat(me * 31 + d, 1 + (me + d) % 3, cols, salt))
                .collect();
            let received = comm.all_to_all_mat(original.clone());
            let returned = comm.all_to_all_mat(received);
            (original, returned)
        });
        for (original, returned) in &outs {
            for (a, b) in original.iter().zip(returned) {
                prop_assert_eq!(a.rows(), b.rows());
                prop_assert!(a.as_slice().iter().zip(b.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        }
    }

    /// reduce-scatter on a single-rank world is the identity on the one
    /// part — bitwise, no wire traffic.
    #[test]
    fn reduce_scatter_single_rank_is_identity(
        rows in 1usize..6,
        cols in 1usize..5,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(1));
        let outs = world.run(move |comm| {
            let part = rank_mat(0, rows, cols, salt);
            let got = comm.reduce_scatter_mat(std::slice::from_ref(&part));
            (part, got)
        });
        let (part, got) = &outs[0].result;
        prop_assert!(part.as_slice().iter().zip(got.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        prop_assert_eq!(outs[0].stats.total_msgs(), 0);
    }

    /// reduce-scatter on awkward world sizes (3, 5, 6 — never a power of
    /// two) with per-destination column widths still sums exactly the
    /// right parts for exactly the right destination.
    #[test]
    fn reduce_scatter_non_power_of_two_worlds(
        g in prop_oneof![Just(3usize), Just(5), Just(6)],
        rows in 1usize..4,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let parts: Vec<Mat> = (0..g)
                .map(|d| rank_mat(comm.rank() * 17 + d, rows, 3, salt))
                .collect();
            comm.reduce_scatter_mat(&parts)
        });
        for (dst, got) in outs.iter().enumerate() {
            let mut expect = rank_mat(dst, rows, 3, salt);
            for src in 1..g {
                expect.add_assign(&rank_mat(src * 17 + dst, rows, 3, salt));
            }
            prop_assert!(burst_tensor::testutil::allclose(got, &expect, 1e-4, 1e-4));
        }
    }

    #[test]
    fn broadcast_reaches_everyone(
        g in 2usize..6,
        root in 0usize..5,
        salt in 0u64..1000,
    ) {
        let root = root % g;
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let m = rank_mat(999, 3, 3, salt);
            let mine = if comm.rank() == root { Some(&m) } else { None };
            comm.broadcast_mat(root, mine)
        });
        for got in &outs {
            prop_assert_eq!(got.clone(), rank_mat(999, 3, 3, salt));
        }
    }
}
