//! Property-based tests of the simulated cluster's collectives under
//! randomised world sizes, shapes and payloads, and of the [`Membership`]
//! ring-navigation invariants under ragged evict/readmit churn.

use burst_comm::{Membership, Topology, World};
use burst_tensor::Mat;
use proptest::prelude::*;

fn rank_mat(rank: usize, rows: usize, cols: usize, salt: u64) -> Mat {
    Mat::from_fn(rows, cols, |r, c| {
        ((rank as u64 * 131 + r as u64 * 17 + c as u64 * 3 + salt) % 97) as f32 - 48.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_gather_collects_every_rank_in_order(
        g in 1usize..6,
        rows in 1usize..6,
        cols in 1usize..5,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            comm.all_gather_mat(&rank_mat(comm.rank(), rows, cols, salt))
        });
        for got in &outs {
            prop_assert_eq!(got.len(), g);
            for (src, m) in got.iter().enumerate() {
                prop_assert_eq!(m.clone(), rank_mat(src, rows, cols, salt));
            }
        }
    }

    #[test]
    fn reduce_scatter_equals_manual_sum(
        g in 1usize..6,
        rows in 1usize..5,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let parts: Vec<Mat> = (0..g)
                .map(|d| rank_mat(comm.rank() * 10 + d, rows, 2, salt))
                .collect();
            comm.reduce_scatter_mat(&parts)
        });
        for (dst, got) in outs.iter().enumerate() {
            let mut expect = rank_mat(dst, rows, 2, salt);
            for src in 1..g {
                expect.add_assign(&rank_mat(src * 10 + dst, rows, 2, salt));
            }
            prop_assert!(burst_tensor::testutil::allclose(got, &expect, 1e-4, 1e-4));
        }
    }

    #[test]
    fn all_reduce_is_rank_invariant_sum(
        g in 1usize..6,
        rows in 1usize..8,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            comm.all_reduce_mat(&rank_mat(comm.rank(), rows, 3, salt))
        });
        let mut expect = rank_mat(0, rows, 3, salt);
        for src in 1..g {
            expect.add_assign(&rank_mat(src, rows, 3, salt));
        }
        for got in &outs {
            prop_assert!(burst_tensor::testutil::allclose(got, &expect, 1e-4, 1e-4));
        }
    }

    #[test]
    fn all_to_all_is_a_transpose(
        g in 1usize..6,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let outgoing: Vec<Mat> = (0..g)
                .map(|d| rank_mat(comm.rank() * 100 + d, 2, 2, salt))
                .collect();
            comm.all_to_all_mat(outgoing)
        });
        for (me, got) in outs.iter().enumerate() {
            for (src, m) in got.iter().enumerate() {
                prop_assert_eq!(m.clone(), rank_mat(src * 100 + me, 2, 2, salt));
            }
        }
    }

    #[test]
    fn virtual_clocks_are_schedule_independent(
        nodes in 1usize..3,
        gpn in 1usize..4,
        rows in 1usize..32,
    ) {
        let run = || {
            let world = World::new(Topology::a800(nodes, gpn));
            let outs = world.run(move |comm| {
                let m = rank_mat(comm.rank(), rows, 4, 7);
                let all = comm.all_gather_mat(&m);
                comm.barrier();
                all.len()
            });
            outs.iter().map(|o| (o.time, o.stats.total_bytes())).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// all-to-all with *heterogeneous* block shapes: each (src, dst) pair
    /// carries its own row count, so misrouting or reordering cannot hide
    /// behind uniform shapes. Running it twice (sending back what arrived)
    /// must restore every original payload bit-for-bit — including on
    /// single-rank and non-power-of-two worlds.
    #[test]
    fn all_to_all_roundtrip_restores_ragged_payloads(
        g in prop_oneof![Just(1usize), Just(2), Just(3), Just(5)],
        cols in 1usize..4,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let me = comm.rank();
            let original: Vec<Mat> = (0..g)
                .map(|d| rank_mat(me * 31 + d, 1 + (me + d) % 3, cols, salt))
                .collect();
            let received = comm.all_to_all_mat(original.clone());
            let returned = comm.all_to_all_mat(received);
            (original, returned)
        });
        for (original, returned) in &outs {
            for (a, b) in original.iter().zip(returned) {
                prop_assert_eq!(a.rows(), b.rows());
                prop_assert!(a.as_slice().iter().zip(b.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        }
    }

    /// reduce-scatter on a single-rank world is the identity on the one
    /// part — bitwise, no wire traffic.
    #[test]
    fn reduce_scatter_single_rank_is_identity(
        rows in 1usize..6,
        cols in 1usize..5,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(1));
        let outs = world.run(move |comm| {
            let part = rank_mat(0, rows, cols, salt);
            let got = comm.reduce_scatter_mat(std::slice::from_ref(&part));
            (part, got)
        });
        let (part, got) = &outs[0].result;
        prop_assert!(part.as_slice().iter().zip(got.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        prop_assert_eq!(outs[0].stats.total_msgs(), 0);
    }

    /// reduce-scatter on awkward world sizes (3, 5, 6 — never a power of
    /// two) with per-destination column widths still sums exactly the
    /// right parts for exactly the right destination.
    #[test]
    fn reduce_scatter_non_power_of_two_worlds(
        g in prop_oneof![Just(3usize), Just(5), Just(6)],
        rows in 1usize..4,
        salt in 0u64..1000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let parts: Vec<Mat> = (0..g)
                .map(|d| rank_mat(comm.rank() * 17 + d, rows, 3, salt))
                .collect();
            comm.reduce_scatter_mat(&parts)
        });
        for (dst, got) in outs.iter().enumerate() {
            let mut expect = rank_mat(dst, rows, 3, salt);
            for src in 1..g {
                expect.add_assign(&rank_mat(src * 17 + dst, rows, 3, salt));
            }
            prop_assert!(burst_tensor::testutil::allclose(got, &expect, 1e-4, 1e-4));
        }
    }

    /// Drive a [`Membership`] view through a ragged evict/readmit sequence
    /// (never letting the alive set empty), then check every navigation
    /// query against a naive scan of the alive list: `pos_of` is the index
    /// in `alive_ranks`, `next_alive`/`prev_alive` are cyclic neighbors for
    /// alive *and* dead starting ranks, and walking `next_alive` from any
    /// member visits the whole ring and returns home.
    #[test]
    fn membership_navigation_survives_ragged_churn(
        n in 1usize..8,
        ops in (0usize..16).prop_flat_map(|len| collection::vec((0usize..2, 0usize..8), len)),
    ) {
        let mut m = Membership::new(n);
        for (kind, pick) in ops {
            let r = pick % n;
            match kind {
                0 => {
                    // Evicting the last member is a protocol-level
                    // impossibility (someone must stay to agree); keep the
                    // invariant the agreement layer guarantees.
                    if m.num_alive() > 1 {
                        let was_alive = m.is_alive(r);
                        prop_assert_eq!(m.evict(r), was_alive, "evict({}) return", r);
                    }
                }
                _ => {
                    let was_dead = !m.is_alive(r);
                    prop_assert_eq!(m.readmit(r), was_dead, "readmit({}) return", r);
                }
            }
        }

        let alive = m.alive_ranks();
        prop_assert!(!alive.is_empty());
        prop_assert_eq!(alive.len(), m.num_alive());
        prop_assert!(alive.windows(2).all(|w| w[0] < w[1]), "alive_ranks unsorted");

        let k = alive.len();
        for r in 0..n {
            match alive.iter().position(|&a| a == r) {
                Some(p) => {
                    prop_assert_eq!(m.pos_of(r), Some(p));
                    prop_assert_eq!(m.next_alive(r), alive[(p + 1) % k]);
                    prop_assert_eq!(m.prev_alive(r), alive[(p + k - 1) % k]);
                    prop_assert_eq!(m.prev_alive(m.next_alive(r)), r);
                    prop_assert_eq!(m.next_alive(m.prev_alive(r)), r);
                }
                None => {
                    prop_assert_eq!(m.pos_of(r), None);
                    // From a dead rank the cyclic scans still land on the
                    // first alive rank in each direction.
                    let next = (1..=n).map(|s| (r + s) % n).find(|&x| m.is_alive(x));
                    let prev = (1..=n).map(|s| (r + n - s) % n).find(|&x| m.is_alive(x));
                    prop_assert_eq!(Some(m.next_alive(r)), next);
                    prop_assert_eq!(Some(m.prev_alive(r)), prev);
                }
            }
        }

        // One full lap of next_alive from the lowest member traverses the
        // ring in ascending order and closes the cycle.
        let mut walk = vec![alive[0]];
        for _ in 1..k {
            walk.push(m.next_alive(*walk.last().unwrap()));
        }
        prop_assert_eq!(&walk, &alive);
        prop_assert_eq!(m.next_alive(*walk.last().unwrap()), alive[0]);
    }

    /// Evict every rank but one: the survivor is its own cyclic neighbor
    /// in both directions and holds ring slot 0 — the degenerate world the
    /// shrink collectives special-case as local no-ops.
    #[test]
    fn membership_single_survivor_is_its_own_ring(
        n in 1usize..8,
        keep in 0usize..8,
    ) {
        let keep = keep % n;
        let mut m = Membership::new(n);
        for r in 0..n {
            if r != keep {
                prop_assert!(m.evict(r));
            }
        }
        prop_assert_eq!(m.num_alive(), 1);
        prop_assert_eq!(m.alive_ranks(), vec![keep]);
        prop_assert_eq!(m.pos_of(keep), Some(0));
        prop_assert_eq!(m.next_alive(keep), keep);
        prop_assert_eq!(m.prev_alive(keep), keep);
        // Every dead rank's scans converge on the lone survivor too.
        for r in 0..n {
            prop_assert_eq!(m.next_alive(r), keep);
            prop_assert_eq!(m.prev_alive(r), keep);
        }
    }

    /// Evict a ragged subset, then readmit every dead rank: the view must
    /// be indistinguishable from a fresh full world (positions, neighbors,
    /// and the idempotence of a second readmit).
    #[test]
    fn membership_full_readmission_restores_the_dense_ring(
        n in 2usize..8,
        evict_mask in 1u64..128,
        keep in 0usize..8,
    ) {
        let keep = keep % n;
        let mut m = Membership::new(n);
        for r in 0..n {
            if r != keep && evict_mask & (1 << r) != 0 {
                prop_assert!(m.evict(r));
            }
        }
        for r in 0..n {
            if !m.is_alive(r) {
                prop_assert!(m.readmit(r));
            }
            prop_assert!(!m.readmit(r), "readmit of a live rank must be a no-op");
        }
        prop_assert_eq!(m.alive_ranks(), (0..n).collect::<Vec<_>>());
        for r in 0..n {
            prop_assert_eq!(m.pos_of(r), Some(r));
            prop_assert_eq!(m.next_alive(r), (r + 1) % n);
            prop_assert_eq!(m.prev_alive(r), (r + n - 1) % n);
        }
    }

    #[test]
    fn broadcast_reaches_everyone(
        g in 2usize..6,
        root in 0usize..5,
        salt in 0u64..1000,
    ) {
        let root = root % g;
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let m = rank_mat(999, 3, 3, salt);
            let mine = if comm.rank() == root { Some(&m) } else { None };
            comm.broadcast_mat(root, mine)
        });
        for got in &outs {
            prop_assert_eq!(got.clone(), rank_mat(999, 3, 3, salt));
        }
    }
}
