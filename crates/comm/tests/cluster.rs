//! Integration tests for the simulated cluster: correctness of the
//! collectives, causality of the virtual clock, NIC serialisation, overlap
//! semantics and determinism.

use burst_comm::{Link, MsgData, Topology, World};
use burst_tensor::Mat;

fn rank_mat(rank: usize, rows: usize, cols: usize) -> Mat {
    Mat::from_fn(rows, cols, |r, c| (rank * 100 + r * cols + c) as f32)
}

#[test]
fn p2p_roundtrip_delivers_data() {
    let world = World::new(Topology::single_node(2));
    let outs = world.run_results(|comm| {
        if comm.rank() == 0 {
            comm.send_mat(1, &rank_mat(0, 3, 2));
            comm.recv_mat(1)
        } else {
            let got = comm.recv_mat(0);
            comm.send_mat(0, &rank_mat(1, 3, 2));
            got
        }
    });
    assert_eq!(outs[0], rank_mat(1, 3, 2));
    assert_eq!(outs[1], rank_mat(0, 3, 2));
}

#[test]
fn clock_respects_latency_and_bandwidth() {
    // 2 KB over a 1 GB/s link with 1 ms latency: arrival >= 1e-3 + 2e-6
    // (f32 wire: 4 bytes per element).
    let topo = Topology::uniform(2, Link::new(1e-3, 1e9));
    let world = World::new(topo);
    let outs = world.run(|comm| {
        if comm.rank() == 0 {
            comm.send_vec(1, &vec![0.0; 500]); // 500 elems = 2000 wire bytes
        } else {
            let _ = comm.recv_vec(0);
        }
        comm.time()
    });
    assert_eq!(
        outs[0].result, 0.0,
        "sends are non-blocking in virtual time"
    );
    let expect = 1e-3 + 2000.0 / 1e9;
    assert!(
        (outs[1].result - expect).abs() < 1e-12,
        "arrival {} != {}",
        outs[1].result,
        expect
    );
}

#[test]
fn egress_port_serialises_back_to_back_sends() {
    // Two sends through the same NIC: second arrival is delayed by the
    // first's serialisation time even though both are posted at t=0.
    let topo = Topology::new(2, 1, Link::new(0.0, 1e9), Link::new(1e-6, 1e8));
    let world = World::new(topo);
    let bytes = 4.0 * 1000.0;
    let outs = world.run_results(|comm| {
        if comm.rank() == 0 {
            comm.send_vec(1, &vec![0.0; 1000]);
            comm.send_vec(1, &vec![0.0; 1000]);
            0.0
        } else {
            let _ = comm.recv_vec(0);
            let t1 = comm.time();
            let _ = comm.recv_vec(0);
            let t2 = comm.time();
            t2 - t1
        }
    });
    let ser = bytes / 1e8;
    assert!(
        (outs[1] - ser).abs() < 1e-12,
        "second message delayed by {} not {}",
        outs[1],
        ser
    );
}

#[test]
fn intra_and_inter_ports_are_independent() {
    // A send over NVLink does not occupy the NIC and vice versa.
    let topo = Topology::new(2, 2, Link::new(0.0, 1e9), Link::new(0.0, 1e8));
    let world = World::new(topo);
    let outs = world.run_results(|comm| match comm.rank() {
        0 => {
            // One intra send (to 1) then one inter send (to 2), both at t=0.
            comm.send_vec(1, &vec![0.0; 1000]);
            comm.send_vec(2, &vec![0.0; 1000]);
            0.0
        }
        1 => {
            let _ = comm.recv_vec(0);
            comm.time()
        }
        2 => {
            let _ = comm.recv_vec(0);
            comm.time()
        }
        _ => 0.0,
    });
    assert!((outs[1] - 4000.0 / 1e9).abs() < 1e-12, "intra {}", outs[1]);
    // Inter send departs at t=0 too (separate port), so it is NOT delayed
    // behind the intra transfer.
    assert!((outs[2] - 4000.0 / 1e8).abs() < 1e-12, "inter {}", outs[2]);
}

#[test]
fn overlap_is_max_of_compute_and_comm() {
    let topo = Topology::uniform(2, Link::new(0.0, 1e6)); // slow: 4 KB = 4 ms
    let world = World::new(topo);
    let outs = world.run_results(|comm| {
        if comm.rank() == 0 {
            comm.send_vec(1, &vec![0.0; 1000]);
            0.0
        } else {
            comm.advance_compute(1e-3); // compute while the message flies
            let _ = comm.recv_vec(0);
            comm.time()
        }
    });
    // Transfer takes 4 ms; 1 ms of compute hides inside it: total 4 ms, not 5.
    assert!(
        (outs[1] - 4e-3).abs() < 1e-9,
        "overlapped total {}",
        outs[1]
    );
}

#[test]
fn serial_compute_then_recv_adds_up() {
    let topo = Topology::uniform(2, Link::new(0.0, 1e6));
    let world = World::new(topo);
    let outs = world.run_results(|comm| {
        if comm.rank() == 0 {
            comm.advance_compute(5e-3); // send AFTER compute: no overlap
            comm.send_vec(1, &vec![0.0; 1000]);
            0.0
        } else {
            let _ = comm.recv_vec(0);
            comm.time()
        }
    });
    assert!((outs[1] - 9e-3).abs() < 1e-9, "serial total {}", outs[1]);
}

#[test]
fn barrier_synchronises_clocks() {
    let world = World::new(Topology::single_node(4));
    let outs = world.run(|comm| {
        comm.advance_compute(comm.rank() as f64 * 1e-3);
        comm.barrier();
        comm.time()
    });
    let t0 = outs[0].result;
    assert!(t0 >= 3e-3, "barrier must wait for the slowest rank");
    for o in &outs {
        assert!(
            (o.result - t0).abs() < 1e-4,
            "rank {} clock {} far from {}",
            o.rank,
            o.result,
            t0
        );
    }
}

#[test]
fn all_gather_returns_blocks_in_rank_order() {
    for gpus in [2, 3, 8] {
        let world = World::new(Topology::single_node(gpus));
        let outs = world.run_results(|comm| {
            let mine = rank_mat(comm.rank(), 2, 3);
            comm.all_gather_mat(&mine)
        });
        for (rank, got) in outs.iter().enumerate() {
            assert_eq!(got.len(), gpus, "rank {rank}");
            for (src, m) in got.iter().enumerate() {
                assert_eq!(*m, rank_mat(src, 2, 3), "rank {rank} block {src}");
            }
        }
    }
}

#[test]
fn reduce_scatter_sums_contributions() {
    for gpus in [2, 3, 5, 8] {
        let world = World::new(Topology::single_node(gpus));
        let outs = world.run_results(|comm| {
            let g = comm.world_size();
            let parts: Vec<Mat> = (0..g)
                .map(|d| Mat::full(2, 2, (comm.rank() * 10 + d) as f32))
                .collect();
            comm.reduce_scatter_mat(&parts)
        });
        for (rank, got) in outs.iter().enumerate() {
            // Sum over src of (src*10 + rank).
            let expect: f32 = (0..gpus).map(|s| (s * 10 + rank) as f32).sum();
            assert_eq!(*got, Mat::full(2, 2, expect), "rank {rank}");
        }
    }
}

#[test]
fn all_reduce_matches_manual_sum() {
    for rows in [4usize, 6] {
        // 4 divides evenly among 4 ranks (ring path); 6 does not (fallback).
        let world = World::new(Topology::single_node(4));
        let outs = world.run_results(move |comm| {
            let m = rank_mat(comm.rank(), rows, 2);
            comm.all_reduce_mat(&m)
        });
        let mut expect = rank_mat(0, rows, 2);
        for r in 1..4 {
            expect.add_assign(&rank_mat(r, rows, 2));
        }
        for got in &outs {
            assert_eq!(*got, expect);
        }
    }
}

#[test]
fn all_to_all_transposes_blocks() {
    let world = World::new(Topology::a800(2, 2));
    let outs = world.run_results(|comm| {
        let g = comm.world_size();
        let outgoing: Vec<Mat> = (0..g)
            .map(|d| Mat::full(1, 1, (comm.rank() * 10 + d) as f32))
            .collect();
        comm.all_to_all_mat(outgoing)
    });
    for (rank, got) in outs.iter().enumerate() {
        for (src, m) in got.iter().enumerate() {
            assert_eq!(
                m.get(0, 0),
                (src * 10 + rank) as f32,
                "rank {rank} src {src}"
            );
        }
    }
}

#[test]
fn broadcast_distributes_root_matrix() {
    let world = World::new(Topology::single_node(3));
    let outs = world.run_results(|comm| {
        let m = rank_mat(7, 2, 2);
        let mine = if comm.rank() == 1 { Some(&m) } else { None };
        comm.broadcast_mat(1, mine)
    });
    for got in &outs {
        assert_eq!(*got, rank_mat(7, 2, 2));
    }
}

#[test]
fn all_reduce_vec_sums() {
    let world = World::new(Topology::single_node(4));
    let outs = world.run_results(|comm| comm.all_reduce_vec(&[comm.rank() as f32, 1.0]));
    for got in &outs {
        assert_eq!(got, &vec![6.0, 4.0]);
    }
}

#[test]
fn ring_shift_moves_data_one_hop() {
    let world = World::new(Topology::single_node(4));
    let outs =
        world.run_results(
            |comm| match comm.ring_shift(MsgData::Scalar(comm.rank() as f64)) {
                MsgData::Scalar(s) => s,
                other => panic!("unexpected {other:?}"),
            },
        );
    assert_eq!(outs, vec![3.0, 0.0, 1.0, 2.0]);
}

#[test]
fn stats_split_intra_vs_inter() {
    let world = World::new(Topology::a800(2, 2));
    let outs = world.run(|comm| {
        if comm.rank() == 0 {
            comm.send_vec(1, &[0.0; 10]); // intra
            comm.send_vec(2, &[0.0; 20]); // inter
        } else if comm.rank() == 1 || comm.rank() == 2 {
            let _ = comm.recv_vec(0);
        }
    });
    let s = outs[0].stats;
    assert_eq!(s.intra_msgs, 1);
    assert_eq!(s.inter_msgs, 1);
    assert_eq!(s.intra_elems, 10);
    assert_eq!(s.inter_elems, 20);
    assert_eq!(s.intra_bytes, 40.0);
    assert_eq!(s.inter_bytes, 80.0);
}

#[test]
fn virtual_clock_is_deterministic_across_runs() {
    let run = || {
        let world = World::new(Topology::a800(2, 4));
        let outs = world.run(|comm| {
            let mine = rank_mat(comm.rank(), 8, 4);
            let all = comm.all_gather_mat(&mine);
            comm.advance_compute(1e-4 * (comm.rank() + 1) as f64);
            let red = comm.all_reduce_mat(&all[0]);
            comm.barrier();
            red.frob_norm()
        });
        outs.iter().map(|o| (o.result, o.time)).collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "virtual clocks must not depend on thread scheduling");
}

#[test]
fn flat_ring_crossing_nodes_is_gated_by_nic() {
    // Compare a full ring pass on 1x4 (all NVLink) vs 2x2 (two IB hops):
    // the multi-node ring must be slower in virtual time.
    let elems = 64 * 64;
    let run = |topo: Topology| {
        let world = World::new(topo);
        let (_, makespan, _) = world.run_timed(|comm| {
            let mut buf = rank_mat(comm.rank(), 64, 64);
            for _ in 0..comm.world_size() - 1 {
                match comm.ring_shift(MsgData::Mat(buf.clone())) {
                    MsgData::Mat(m) => buf = m,
                    other => panic!("unexpected {other:?}"),
                }
            }
            buf
        });
        assert!(elems > 0);
        makespan
    };
    let single = run(Topology::single_node(4));
    let multi = run(Topology::a800(2, 2));
    assert!(
        multi > 2.0 * single,
        "inter-node ring ({multi}) should be much slower than NVLink ring ({single})"
    );
}

#[test]
fn bf16_wire_dtype_halves_bytes_and_rounds_payloads() {
    use burst_comm::WireDtype;
    let run = |dtype: WireDtype| {
        let topo = Topology::single_node(2).with_wire_dtype(dtype);
        let world = World::new(topo);
        world.run(|comm| {
            if comm.rank() == 0 {
                comm.send_mat(1, &Mat::from_fn(8, 8, |r, c| 0.1 + (r * 8 + c) as f32));
                (Mat::default(), comm.stats().total_bytes())
            } else {
                let got = comm.recv_mat(0);
                (got, 0.0)
            }
        })
    };
    let f32_run = run(WireDtype::F32);
    let bf16_run = run(WireDtype::Bf16);
    let (sent_f32, sent_bf16) = (f32_run[0].result.1, bf16_run[0].result.1);
    assert_eq!(sent_f32, 64.0 * 4.0, "f32 wire bills 4 bytes per element");
    assert_eq!(sent_bf16, 64.0 * 2.0, "bf16 wire bills 2 bytes per element");
    let exact = Mat::from_fn(8, 8, |r, c| 0.1 + (r * 8 + c) as f32);
    assert_eq!(f32_run[1].result.0, exact, "f32 wire is exact");
    assert_eq!(
        bf16_run[1].result.0,
        exact.to_bf16(),
        "bf16 wire rounds to nearest-even at the sender"
    );
}

#[test]
fn bf16_collectives_round_once_and_agree_across_ranks() {
    use burst_comm::WireDtype;
    // All-gather under bf16: every rank must see the same rounded blocks,
    // and a block that traversed multiple hops must equal the one-hop
    // rounding (re-encoding a decoded matrix is lossless).
    let topo = Topology::single_node(4).with_wire_dtype(WireDtype::Bf16);
    let world = World::new(topo);
    let outs = world.run_results(|comm| {
        let mine = Mat::from_fn(3, 5, |r, c| {
            0.123 + (comm.rank() * 100 + r * 5 + c) as f32 * 0.017
        });
        comm.all_gather_mat(&mine)
    });
    for rank in 0..4 {
        let expect =
            Mat::from_fn(3, 5, |r, c| 0.123 + (rank * 100 + r * 5 + c) as f32 * 0.017).to_bf16();
        for (viewer, out) in outs.iter().enumerate() {
            if viewer == rank {
                continue; // own block never crossed the wire
            }
            assert_eq!(
                out[rank], expect,
                "viewer {viewer} sees rank {rank}'s block rounded exactly once"
            );
        }
    }
}
