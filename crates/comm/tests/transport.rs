//! Integration tests for the self-healing transport and the deterministic
//! failure detector: the bottom two rungs of the recovery ladder.
//!
//! The contract under test: any *transient* fault (drop, corruption, burst
//! drop, link flap, partition) that fits inside the transport's retry
//! budget heals invisibly — the final payloads are **bit-identical** to a
//! clean run, only virtual time and wire-byte accounting differ. An outage
//! that outlives the budget gives up and reproduces the legacy escalation
//! observables exactly, where the failure detector then separates *dead*
//! peers from merely *slow* ones.

use burst_comm::{
    CommError, DetectorCfg, FaultPlan, RetryPolicy, Topology, TransportPolicy, World,
};

/// The CI `transport-faults` job sweeps this to prove the healing path is
/// deterministic for any seed, not just the default.
fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// One deterministic ring workload: every rank sends a rank-tagged vector
/// to its successor `rounds` times and returns everything it received,
/// plus its final virtual clock.
fn ring_exchange(
    world: &World,
    rounds: usize,
) -> Vec<(
    Vec<Vec<f32>>,
    f64,
    burst_comm::CommStats,
    burst_comm::FaultCounters,
)> {
    let outs = world.run(|comm| {
        let g = comm.world_size();
        let next = (comm.rank() + 1) % g;
        let prev = (comm.rank() + g - 1) % g;
        let mut got = Vec::with_capacity(rounds);
        for round in 0..rounds {
            let payload: Vec<f32> = (0..16)
                .map(|i| (comm.rank() * 1000 + round * 16 + i) as f32 * 0.5)
                .collect();
            comm.send_vec(next, &payload);
            got.push(comm.recv_vec(prev));
        }
        got
    });
    outs.into_iter()
        .map(|o| (o.result, o.time, o.stats, o.faults))
        .collect()
}

#[test]
fn transient_faults_heal_bit_identical_to_clean() {
    let topo = || Topology::single_node(4);
    let rounds = 6;
    let clean = ring_exchange(&World::new(topo()), rounds);

    // Every transient fault class at once: point drops, a burst-drop
    // window, payload corruption, a link flap, and a full partition —
    // all comfortably inside the default retry budget (~51 ms).
    let tp = TransportPolicy::default();
    assert!(
        tp.min_retry_budget() > 2e-3,
        "windows below must be transient"
    );
    let plan = FaultPlan::new(fault_seed())
        .drop_msg(0, 1, 0)
        .drop_burst(1, 2, 1, 2)
        .corrupt_msg(2, 3, 1)
        .flap_link(3, 0, 0.0, 5e-4)
        .partition(&[&[0, 1], &[2, 3]], 1e-3, 2e-3)
        .recv_deadline(30.0)
        .reliable();
    let healed = ring_exchange(&World::with_faults(topo(), plan), rounds);

    let mut retransmits = 0;
    let mut healed_count = 0;
    for (rank, ((cp, ct, cs, _), (hp, ht, hs, hf))) in clean.iter().zip(healed.iter()).enumerate() {
        // Bit-identical payloads: healing is invisible above the transport.
        assert_eq!(cp, hp, "rank {rank}: healed payloads must match clean run");
        // Only virtual time and retransmit accounting may differ.
        assert!(ht >= ct, "rank {rank}: healing can only cost virtual time");
        assert_eq!(
            cs.total_bytes(),
            hs.total_bytes(),
            "rank {rank}: clean byte counters are untouched by healing"
        );
        assert_eq!(
            hs.wire_bytes_with_retrans(),
            hs.total_bytes() + hs.retrans_bytes,
            "rank {rank}: retransmit bytes are accounted exactly"
        );
        // Uniform 16-float payloads: every retransmitted attempt re-ships
        // exactly 64 bytes.
        assert_eq!(hs.retrans_bytes, hf.retransmits as f64 * 64.0);
        assert_eq!(hs.retrans_msgs, hf.retransmits);
        assert_eq!(hf.giveups, 0, "rank {rank}: every fault must heal");
        assert_eq!(hf.timeouts, 0, "rank {rank}: no receiver ever times out");
        retransmits += hf.retransmits;
        healed_count += hf.healed;
    }
    assert!(
        retransmits > 0,
        "the plan must actually exercise the transport"
    );
    assert!(healed_count > 0, "healed incidents must be counted");
    let total_faults: u64 = healed.iter().map(|(_, _, _, f)| f.total()).sum();
    assert!(
        total_faults > 0,
        "injected faults must be visible in counters"
    );
}

#[test]
fn healing_is_deterministic_for_a_fixed_seed() {
    let run = || {
        let plan = FaultPlan::new(fault_seed())
            .drop_burst(0, 1, 0, 2)
            .flap_link(1, 0, 0.0, 4e-4)
            .recv_deadline(30.0)
            .reliable();
        let world = World::with_faults(Topology::single_node(2), plan);
        ring_exchange(&world, 4)
            .into_iter()
            .map(|(p, t, s, f)| (p, t.to_bits(), s.retrans_msgs, f.retransmits, f.healed))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(),
        run(),
        "same seed, same healing dialogue, bit for bit"
    );
}

#[test]
fn outage_beyond_the_budget_gives_up_and_escalates_like_legacy() {
    // A 10-virtual-second outage dwarfs the ~77 ms worst-case retry
    // budget: the transport must give up and reproduce the legacy
    // observable (a receive timeout naming the same endpoints).
    let run = |reliable: bool| {
        let mut plan = FaultPlan::new(fault_seed())
            .flap_link(0, 1, 0.0, 10.0)
            .recv_deadline(1.0);
        if reliable {
            plan = plan.reliable();
        }
        let world = World::with_faults(Topology::single_node(2), plan);
        world.run_faulty::<_, CommError, _>(|comm| {
            if comm.rank() == 0 {
                comm.try_send_vec(1, &[1.0, 2.0])
            } else {
                comm.try_recv_vec(0).map(|_| ())
            }
        })
    };
    let with_transport = run(true);
    let without = run(false);
    for (label, outs) in [("reliable", &with_transport), ("legacy", &without)] {
        assert!(
            matches!(
                outs[1].result,
                Err(CommError::Timeout {
                    rank: 1,
                    src: 0,
                    ..
                })
            ),
            "{label}: an unhealable outage must escalate as a timeout: {:?}",
            outs[1].result
        );
    }
    let tp = TransportPolicy::default();
    assert_eq!(
        with_transport[0].faults.retransmits,
        u64::from(tp.max_resends),
        "the whole resend budget is spent before giving up"
    );
    assert_eq!(with_transport[0].faults.giveups, 1);
    assert_eq!(with_transport[0].faults.healed, 0);
    assert_eq!(
        without[0].faults.retransmits, 0,
        "legacy path never resends"
    );
    assert_eq!(without[0].faults.giveups, 0);
    // Both paths burn the same receiver-side escalation counter.
    assert_eq!(with_transport[1].faults.timeouts, 1);
    assert_eq!(without[1].faults.timeouts, 1);
}

#[test]
fn partition_cuts_cross_group_links_only() {
    // Groups {0,1} and {2,3} split for the first virtual second; intra-
    // group traffic is untouched, cross-group traffic is lost (and with no
    // transport, surfaces as a timeout).
    let plan = FaultPlan::new(fault_seed())
        .partition(&[&[0, 1], &[2, 3]], 0.0, 1.0)
        .recv_deadline(0.5);
    let world = World::with_faults(Topology::single_node(4), plan);
    let outs = world.run_faulty::<_, CommError, _>(|comm| match comm.rank() {
        0 => {
            comm.try_send_vec(1, &[7.0])?; // same group: delivered
            comm.try_send_vec(2, &[8.0])?; // cross group: lost
            Ok(vec![])
        }
        1 => comm.try_recv_vec(0),
        2 => comm.try_recv_vec(0),
        _ => Ok(vec![]),
    });
    assert_eq!(
        outs[1].result.as_deref(),
        Ok(&[7.0][..]),
        "intra-group delivery must survive the partition"
    );
    assert!(
        matches!(
            outs[2].result,
            Err(CommError::Timeout {
                rank: 2,
                src: 0,
                ..
            })
        ),
        "cross-group message must be lost: {:?}",
        outs[2].result
    );
    assert_eq!(
        outs[0].faults.flaps, 1,
        "the partition loss lands in the sender's flap counter"
    );
}

#[test]
fn detector_confirms_death_at_the_policy_threshold() {
    // Three dropped messages = three consecutive receive failures = the
    // retry policy's max_attempts: the default detector confirms the peer
    // dead exactly when the pre-detector escalation would have evicted.
    let policy = RetryPolicy::default();
    assert_eq!(policy.max_attempts, 3, "test tracks the default policy");
    let plan = FaultPlan::new(fault_seed())
        .drop_burst(0, 1, 0, 3)
        .recv_deadline(1.0);
    let world = World::with_faults(Topology::single_node(2), plan);
    let outs = world.run_faulty::<_, CommError, _>(|comm| {
        if comm.rank() == 0 {
            for _ in 0..3 {
                comm.try_send_vec(1, &[1.0])?;
            }
            Ok((false, false, true))
        } else {
            let mut confirmed = Vec::new();
            for _ in 0..3 {
                assert!(matches!(
                    comm.try_recv_vec(0),
                    Err(CommError::Timeout { .. })
                ));
                confirmed.push(comm.peer_confirmed_dead(0, 3));
            }
            assert_eq!(comm.failure_detector().consecutive_failures(0), 3);
            assert!(comm.suspicion_phi(0) >= 3.0);
            Ok((confirmed[0], confirmed[1], confirmed[2]))
        }
    });
    assert_eq!(
        outs[1].result,
        Ok((false, false, true)),
        "confirmation fires exactly at max_attempts failures"
    );
    assert_eq!(
        outs[1].faults.suspicions, 1,
        "one incident, one suspicion — repeat confirmations do not re-count"
    );
}

#[test]
fn detector_threshold_override_keeps_a_slow_peer_alive() {
    // Same three losses, but the detector is configured to demand five
    // consecutive failures: the peer is *slow*, not dead — and a single
    // clean delivery resets the streak entirely.
    let plan = FaultPlan::new(fault_seed())
        .drop_burst(0, 1, 0, 3)
        .recv_deadline(1.0)
        .with_detector(DetectorCfg {
            fail_threshold: Some(5),
            ..DetectorCfg::default()
        });
    let world = World::with_faults(Topology::single_node(2), plan);
    let outs = world.run_faulty::<_, CommError, _>(|comm| {
        if comm.rank() == 0 {
            for _ in 0..4 {
                comm.try_send_vec(1, &[2.5])?;
            }
            Ok(0)
        } else {
            for _ in 0..3 {
                assert!(matches!(
                    comm.try_recv_vec(0),
                    Err(CommError::Timeout { .. })
                ));
                assert!(
                    !comm.peer_confirmed_dead(0, 3),
                    "3 < 5 failures: slow, not dead"
                );
            }
            // The fourth message survives: the streak resets.
            let v = comm.try_recv_vec(0)?;
            assert_eq!(v, vec![2.5]);
            assert_eq!(comm.failure_detector().consecutive_failures(0), 0);
            assert!(!comm.peer_confirmed_dead(0, 3));
            Ok(1)
        }
    });
    assert_eq!(outs[1].result, Ok(1));
    assert_eq!(
        outs[1].faults.suspicions, 0,
        "a withheld suspicion must never be announced"
    );
}

#[test]
fn seeded_flap_matrix_heals_with_detector_on() {
    // The CI `transport-faults` job runs this over a FAULT_SEED matrix and
    // collects the `[recovery]` lines as an artifact. The flap/partition
    // windows are a pure function of the seed, always inside the retry
    // budget — so for ANY seed the run must heal completely: zero
    // give-ups, zero receiver timeouts, zero suspicions, payloads
    // bit-identical to the clean run.
    let seed = fault_seed();
    let tp = TransportPolicy::default();
    let budget = tp.min_retry_budget();
    let rounds = 8;
    let topo = || Topology::single_node(4);
    let clean = ring_exchange(&World::new(topo()), rounds);

    // Seed-derived transient windows: two link flaps and one partition,
    // each strictly shorter than half the retry budget.
    let mix = |k: u64| {
        let mut x = seed.wrapping_add(k).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 31;
        x
    };
    let frac = |k: u64| (mix(k) >> 11) as f64 / (1u64 << 53) as f64;
    let w = |k: u64| 1e-4 + frac(k) * (budget * 0.5 - 1e-4);
    let mut plan = FaultPlan::new(seed)
        .flap_link(
            (mix(1) % 4) as usize,
            ((mix(1) % 4) as usize + 1) % 4,
            0.0,
            w(2),
        )
        .flap_link(
            (mix(3) % 4) as usize,
            ((mix(3) % 4) as usize + 3) % 4,
            w(4) * 0.5,
            w(4),
        )
        .partition(&[&[0, 2], &[1, 3]], w(5) * 0.25, w(5))
        .recv_deadline(30.0)
        .reliable();
    plan = plan.with_detector(DetectorCfg::default());
    let healed = ring_exchange(&World::with_faults(topo(), plan), rounds);

    let mut flaps = 0u64;
    let mut retransmits = 0u64;
    let mut healed_count = 0u64;
    let mut retrans_bytes = 0.0f64;
    for (rank, ((cp, _, _, _), (hp, _, hs, hf))) in clean.iter().zip(healed.iter()).enumerate() {
        assert_eq!(
            cp, hp,
            "seed {seed}, rank {rank}: healed run must be bit-identical"
        );
        assert_eq!(
            hf.giveups, 0,
            "seed {seed}, rank {rank}: transient plan must heal"
        );
        assert_eq!(hf.timeouts, 0, "seed {seed}, rank {rank}");
        assert_eq!(
            hf.suspicions, 0,
            "seed {seed}, rank {rank}: nobody is suspected"
        );
        flaps += hf.flaps;
        retransmits += hf.retransmits;
        healed_count += hf.healed;
        retrans_bytes += hs.retrans_bytes;
    }
    println!(
        "[recovery] seed={seed} flaps={flaps} retransmits={retransmits} \
         healed={healed_count} giveups=0 timeouts=0 suspicions=0 \
         retrans_bytes={retrans_bytes}"
    );
}
