//! Plain-text flame summary: per-rank, per-kind time totals rendered as a
//! fixed-width table with proportional bars — the quick look before
//! opening the full trace in Perfetto.

use crate::span::{RankTrace, SpanKind};

/// Kinds shown in the summary, in display order. `Send` is wire time and
/// overlaps the others; it is listed last and not part of the busy bar.
const KINDS: [SpanKind; 4] = [
    SpanKind::Kernel,
    SpanKind::Wait,
    SpanKind::Recv,
    SpanKind::Send,
];

const BAR_WIDTH: usize = 24;

fn bar(frac: f64) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * BAR_WIDTH as f64).round() as usize;
    let mut s = String::with_capacity(BAR_WIDTH);
    for i in 0..BAR_WIDTH {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Render the per-rank summary. Degenerate inputs (no ranks, zero-length
/// timelines, no compute) render as empty bars rather than panicking.
pub fn flame_text(traces: &[RankTrace]) -> String {
    let mut out = String::new();
    let makespan = traces.iter().map(|t| t.end_time).fold(0.0, f64::max);
    out.push_str(&format!(
        "flame summary: {} rank(s), makespan {:.6e}s\n",
        traces.len(),
        makespan
    ));
    for t in traces {
        out.push_str(&format!("rank {:>3}  end {:.6e}s\n", t.rank, t.end_time));
        for kind in KINDS {
            let secs = t.total_secs(kind);
            let count = t.count(kind);
            if count == 0 {
                continue;
            }
            let frac = if t.end_time > 0.0 {
                secs / t.end_time
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<10} {} {:>12.6e}s  ({:>5.1}%)  n={}\n",
                kind.label(),
                bar(frac),
                secs,
                frac * 100.0,
                count
            ));
        }
        for w in &t.warnings {
            out.push_str(&format!("  warning: {w}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::RankSink;

    #[test]
    fn renders_a_busy_rank() {
        let mut sink = RankSink::with_capacity(0, 8);
        sink.leaf(SpanKind::Kernel, "k", 0.0, 0.5, u32::MAX, 0, false);
        sink.leaf(SpanKind::Wait, "w", 0.5, 1.0, u32::MAX, 0, false);
        let text = flame_text(&[sink.finish(1.0)]);
        assert!(text.contains("rank   0"), "{text}");
        assert!(text.contains("kernel"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert!(flame_text(&[]).contains("0 rank(s)"));
        // One rank, zero compute, zero-length timeline.
        let sink = RankSink::with_capacity(0, 4);
        let text = flame_text(&[sink.finish(0.0)]);
        assert!(text.contains("rank   0"), "{text}");
    }

    #[test]
    fn warnings_are_surfaced() {
        let mut sink = RankSink::with_capacity(1, 4);
        sink.begin(SpanKind::Step, "step", 0.0);
        let text = flame_text(&[sink.finish(0.5)]);
        assert!(text.contains("warning:"), "{text}");
        assert!(text.contains("force-closed"), "{text}");
    }
}
