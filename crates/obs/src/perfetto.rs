//! Chrome/Perfetto `trace_events` JSON export.
//!
//! The emitted object loads directly in `ui.perfetto.dev` (or
//! `chrome://tracing`): one *process* per rank, one *thread* per span lane
//! (`0 control`, `1 compute`, `2 recv/wait`, `3 wire`), complete (`ph:"X"`)
//! events in microseconds. Virtual seconds are scaled by 1e6 so a
//! millisecond-scale attention round renders at a comfortable zoom level.
//!
//! All structs round-trip through the workspace serde shim (`PartialEq` +
//! derive), which the test below locks in.

use crate::span::{RankTrace, SpanKind};
use serde::{Deserialize, Serialize};

/// Microseconds per virtual second.
const US: f64 = 1e6;

/// Free-form event arguments (Perfetto shows these in the detail pane).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfettoArgs {
    /// `kind` label, peer and payload summary: e.g. `"send -> r3, 2048 elems, inter"`.
    pub detail: String,
    /// Numeric sample for counter events (`ph:"C"`, e.g. the memory
    /// lanes); 0 for span/metadata events.
    pub value: f64,
}

/// One `trace_events` entry. Field names are part of the Chrome trace
/// format, hence the non-snake-case allowances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfettoEvent {
    pub name: String,
    pub cat: String,
    /// `"X"` (complete, has `dur`), `"i"` (instant) or `"M"` (metadata).
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (0 for instants/metadata).
    pub dur: f64,
    pub pid: u64,
    pub tid: u64,
    pub args: PerfettoArgs,
}

/// A whole trace: the JSON object Perfetto ingests.
#[allow(non_snake_case)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfettoTrace {
    pub traceEvents: Vec<PerfettoEvent>,
    pub displayTimeUnit: String,
}

fn metadata(name: &str, pid: u64, tid: u64, label: String) -> PerfettoEvent {
    PerfettoEvent {
        name: name.to_string(),
        cat: "__metadata".to_string(),
        ph: "M".to_string(),
        ts: 0.0,
        dur: 0.0,
        pid,
        tid,
        args: PerfettoArgs {
            detail: label,
            value: 0.0,
        },
    }
}

fn lane_name(lane: u64) -> &'static str {
    match lane {
        1 => "compute",
        2 => "recv/wait",
        3 => "wire",
        4 => "wire-retry",
        _ => "control",
    }
}

fn push_rank(events: &mut Vec<PerfettoEvent>, trace: &RankTrace, pid: u64, rank_label: &str) {
    events.push(metadata("process_name", pid, 0, rank_label.to_string()));
    let mut lanes_seen = [false; 5];
    for s in &trace.spans {
        lanes_seen[s.kind.lane() as usize] = true;
    }
    for (lane, seen) in lanes_seen.iter().enumerate() {
        if *seen {
            events.push(metadata(
                "thread_name",
                pid,
                lane as u64,
                lane_name(lane as u64).to_string(),
            ));
        }
    }
    for s in &trace.spans {
        let mut detail = s.kind.label().to_string();
        if s.peer != u32::MAX {
            detail.push_str(&format!(" peer r{}", s.peer));
        }
        if s.elems > 0 {
            detail.push_str(&format!(", {} elems", s.elems));
        }
        if s.kind == SpanKind::Send {
            detail.push_str(if s.inter { ", inter" } else { ", intra" });
        }
        let instant = s.duration() == 0.0;
        events.push(PerfettoEvent {
            name: s.name.to_string(),
            cat: s.kind.label().to_string(),
            ph: if instant { "i" } else { "X" }.to_string(),
            ts: s.start * US,
            dur: s.duration() * US,
            pid,
            tid: s.kind.lane(),
            args: PerfettoArgs { detail, value: 0.0 },
        });
    }
}

/// Export one cluster run: `pid == rank`, `tid == lane`.
pub fn to_perfetto(traces: &[RankTrace]) -> PerfettoTrace {
    let mut events = Vec::new();
    for t in traces {
        push_rank(&mut events, t, t.rank as u64, &format!("rank {}", t.rank));
    }
    PerfettoTrace {
        traceEvents: events,
        displayTimeUnit: "ns".to_string(),
    }
}

/// Export several runs (e.g. one per attention method) side by side in a
/// single trace: group `g`, rank `r` becomes `pid = g * 100 + r` and the
/// process name carries the group label.
pub fn to_perfetto_grouped(groups: &[(String, Vec<RankTrace>)]) -> PerfettoTrace {
    let mut events = Vec::new();
    for (g, (label, traces)) in groups.iter().enumerate() {
        for t in traces {
            let pid = (g as u64) * 100 + t.rank as u64;
            push_rank(&mut events, t, pid, &format!("{label} / rank {}", t.rank));
        }
    }
    PerfettoTrace {
        traceEvents: events,
        displayTimeUnit: "ns".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::RankSink;

    fn sample_trace() -> RankTrace {
        let mut sink = RankSink::with_capacity(2, 32);
        sink.begin(SpanKind::Step, "step0", 0.0);
        sink.begin(SpanKind::AttnRound, "round0", 0.0);
        sink.leaf(SpanKind::Send, "kv", 0.0, 1.5e-3, 3, 4096, true);
        sink.leaf(
            SpanKind::Kernel,
            "attn_tile",
            0.0,
            1.0e-3,
            u32::MAX,
            0,
            false,
        );
        sink.leaf(SpanKind::Wait, "kv", 1.0e-3, 1.5e-3, u32::MAX, 0, false);
        sink.leaf(SpanKind::Recv, "kv", 1.0e-3, 1.5e-3, 1, 4096, false);
        sink.end(1.5e-3);
        sink.instant(SpanKind::Fault, "grad_poison", 1.5e-3);
        sink.end(2.0e-3);
        sink.finish(2.0e-3)
    }

    #[test]
    fn serde_round_trip_is_lossless() {
        let trace = to_perfetto(&[sample_trace()]);
        let text = serde_json::to_string_pretty(&trace).unwrap();
        let back: PerfettoTrace = serde_json::from_str(&text).unwrap();
        assert_eq!(back, trace);
        assert!(text.contains("traceEvents"));
        assert!(text.contains("displayTimeUnit"));
    }

    #[test]
    fn lanes_pids_and_instants_are_mapped() {
        let trace = to_perfetto(&[sample_trace()]);
        // All non-metadata events carry the rank as pid.
        let spans: Vec<_> = trace
            .traceEvents
            .iter()
            .filter(|e| e.cat != "__metadata")
            .collect();
        assert!(spans.iter().all(|e| e.pid == 2));
        // The send sits on the wire lane, the kernel on the compute lane.
        let send = spans.iter().find(|e| e.cat == "send").unwrap();
        assert_eq!(send.tid, 3);
        assert!(send.args.detail.contains("inter"), "{}", send.args.detail);
        let kernel = spans.iter().find(|e| e.cat == "kernel").unwrap();
        assert_eq!(kernel.tid, 1);
        // The fault instant uses ph:"i".
        let fault = spans.iter().find(|e| e.cat == "fault").unwrap();
        assert_eq!(fault.ph, "i");
        // Metadata names every lane that appears.
        let threads: Vec<_> = trace
            .traceEvents
            .iter()
            .filter(|e| e.name == "thread_name")
            .collect();
        assert_eq!(threads.len(), 4);
    }

    #[test]
    fn grouped_export_separates_pids() {
        let grouped = to_perfetto_grouped(&[
            ("ring".to_string(), vec![sample_trace()]),
            ("burst".to_string(), vec![sample_trace()]),
        ]);
        let pids: Vec<u64> = grouped
            .traceEvents
            .iter()
            .filter(|e| e.name == "process_name")
            .map(|e| e.pid)
            .collect();
        assert_eq!(pids, vec![2, 102]);
        let burst_proc = grouped
            .traceEvents
            .iter()
            .find(|e| e.name == "process_name" && e.pid == 102)
            .unwrap();
        assert!(burst_proc.args.detail.contains("burst"));
    }
}
