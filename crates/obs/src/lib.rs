//! # burst-obs
//!
//! Full-stack **virtual-time observability** for the BurstEngine
//! reproduction. Every layer of the stack — the `burst-comm` cluster
//! simulator, the ring-family attention algorithms, the training engine,
//! elastic recovery and checkpointing — records what it does on the same
//! per-rank virtual clock, as a tree of hierarchical spans:
//!
//! ```text
//! step > micro > layer > attn_round > {kernel, send, recv, wait}
//!        plus checkpoint, eviction, replay, epoch, fault
//! ```
//!
//! The design splits cleanly into four pieces:
//!
//! * [`span`] — the per-rank [`RankSink`]: a pre-sized, lock-free (one
//!   sink per rank thread, no sharing) span buffer on the virtual clock,
//!   plus the structural validation used by tests and the `burst-trace`
//!   harness;
//! * [`metrics`] — a deterministic [`Registry`] of named counters, gauges
//!   and histograms whose merge is exact (integer arithmetic), hence
//!   associative and commutative across rank orders;
//! * [`mem`] — the per-rank virtual-memory accountant: a deterministic
//!   allocation ledger (category × bytes × virtual-time interval) with
//!   lane-only charging for in-flight traffic, whose gated per-category
//!   peaks must equal `burst-perf`'s analytic `exact_peak_bytes` census;
//! * [`perfetto`] — Chrome/Perfetto `trace_events` JSON export (one pid
//!   per rank, one tid per span lane), loadable in `ui.perfetto.dev`;
//! * [`stream`] — the incremental Perfetto writer: byte-identical output
//!   to the buffered exporter with O(step) resident memory;
//! * [`flame`] / [`report`] — a plain-text flame summary and the
//!   machine-readable `BENCH_e2e.json` report (overlap efficiency, modeled
//!   MFU, measured-vs-analytic comm time).
//!
//! Instrumentation is strictly an *observer* of the virtual clock: opening
//! or closing a span never advances time, so enabling tracing is
//! bit-identical to running without it, and the sink's buffers are
//! pre-sized so the steady-state ring round allocates nothing.

pub mod flame;
pub mod mem;
pub mod metrics;
pub mod perfetto;
pub mod report;
pub mod span;
pub mod stream;

pub use flame::flame_text;
pub use mem::{
    mem_counter_events, peak_census, validate_mem, MemCategory, MemEntry, MemId, MemLedger,
    MemReport, PeakBytes,
};
pub use metrics::{Histogram, Metric, Registry, Series};
pub use perfetto::{to_perfetto, to_perfetto_grouped, PerfettoEvent, PerfettoTrace};
pub use report::{
    compare_to_baseline, mfu, overlap_efficiency, E2eReport, MethodReport, MAX_PEAK_RISE,
    MAX_TGS_DROP,
};
pub use span::{
    retrans_secs, validate, wait_compute_secs, wire_secs, RankSink, RankTrace, SpanKind,
    SpanRecord, DEFAULT_SPAN_CAPACITY,
};
pub use stream::StreamingPerfettoWriter;
