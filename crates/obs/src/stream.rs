//! Incremental Perfetto JSON export with **bounded resident memory**.
//!
//! The buffered exporter ([`crate::to_perfetto`] + `serde_json::to_string`)
//! holds the whole event vector *and* the whole JSON text in memory — O(run).
//! On a 1M-token multi-step run that is exactly the kind of peak this PR
//! exists to measure, so the trace pipeline itself must not have it. A
//! [`StreamingPerfettoWriter`] writes the same JSON document event by
//! event: the caller serializes one step's events, hands them over, drops
//! them, and the writer flushes to the sink — resident memory is one
//! serialized event (plus the sink's own buffer), O(step) not O(run).
//!
//! The output is **byte-identical** to serializing the equivalent
//! [`PerfettoTrace`](crate::PerfettoTrace) through the workspace
//! `serde_json` shim (compact via `to_string`, pretty via
//! `to_string_pretty`) — the tests lock both, so a trace written either
//! way diffs clean. The writer tracks its own high-water mark
//! ([`StreamingPerfettoWriter::high_water_bytes`]) so tests can prove the
//! bound instead of asserting it.

use crate::perfetto::PerfettoEvent;
use std::io::Write;

/// Incremental writer for one Perfetto trace document.
///
/// ```text
/// let mut w = StreamingPerfettoWriter::pretty(file);
/// for step in run {
///     for e in step.events() { w.write_event(&e)?; }
///     w.flush()?;                       // per-step durability
/// }
/// w.finish()?;                          // closes the JSON envelope
/// ```
pub struct StreamingPerfettoWriter<W: Write> {
    sink: W,
    pretty: bool,
    events: u64,
    /// Largest number of bytes ever buffered between sink writes — the
    /// quantity the boundedness tests pin (it must not grow with run
    /// length, only with the largest single event).
    high_water: usize,
    finished: bool,
}

impl<W: Write> StreamingPerfettoWriter<W> {
    /// Compact output, byte-identical to `serde_json::to_string`.
    pub fn compact(sink: W) -> Self {
        Self::new(sink, false)
    }

    /// Pretty output, byte-identical to `serde_json::to_string_pretty`.
    pub fn pretty(sink: W) -> Self {
        Self::new(sink, true)
    }

    fn new(sink: W, pretty: bool) -> Self {
        StreamingPerfettoWriter {
            sink,
            pretty,
            events: 0,
            high_water: 0,
            finished: false,
        }
    }

    /// Serialize and emit one event. Only this event's text is resident;
    /// it is handed to the sink before returning.
    pub fn write_event(&mut self, e: &PerfettoEvent) -> std::io::Result<()> {
        assert!(!self.finished, "write_event after finish");
        let body = if self.pretty {
            serde_json::to_string_pretty(e)
        } else {
            serde_json::to_string(e)
        }
        .expect("event serialization is infallible");
        // Envelope prefix: document opening before the first event, a
        // separator before every later one.
        let mut chunk = String::with_capacity(body.len() + 32);
        if self.events == 0 {
            chunk.push_str(if self.pretty {
                "{\n  \"traceEvents\": [\n    "
            } else {
                "{\"traceEvents\":["
            });
        } else {
            chunk.push_str(if self.pretty { ",\n    " } else { "," });
        }
        if self.pretty {
            // The shim indents by depth; an event sits two levels deep
            // (document → array → object), so shift every continuation
            // line by 4 spaces. JSON strings escape raw newlines, so the
            // only `\n` bytes are the serializer's own.
            chunk.push_str(&body.replace('\n', "\n    "));
        } else {
            chunk.push_str(&body);
        }
        self.high_water = self.high_water.max(chunk.len());
        self.events += 1;
        self.sink.write_all(chunk.as_bytes())
    }

    /// Flush the sink (call at step boundaries for durability).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.sink.flush()
    }

    /// Close the JSON envelope and flush. Returns the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        assert!(!self.finished, "finish called twice");
        self.finished = true;
        let tail = match (self.pretty, self.events == 0) {
            (true, true) => "{\n  \"traceEvents\": [],\n  \"displayTimeUnit\": \"ns\"\n}",
            (true, false) => "\n  ],\n  \"displayTimeUnit\": \"ns\"\n}",
            (false, true) => "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}",
            (false, false) => "],\"displayTimeUnit\":\"ns\"}",
        };
        self.high_water = self.high_water.max(tail.len());
        self.sink.write_all(tail.as_bytes())?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Events written so far.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// Largest chunk ever buffered between sink writes (bytes).
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{mem_counter_events, MemCategory, MemLedger};
    use crate::perfetto::{to_perfetto, PerfettoTrace};
    use crate::span::{RankSink, SpanKind};

    fn sample_traces(rounds: usize) -> Vec<crate::span::RankTrace> {
        (0..2u32)
            .map(|rank| {
                let mut sink = RankSink::with_capacity(rank as usize, 4 * rounds + 8);
                sink.begin(SpanKind::Step, "step0", 0.0);
                for r in 0..rounds {
                    let t = r as f64 * 1e-3;
                    sink.leaf(
                        SpanKind::Send,
                        "kv",
                        t,
                        t + 5e-4,
                        1 - rank,
                        4096,
                        r % 2 == 0,
                    );
                    sink.leaf(
                        SpanKind::Kernel,
                        "attn_tile",
                        t,
                        t + 4e-4,
                        u32::MAX,
                        0,
                        false,
                    );
                }
                sink.end(rounds as f64 * 1e-3);
                sink.finish(rounds as f64 * 1e-3)
            })
            .collect()
    }

    fn stream_all(trace: &PerfettoTrace, pretty: bool) -> (String, usize) {
        let mut w = if pretty {
            StreamingPerfettoWriter::pretty(Vec::new())
        } else {
            StreamingPerfettoWriter::compact(Vec::new())
        };
        for e in &trace.traceEvents {
            w.write_event(e).unwrap();
        }
        let hw = w.high_water_bytes();
        let bytes = w.finish().unwrap();
        (String::from_utf8(bytes).unwrap(), hw)
    }

    #[test]
    fn compact_output_is_byte_identical_to_buffered() {
        let trace = to_perfetto(&sample_traces(5));
        let buffered = serde_json::to_string(&trace).unwrap();
        let (streamed, _) = stream_all(&trace, false);
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn pretty_output_is_byte_identical_to_buffered() {
        let trace = to_perfetto(&sample_traces(5));
        let buffered = serde_json::to_string_pretty(&trace).unwrap();
        let (streamed, _) = stream_all(&trace, true);
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn counter_events_stream_identically_too() {
        let mut trace = to_perfetto(&sample_traces(3));
        let mut l = MemLedger::new(0);
        let a = l.alloc("kv", MemCategory::RingShards, 4096, 0.0);
        l.free(a, 2e-3);
        trace
            .traceEvents
            .extend(mem_counter_events(&l.finish(3e-3), 0));
        let buffered = serde_json::to_string_pretty(&trace).unwrap();
        let (streamed, _) = stream_all(&trace, true);
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn empty_trace_matches_buffered() {
        let trace = PerfettoTrace {
            traceEvents: Vec::new(),
            displayTimeUnit: "ns".to_string(),
        };
        for pretty in [false, true] {
            let buffered = if pretty {
                serde_json::to_string_pretty(&trace).unwrap()
            } else {
                serde_json::to_string(&trace).unwrap()
            };
            let (streamed, _) = stream_all(&trace, pretty);
            assert_eq!(streamed, buffered);
        }
    }

    #[test]
    fn resident_memory_is_bounded_by_one_event_not_the_run() {
        // 20× the rounds, same event shapes: the writer's high-water mark
        // must not grow with run length, while the buffered exporter's
        // whole-document size obviously does.
        let short = to_perfetto(&sample_traces(10));
        let long = to_perfetto(&sample_traces(200));
        let (text_short, hw_short) = stream_all(&short, true);
        let (text_long, hw_long) = stream_all(&long, true);
        assert!(text_long.len() > 10 * text_short.len());
        // 20× the events, yet the high-water mark moves only by the extra
        // timestamp digits of one event — it does not scale with the run.
        assert!(
            hw_long <= hw_short + 8,
            "streaming high-water grew with run length: {hw_short} -> {hw_long}"
        );
        // And the bound is tight: no bigger than the largest single event's
        // serialization plus the envelope prefix.
        let max_event = long
            .traceEvents
            .iter()
            .map(|e| serde_json::to_string_pretty(e).unwrap().len())
            .max()
            .unwrap();
        assert!(hw_long <= max_event + 4 * max_event / 10 + 64);
    }

    #[test]
    fn streamed_document_parses_back() {
        let trace = to_perfetto(&sample_traces(4));
        let (streamed, _) = stream_all(&trace, true);
        let back: PerfettoTrace = serde_json::from_str(&streamed).unwrap();
        assert_eq!(back, trace);
    }
}
