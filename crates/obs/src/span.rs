//! Hierarchical spans on the virtual clock, recorded per rank.
//!
//! Each rank thread owns one [`RankSink`] — no locks, no sharing. The sink
//! is a flat `Vec<SpanRecord>` plus an open-span stack: `begin`/`end`
//! bracket structural spans (step, layer, attention round, …) while `leaf`
//! records an already-closed interval (a kernel, a message on the wire, a
//! blocked wait). Parent links are indices into the same vector, so the
//! whole tree costs one pre-sized allocation and recording a span in the
//! steady state allocates nothing.
//!
//! ## Virtual-clock semantics
//!
//! All spans except [`SpanKind::Send`] live on the rank's *clock lane*:
//! their intervals are slices of the rank's own virtual time, so children
//! nest inside parents and a parent's duration is the `max` (the envelope)
//! of its children plus any gaps — **not** their sum. `Send` spans live on
//! the *wire lane*: a send is non-blocking, its interval is the modeled
//! `[depart, arrival]` window of the payload, and it may legitimately
//! outlive the structural span that issued it (that is what overlap *is*).
//! [`validate`] enforces exactly this: containment for clock-lane spans,
//! per-link-class monotone departures for the wire lane.

/// What a span describes. The discriminant order is stable (used for lane
/// assignment in the Perfetto export).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One optimizer step of the training engine.
    Step,
    /// One micro-batch inside a step.
    Micro,
    /// One transformer layer (forward or backward half).
    Layer,
    /// One round/slot of a ring-family attention schedule.
    AttnRound,
    /// Modeled local compute (`advance_compute`).
    Kernel,
    /// A message on the wire: `[depart, arrival]` (wire lane, non-blocking).
    Send,
    /// A receive: `[posted, completed]` on the local clock.
    Recv,
    /// The blocked portion of a receive (data not yet arrived).
    Wait,
    /// A checkpoint shard/manifest write.
    Checkpoint,
    /// The eviction-agreement protocol after a failure.
    Eviction,
    /// A re-run of a step/ring on a shrunken world.
    Replay,
    /// A membership epoch bump (instant).
    Epoch,
    /// A fault firing or fault-driven decision (instant).
    Fault,
    /// The join-agreement protocol re-admitting a parked rank.
    Join,
    /// A rank being re-admitted to the alive set (instant).
    Rejoin,
    /// A failed physical transmission the reliable transport re-sent:
    /// `[depart, would-be-arrival]` on the wire lane. Excluded from
    /// [`wire_secs`] so the measured-vs-analytic comm gate keeps holding
    /// with faults on; summed separately by [`retrans_secs`].
    Retransmit,
    /// An optimizer/FSDP communication op (weight all-gather, gradient
    /// all-reduce, offload round-trip) — per-op tracing of the optimizer
    /// path.
    Optim,
}

impl SpanKind {
    /// Short lowercase label, used in exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Step => "step",
            SpanKind::Micro => "micro",
            SpanKind::Layer => "layer",
            SpanKind::AttnRound => "attn_round",
            SpanKind::Kernel => "kernel",
            SpanKind::Send => "send",
            SpanKind::Recv => "recv",
            SpanKind::Wait => "wait",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Eviction => "eviction",
            SpanKind::Replay => "replay",
            SpanKind::Epoch => "epoch",
            SpanKind::Fault => "fault",
            SpanKind::Join => "join",
            SpanKind::Rejoin => "rejoin",
            SpanKind::Retransmit => "retransmit",
            SpanKind::Optim => "optim",
        }
    }

    /// Rendering lane (Perfetto tid): 0 = control/structure, 1 = compute,
    /// 2 = recv/wait, 3 = the wire.
    pub fn lane(self) -> u64 {
        match self {
            SpanKind::Kernel => 1,
            SpanKind::Recv | SpanKind::Wait => 2,
            SpanKind::Send => 3,
            SpanKind::Retransmit => 4,
            _ => 0,
        }
    }

    /// Wire-lane spans are exempt from parent containment (a non-blocking
    /// send may land after the structural span that issued it closed).
    pub fn is_wire(self) -> bool {
        matches!(self, SpanKind::Send | SpanKind::Retransmit)
    }
}

/// One recorded span. `Copy` and free of owned data (`name` is static) so
/// recording never allocates.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    pub kind: SpanKind,
    pub name: &'static str,
    /// Virtual start time (seconds). For `Send`: the port departure time.
    pub start: f64,
    /// Virtual end time. `NaN` while the span is still open.
    pub end: f64,
    /// Index of the enclosing span in the same sink, `-1` for roots.
    pub parent: i32,
    /// Peer rank for `Send`/`Recv`, `u32::MAX` otherwise.
    pub peer: u32,
    /// Logical payload elements for `Send`/`Recv`, free-form tag otherwise.
    pub elems: u64,
    /// `Send` crossed the node boundary (NIC) rather than NVLink.
    pub inter: bool,
}

impl SpanRecord {
    pub fn is_open(&self) -> bool {
        self.end.is_nan()
    }

    pub fn duration(&self) -> f64 {
        if self.is_open() {
            0.0
        } else {
            self.end - self.start
        }
    }
}

/// Default span capacity installed by `Communicator::start_trace`: enough
/// for every workload in the test suite and the `burst-trace` harness
/// without growth. The sink *does* grow past it (a long training run loses
/// nothing), the zero-alloc guarantee applies below capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 15;

/// Per-rank span sink. One per rank thread — never shared, hence no locks.
#[derive(Debug, Clone)]
pub struct RankSink {
    rank: usize,
    spans: Vec<SpanRecord>,
    open: Vec<u32>,
}

impl RankSink {
    /// A sink pre-sized for `cap` spans (records beyond that still land,
    /// at the cost of one reallocation).
    pub fn with_capacity(rank: usize, cap: usize) -> Self {
        RankSink {
            rank,
            spans: Vec::with_capacity(cap),
            open: Vec::with_capacity(64),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans currently open (begin without end).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// `(buffer address, capacity)` of the span storage — lets tests assert
    /// the steady state reuses one allocation (pointer and capacity stable).
    pub fn buffer_fingerprint(&self) -> (usize, usize) {
        (self.spans.as_ptr() as usize, self.spans.capacity())
    }

    /// Open a structural span at virtual time `now`.
    pub fn begin(&mut self, kind: SpanKind, name: &'static str, now: f64) {
        let parent = self.open.last().map(|&i| i as i32).unwrap_or(-1);
        let idx = self.spans.len() as u32;
        self.spans.push(SpanRecord {
            kind,
            name,
            start: now,
            end: f64::NAN,
            parent,
            peer: u32::MAX,
            elems: 0,
            inter: false,
        });
        self.open.push(idx);
    }

    /// Close the innermost open span at virtual time `now`. A stray `end`
    /// with nothing open is ignored (debug builds assert).
    pub fn end(&mut self, now: f64) {
        debug_assert!(!self.open.is_empty(), "span end with no open span");
        if let Some(i) = self.open.pop() {
            self.spans[i as usize].end = now;
        }
    }

    /// Close open spans at `now` until at most `depth` remain. Lets error
    /// paths that skipped their `end` calls (a `?` out of a ring round)
    /// settle the stack at a known boundary instead of leaking open spans
    /// into the next attempt.
    pub fn unwind_to(&mut self, depth: usize, now: f64) {
        while self.open.len() > depth {
            self.end(now);
        }
    }

    /// Record a closed leaf span under the currently open span.
    #[allow(clippy::too_many_arguments)]
    pub fn leaf(
        &mut self,
        kind: SpanKind,
        name: &'static str,
        start: f64,
        end: f64,
        peer: u32,
        elems: u64,
        inter: bool,
    ) {
        let parent = self.open.last().map(|&i| i as i32).unwrap_or(-1);
        self.spans.push(SpanRecord {
            kind,
            name,
            start,
            end,
            parent,
            peer,
            elems,
            inter,
        });
    }

    /// Record an instantaneous event (zero-length leaf) at `now`.
    pub fn instant(&mut self, kind: SpanKind, name: &'static str, now: f64) {
        self.leaf(kind, name, now, now, u32::MAX, 0, false);
    }

    /// Close every span still open at `now` (a rank that crashed mid-round
    /// never reached its `end` calls) and return one warning per closure —
    /// the timeline stays renderable, and the caller can surface the
    /// warnings instead of panicking.
    pub fn close_unclosed(&mut self, now: f64) -> Vec<String> {
        let mut warnings = Vec::new();
        while let Some(i) = self.open.pop() {
            let s = &mut self.spans[i as usize];
            s.end = now;
            warnings.push(format!(
                "rank {}: span `{}` ({}) dropped unclosed; force-closed at t={:.3e}s",
                self.rank,
                s.name,
                s.kind.label(),
                now
            ));
        }
        warnings
    }

    /// Consume the sink into an immutable per-rank trace, force-closing any
    /// span left open at `now` (warnings retained on the trace).
    pub fn finish(mut self, now: f64) -> RankTrace {
        let warnings = self.close_unclosed(now);
        RankTrace {
            rank: self.rank,
            spans: self.spans,
            warnings,
            end_time: now,
        }
    }
}

/// A finished per-rank span timeline.
#[derive(Debug, Clone)]
pub struct RankTrace {
    pub rank: usize,
    pub spans: Vec<SpanRecord>,
    /// One entry per span that had to be force-closed (see
    /// [`RankSink::close_unclosed`]). Empty on a clean run.
    pub warnings: Vec<String>,
    /// The rank's final virtual clock when the trace was collected.
    pub end_time: f64,
}

impl RankTrace {
    /// Total seconds in spans of `kind`.
    pub fn total_secs(&self, kind: SpanKind) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(SpanRecord::duration)
            .sum()
    }

    /// Count of spans of `kind`.
    pub fn count(&self, kind: SpanKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }
}

const EPS: f64 = 1e-9;

/// Check the structural invariants of a finished trace:
///
/// * every span is closed and `start <= end`;
/// * parent indices are in range and point backwards;
/// * clock-lane children lie inside their parent's interval (wire-lane
///   `Send` spans are exempt — see the module docs);
/// * per-kind timelines are monotone: clock-lane leaves (`Kernel`, `Recv`,
///   `Wait`) start in non-decreasing order, and `Send` departures are
///   non-decreasing *per link class* (each egress port serialises);
/// * nothing ends after the rank's final clock.
pub fn validate(trace: &RankTrace) -> Result<(), String> {
    let fail = |i: usize, s: &SpanRecord, why: &str| {
        Err(format!(
            "rank {} span {i} `{}` ({}) [{:.6e}, {:.6e}]: {why}",
            trace.rank,
            s.name,
            s.kind.label(),
            s.start,
            s.end
        ))
    };
    let mut last_clock_leaf = f64::NEG_INFINITY;
    let mut last_depart = [f64::NEG_INFINITY; 2]; // [intra, inter]
    for (i, s) in trace.spans.iter().enumerate() {
        if s.is_open() {
            return fail(i, s, "span left open");
        }
        if s.start > s.end + EPS {
            return fail(i, s, "inverted interval");
        }
        if !s.kind.is_wire() && s.end > trace.end_time + EPS {
            return fail(i, s, "ends after the rank's final clock");
        }
        if s.parent >= 0 {
            let p = s.parent as usize;
            if p >= i {
                return fail(i, s, "parent index not backwards");
            }
            let parent = &trace.spans[p];
            if !s.kind.is_wire() {
                // Parent may itself still have been open when the child was
                // recorded, but after force-closing all ends are filled.
                if s.start < parent.start - EPS || s.end > parent.end + EPS {
                    return fail(i, s, "child escapes its parent's interval");
                }
            } else if s.start < parent.start - EPS {
                return fail(i, s, "send departs before its parent opened");
            }
        }
        match s.kind {
            SpanKind::Kernel | SpanKind::Recv | SpanKind::Wait => {
                if s.start < last_clock_leaf - EPS {
                    return fail(i, s, "clock-lane leaf starts before its predecessor");
                }
                last_clock_leaf = s.start;
            }
            SpanKind::Send | SpanKind::Retransmit => {
                let class = s.inter as usize;
                if s.start < last_depart[class] - EPS {
                    return fail(i, s, "send departs before the port's previous send");
                }
                last_depart[class] = s.start;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Total modeled wire seconds across Send spans, split `(intra, inter)` —
/// each send contributes `arrival - depart` (latency + serialization).
pub fn wire_secs(traces: &[RankTrace]) -> (f64, f64) {
    let (mut intra, mut inter) = (0.0, 0.0);
    for t in traces {
        for s in &t.spans {
            if s.kind == SpanKind::Send {
                if s.inter {
                    inter += s.duration();
                } else {
                    intra += s.duration();
                }
            }
        }
    }
    (intra, inter)
}

/// Wire seconds consumed by retransmitted physical attempts, split
/// `(intra, inter)` — the transport's recovery overhead on the fabric,
/// kept out of [`wire_secs`] so the clean comm census stays exact.
pub fn retrans_secs(traces: &[RankTrace]) -> (f64, f64) {
    let (mut intra, mut inter) = (0.0, 0.0);
    for t in traces {
        for s in &t.spans {
            if s.kind == SpanKind::Retransmit {
                if s.inter {
                    inter += s.duration();
                } else {
                    intra += s.duration();
                }
            }
        }
    }
    (intra, inter)
}

/// `(wait, compute)` seconds summed across all ranks' `Wait`/`Kernel`
/// spans — the inputs to [`crate::report::overlap_efficiency`].
pub fn wait_compute_secs(traces: &[RankTrace]) -> (f64, f64) {
    let mut wait = 0.0;
    let mut compute = 0.0;
    for t in traces {
        wait += t.total_secs(SpanKind::Wait);
        compute += t.total_secs(SpanKind::Kernel);
    }
    (wait, compute)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_parent_links_hold() {
        let mut sink = RankSink::with_capacity(0, 16);
        sink.begin(SpanKind::Step, "step", 0.0);
        sink.begin(SpanKind::Layer, "layer", 0.5);
        sink.leaf(SpanKind::Kernel, "kernel", 0.5, 1.0, u32::MAX, 0, false);
        sink.end(1.5); // layer
        sink.end(2.0); // step
        let trace = sink.finish(2.0);
        assert!(trace.warnings.is_empty());
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[0].parent, -1);
        assert_eq!(trace.spans[1].parent, 0);
        assert_eq!(trace.spans[2].parent, 1);
        validate(&trace).unwrap();
        assert_eq!(trace.total_secs(SpanKind::Kernel), 0.5);
        assert_eq!(trace.count(SpanKind::Layer), 1);
    }

    #[test]
    fn unclosed_spans_warn_and_stay_renderable() {
        let mut sink = RankSink::with_capacity(3, 16);
        sink.begin(SpanKind::Step, "step", 0.0);
        sink.begin(SpanKind::AttnRound, "round", 1.0);
        // Crash: no `end` calls.
        let trace = sink.finish(1.5);
        assert_eq!(trace.warnings.len(), 2);
        assert!(trace.warnings[0].contains("round"), "{:?}", trace.warnings);
        assert!(trace.warnings[1].contains("step"));
        validate(&trace).unwrap();
        assert_eq!(trace.spans[1].end, 1.5);
    }

    #[test]
    fn validate_rejects_escaping_child() {
        let trace = RankTrace {
            rank: 0,
            spans: vec![
                SpanRecord {
                    kind: SpanKind::Step,
                    name: "step",
                    start: 0.0,
                    end: 1.0,
                    parent: -1,
                    peer: u32::MAX,
                    elems: 0,
                    inter: false,
                },
                SpanRecord {
                    kind: SpanKind::Kernel,
                    name: "kernel",
                    start: 0.5,
                    end: 2.0,
                    parent: 0,
                    peer: u32::MAX,
                    elems: 0,
                    inter: false,
                },
            ],
            warnings: vec![],
            end_time: 2.0,
        };
        let err = validate(&trace).unwrap_err();
        assert!(err.contains("escapes"), "{err}");
    }

    #[test]
    fn sends_may_outlive_their_parent() {
        let mut sink = RankSink::with_capacity(1, 8);
        sink.begin(SpanKind::AttnRound, "round", 0.0);
        // Posted inside the round, lands well after it closed: legal.
        sink.leaf(SpanKind::Send, "send", 0.1, 5.0, 2, 64, true);
        sink.end(1.0);
        let trace = sink.finish(1.0);
        validate(&trace).unwrap();
        let (intra, inter) = wire_secs(std::slice::from_ref(&trace));
        assert_eq!(intra, 0.0);
        assert!((inter - 4.9).abs() < 1e-12);
    }

    #[test]
    fn recording_below_capacity_never_reallocates() {
        let mut sink = RankSink::with_capacity(0, 1024);
        let fp0 = sink.buffer_fingerprint();
        for i in 0..300 {
            let t = i as f64;
            sink.begin(SpanKind::AttnRound, "round", t);
            sink.leaf(SpanKind::Kernel, "kernel", t, t + 0.4, u32::MAX, 0, false);
            sink.leaf(SpanKind::Send, "send", t, t + 0.2, 1, 8, false);
            sink.end(t + 0.5);
            assert_eq!(sink.buffer_fingerprint(), fp0, "realloc at round {i}");
        }
        assert_eq!(sink.len(), 900);
    }

    #[test]
    fn instants_are_zero_length_and_valid() {
        let mut sink = RankSink::with_capacity(0, 8);
        sink.instant(SpanKind::Epoch, "epoch_bump", 3.0);
        let trace = sink.finish(3.0);
        validate(&trace).unwrap();
        assert_eq!(trace.spans[0].duration(), 0.0);
    }
}
