//! The machine-readable end-to-end report (`BENCH_e2e.json`).
//!
//! One [`MethodReport`] per attention method compares three views of the
//! same run: the *measured* wire time summed from `Send` spans, the
//! *exact-count* analytic prediction, and the paper's Table 1 closed form
//! from `crates/perf` — so the simulator and the analytic model cross-check
//! each other in CI. Overlap efficiency and modeled MFU summarise where
//! the virtual time went.

use crate::mem::{peak_census, MemCategory, MemReport, PeakBytes};
use crate::span::{wait_compute_secs, wire_secs, RankTrace};
use serde::{Deserialize, Serialize};

/// `1 − wait/(wait+compute)`: the fraction of busy time not spent blocked
/// on the network. Defined as `1.0` for the degenerate cluster with no
/// busy time at all (1 rank, 0 compute) — there is nothing to overlap.
pub fn overlap_efficiency(wait_secs: f64, compute_secs: f64) -> f64 {
    let busy = wait_secs + compute_secs;
    if busy <= 0.0 {
        1.0
    } else {
        1.0 - wait_secs / busy
    }
}

/// Model FLOPs utilisation: useful FLOPs divided by what `world` devices
/// of `peak_flops` each could have done in `makespan_secs`. Zero for a
/// degenerate (zero-time or zero-device) run.
pub fn mfu(useful_flops: f64, makespan_secs: f64, world: usize, peak_flops: f64) -> f64 {
    let budget = makespan_secs * peak_flops * world as f64;
    if budget <= 0.0 {
        0.0
    } else {
        useful_flops / budget
    }
}

/// Useful FLOPs of one causal attention layer pass (forward + backward):
/// 4 matmul-FLOPs per allowed (query, key) pair forward and 10 backward,
/// with `n (n + 1) / 2` causally allowed pairs, each of width `d`.
pub fn causal_attn_flops(seq_len: usize, head_dim: usize) -> f64 {
    let n = seq_len as f64;
    let pairs = n * (n + 1.0) / 2.0;
    14.0 * head_dim as f64 * pairs
}

/// Everything we know about one method's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodReport {
    /// Method name: `"ring"`, `"double_ring"`, `"burst"`, `"burst_topo"`.
    pub method: String,
    pub world: usize,
    /// Max final clock across ranks.
    pub makespan_secs: f64,
    /// Kernel seconds summed over ranks.
    pub compute_secs: f64,
    /// Wait seconds summed over ranks.
    pub wait_secs: f64,
    pub overlap_efficiency: f64,
    pub mfu: f64,
    pub tokens_per_gpu_per_sec: f64,
    /// Wire seconds measured from `Send` spans (latency + serialization).
    pub comm_measured_secs: f64,
    pub comm_measured_intra_secs: f64,
    pub comm_measured_inter_secs: f64,
    /// Exact-count analytic prediction from `crates/perf`.
    pub comm_predicted_secs: f64,
    /// The paper's Table 1 closed form (coarse; reported for reference).
    pub comm_table1_secs: f64,
    /// `|measured − predicted| / predicted` (0 when predicted is 0).
    pub comm_rel_err: f64,
    /// Max-over-ranks measured peak bytes per accountant category (all
    /// zeros when the run was not memory-accounted).
    pub peak: PeakBytes,
    /// Fully-masked rank-rounds elided by mask-aware skipping, summed over
    /// ranks (zero on a dense run or with skipping off).
    #[serde(default)]
    pub rounds_skipped: u64,
    /// Wire bytes those skipped rounds would have moved — the dual that
    /// reconstructs the dense census: measured bytes + saved bytes equals
    /// the dense wire census exactly.
    #[serde(default)]
    pub wire_bytes_saved: f64,
}

impl MethodReport {
    /// Assemble a report from the per-rank traces of one run plus the two
    /// analytic comm-time predictions.
    #[allow(clippy::too_many_arguments)]
    pub fn from_traces(
        method: &str,
        traces: &[RankTrace],
        seq_len: usize,
        head_dim: usize,
        peak_flops: f64,
        comm_predicted_secs: f64,
        comm_table1_secs: f64,
    ) -> MethodReport {
        let world = traces.len();
        let makespan = traces.iter().map(|t| t.end_time).fold(0.0, f64::max);
        let (wait, compute) = wait_compute_secs(traces);
        let (intra, inter) = wire_secs(traces);
        let measured = intra + inter;
        let rel_err = if comm_predicted_secs > 0.0 {
            (measured - comm_predicted_secs).abs() / comm_predicted_secs
        } else {
            0.0
        };
        let denom = makespan * world as f64;
        MethodReport {
            method: method.to_string(),
            world,
            makespan_secs: makespan,
            compute_secs: compute,
            wait_secs: wait,
            overlap_efficiency: overlap_efficiency(wait, compute),
            mfu: mfu(
                causal_attn_flops(seq_len, head_dim),
                makespan,
                world,
                peak_flops,
            ),
            tokens_per_gpu_per_sec: if denom > 0.0 {
                seq_len as f64 / denom
            } else {
                0.0
            },
            comm_measured_secs: measured,
            comm_measured_intra_secs: intra,
            comm_measured_inter_secs: inter,
            comm_predicted_secs,
            comm_table1_secs,
            comm_rel_err: rel_err,
            peak: PeakBytes::default(),
            rounds_skipped: 0,
            wire_bytes_saved: 0.0,
        }
    }

    /// Attach the mask-aware skip summary of the same run (summed over
    /// ranks).
    pub fn with_skips(mut self, rounds_skipped: u64, wire_bytes_saved: f64) -> MethodReport {
        self.rounds_skipped = rounds_skipped;
        self.wire_bytes_saved = wire_bytes_saved;
        self
    }

    /// Attach the per-rank memory census of the same run (max over ranks,
    /// per category).
    pub fn with_mem(mut self, reports: &[MemReport]) -> MethodReport {
        self.peak = peak_census(reports);
        self
    }
}

/// The `BENCH_e2e.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2eReport {
    /// Schema tag, currently `"burst-e2e/v3"` (v2 added the per-category
    /// peak-memory census to every method row; v3 added the mask-aware
    /// `rounds_skipped`/`wire_bytes_saved` summary and masked method
    /// rows); CI checks it.
    pub schema: String,
    pub nodes: usize,
    pub gpus_per_node: usize,
    pub seq_len: usize,
    pub head_dim: usize,
    pub methods: Vec<MethodReport>,
}

impl E2eReport {
    pub const SCHEMA: &'static str = "burst-e2e/v3";

    pub fn new(nodes: usize, gpus_per_node: usize, seq_len: usize, head_dim: usize) -> Self {
        E2eReport {
            schema: Self::SCHEMA.to_string(),
            nodes,
            gpus_per_node,
            seq_len,
            head_dim,
            methods: Vec::new(),
        }
    }

    /// Structural checks CI runs on the emitted JSON: schema tag, all
    /// methods populated with positive makespan, finite efficiency/MFU.
    pub fn validate_schema(&self) -> Result<(), String> {
        if self.schema != Self::SCHEMA {
            return Err(format!(
                "schema is `{}`, want `{}`",
                self.schema,
                Self::SCHEMA
            ));
        }
        if self.methods.is_empty() {
            return Err("no methods in report".to_string());
        }
        for m in &self.methods {
            if m.makespan_secs <= 0.0 {
                return Err(format!("method `{}` has non-positive makespan", m.method));
            }
            if !(0.0..=1.0).contains(&m.overlap_efficiency) {
                return Err(format!(
                    "method `{}` overlap efficiency {} outside [0, 1]",
                    m.method, m.overlap_efficiency
                ));
            }
            if !m.mfu.is_finite() || m.mfu < 0.0 {
                return Err(format!(
                    "method `{}` MFU {} not finite/non-negative",
                    m.method, m.mfu
                ));
            }
        }
        Ok(())
    }
}

/// A throughput regression fails the gate when measured tokens/GPU/s falls
/// more than this fraction below the committed baseline.
pub const MAX_TGS_DROP: f64 = 0.10;

/// A memory regression fails the gate when a gated peak-bytes lane (or the
/// gated total) rises more than this fraction above the committed baseline.
pub const MAX_PEAK_RISE: f64 = 0.01;

/// The perf-trajectory regression gate: compare a freshly measured report
/// against the committed baseline. Virtual time makes both deterministic,
/// so the bands police *code* changes, not machine noise: a >10 %
/// throughput drop or a >1 % gated peak-memory rise on any method is a
/// violation. Methods present only in `current` are new work and pass;
/// methods missing from `current` are lost coverage and fail. Returns every
/// violation (empty = gate green).
pub fn compare_to_baseline(current: &E2eReport, baseline: &E2eReport) -> Vec<String> {
    let mut violations = Vec::new();
    if current.schema != baseline.schema {
        violations.push(format!(
            "schema drifted: `{}` vs baseline `{}` — regenerate the baseline",
            current.schema, baseline.schema
        ));
        return violations;
    }
    for base in &baseline.methods {
        let Some(cur) = current.methods.iter().find(|m| m.method == base.method) else {
            violations.push(format!(
                "method `{}` disappeared from the report",
                base.method
            ));
            continue;
        };
        if base.tokens_per_gpu_per_sec > 0.0 {
            let floor = base.tokens_per_gpu_per_sec * (1.0 - MAX_TGS_DROP);
            if cur.tokens_per_gpu_per_sec < floor {
                violations.push(format!(
                    "method `{}`: throughput {:.6e} tok/GPU/s is more than {:.0}% below \
                     baseline {:.6e}",
                    cur.method,
                    cur.tokens_per_gpu_per_sec,
                    MAX_TGS_DROP * 100.0,
                    base.tokens_per_gpu_per_sec,
                ));
            }
        }
        let mut lanes: Vec<(&str, u64, u64)> = MemCategory::ALL
            .iter()
            .filter(|c| c.is_gated())
            .map(|&c| (c.label(), cur.peak.get(c), base.peak.get(c)))
            .collect();
        lanes.push(("gated_total", cur.peak.gated_total, base.peak.gated_total));
        for (lane, got, want) in lanes {
            if want > 0 && got as f64 > want as f64 * (1.0 + MAX_PEAK_RISE) {
                violations.push(format!(
                    "method `{}`: peak {lane} {got} B is more than {:.0}% above baseline \
                     {want} B",
                    cur.method,
                    MAX_PEAK_RISE * 100.0,
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{RankSink, SpanKind};

    #[test]
    fn overlap_efficiency_edges() {
        assert_eq!(overlap_efficiency(0.0, 0.0), 1.0); // degenerate: nothing to hide
        assert_eq!(overlap_efficiency(0.0, 2.0), 1.0); // perfectly overlapped
        assert_eq!(overlap_efficiency(1.0, 1.0), 0.5);
        assert_eq!(overlap_efficiency(3.0, 0.0), 0.0); // pure blocking
    }

    #[test]
    fn mfu_edges() {
        assert_eq!(mfu(100.0, 0.0, 8, 1e12), 0.0);
        let v = mfu(1e12, 1.0, 1, 1e12);
        assert!((v - 1.0).abs() < 1e-12);
    }

    fn busy_trace(rank: usize, compute: f64, wait: f64) -> RankTrace {
        let mut sink = RankSink::with_capacity(rank, 8);
        sink.leaf(SpanKind::Kernel, "k", 0.0, compute, u32::MAX, 0, false);
        sink.leaf(
            SpanKind::Wait,
            "w",
            compute,
            compute + wait,
            u32::MAX,
            0,
            false,
        );
        sink.leaf(SpanKind::Send, "s", 0.0, 0.25, 1, 128, true);
        sink.finish(compute + wait)
    }

    #[test]
    fn method_report_from_traces() {
        let traces = vec![busy_trace(0, 0.6, 0.2), busy_trace(1, 0.7, 0.1)];
        let r = MethodReport::from_traces("ring", &traces, 1024, 64, 312e12, 0.5, 0.6);
        assert_eq!(r.world, 2);
        assert!((r.makespan_secs - 0.8).abs() < 1e-12);
        assert!((r.compute_secs - 1.3).abs() < 1e-12);
        assert!((r.wait_secs - 0.3).abs() < 1e-12);
        assert!((r.overlap_efficiency - (1.0 - 0.3 / 1.6)).abs() < 1e-12);
        assert!((r.comm_measured_secs - 0.5).abs() < 1e-12);
        assert!(r.comm_rel_err < 1e-9, "measured matches prediction exactly");
        assert!(r.mfu > 0.0 && r.mfu < 1.0);
        assert!(r.tokens_per_gpu_per_sec > 0.0);
    }

    #[test]
    fn e2e_report_schema_and_serde() {
        let mut report = E2eReport::new(2, 4, 2048, 64);
        assert!(report.validate_schema().is_err(), "empty methods rejected");
        let traces = vec![busy_trace(0, 0.6, 0.2)];
        report.methods.push(MethodReport::from_traces(
            "burst", &traces, 2048, 64, 312e12, 0.5, 0.5,
        ));
        report.validate_schema().unwrap();
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: E2eReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        assert!(text.contains("burst-e2e/v3"));
    }

    #[test]
    fn skip_summary_rides_the_report_and_defaults_on_old_json() {
        let traces = vec![busy_trace(0, 0.6, 0.2)];
        let m = MethodReport::from_traces("burst_masked", &traces, 1024, 64, 312e12, 0.5, 0.5)
            .with_skips(12, 4096.0);
        assert_eq!(m.rounds_skipped, 12);
        assert_eq!(m.wire_bytes_saved, 4096.0);
        let text = serde_json::to_string(&m).unwrap();
        assert!(text.contains("rounds_skipped"));
        // A method row written before the skip summary existed still
        // parses, with the summary defaulting to a dense (zero-skip) run.
        // The two fields are declared last, so cutting at the first one
        // (and re-closing the object) yields the old-schema document.
        let cut = text.find(",\"rounds_skipped\"").unwrap();
        let stripped = format!("{}}}", &text[..cut]);
        let back: MethodReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.rounds_skipped, 0);
        assert_eq!(back.wire_bytes_saved, 0.0);
    }

    fn gated_report(tgs: f64, peak_total: u64) -> E2eReport {
        let mut report = E2eReport::new(1, 2, 1024, 64);
        let traces = vec![busy_trace(0, 0.6, 0.2)];
        let mut m = MethodReport::from_traces("burst", &traces, 1024, 64, 312e12, 0.5, 0.5);
        m.tokens_per_gpu_per_sec = tgs;
        m.peak.ring_shards = peak_total;
        m.peak.gated_total = peak_total;
        report.methods.push(m);
        report
    }

    #[test]
    fn baseline_gate_passes_inside_the_bands() {
        let base = gated_report(1000.0, 1_000_000);
        // 5% slower and 0.5% more memory: both inside tolerance.
        let cur = gated_report(950.0, 1_005_000);
        assert!(compare_to_baseline(&cur, &base).is_empty());
        // A new method in `current` is new work, not a regression.
        let mut grown = cur.clone();
        let mut extra = grown.methods[0].clone();
        extra.method = "ring".into();
        grown.methods.push(extra);
        assert!(compare_to_baseline(&grown, &base).is_empty());
    }

    #[test]
    fn baseline_gate_fails_on_throughput_drop() {
        let base = gated_report(1000.0, 1_000_000);
        let cur = gated_report(850.0, 1_000_000);
        let v = compare_to_baseline(&cur, &base);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("throughput"), "{v:?}");
    }

    #[test]
    fn baseline_gate_fails_on_peak_memory_rise_and_lost_methods() {
        let base = gated_report(1000.0, 1_000_000);
        let cur = gated_report(1000.0, 1_020_000);
        let v = compare_to_baseline(&cur, &base);
        // Both the ring_shards lane and the gated total breached 1%.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|s| s.contains("above baseline")), "{v:?}");
        let empty = E2eReport::new(1, 2, 1024, 64);
        let v = compare_to_baseline(&empty, &base);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("disappeared"), "{v:?}");
    }
}
