//! Per-rank **virtual-memory accountant**: a deterministic allocation
//! ledger on the same virtual clock the span layer observes.
//!
//! The simulator executes real numerics but its Rust heap is not the
//! quantity the paper reports — peak bytes *per GPU* is. The accountant
//! therefore models the steady-state semantic footprint of each layer:
//! every long-lived buffer a schedule holds (accumulators, circulating
//! ring bundles, checkpoint stashes, parameter/optimizer state) registers
//! one [`MemEntry`] — category × bytes × virtual-time interval — whose
//! size comes from the live matrix dimensions at the hook site. Transient,
//! clock-driven occupancy (bytes in flight on the wire, the reliable
//! transport's retransmit queue) is charged on *lanes only*: a current /
//! peak counter plus a pending-release min-heap, with **zero ledger
//! entries**, so a steady-state ring round appends nothing to the ledger
//! (the reuse contract the zero-alloc tests pin).
//!
//! Like the span sink, the ledger is strictly an observer: recording never
//! touches the virtual clock, so enabling accounting is bit-identical to
//! running without it.
//!
//! Categories split into two classes:
//!
//! * **gated** — deterministic functions of (schedule, dims, dtype): the
//!   measured per-category peak must equal `burst-perf`'s
//!   `exact_peak_bytes` census *exactly*;
//! * **ungated** — time-dependent (in-flight wire bytes, retransmit queue)
//!   or host-dependent (kernel workspace after autotuning): measured and
//!   exported, but excluded from the exact gate.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of [`MemCategory`] variants (array-lane indexing).
pub const MEM_CATEGORIES: usize = 10;

/// What an allocation *is*, in the paper's memory-decomposition terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemCategory {
    /// Model parameters (possibly FSDP-sharded).
    Params,
    /// Parameter gradients.
    Grads,
    /// Optimizer state (Adam moments, master weights).
    OptimState,
    /// Forward activations and gradient accumulators of a schedule.
    Activations,
    /// Activation-checkpoint stashes (f32 or bf16 storage).
    CkptStash,
    /// The rank's resident K/V/Q/O sequence shards.
    RingShards,
    /// Communication staging: circulating ring bundles, all-to-all
    /// send/recv staging, FSDP gather buffers.
    CommBuffers,
    /// Bytes in flight on this rank's egress ports (lane-only, ungated).
    InFlight,
    /// The reliable transport's retransmit queue (lane-only, ungated).
    RetransQueue,
    /// Kernel scratch workspace — autotuned tile sizes are host-dependent,
    /// so this lane is measured but ungated.
    Workspace,
}

impl MemCategory {
    pub const ALL: [MemCategory; MEM_CATEGORIES] = [
        MemCategory::Params,
        MemCategory::Grads,
        MemCategory::OptimState,
        MemCategory::Activations,
        MemCategory::CkptStash,
        MemCategory::RingShards,
        MemCategory::CommBuffers,
        MemCategory::InFlight,
        MemCategory::RetransQueue,
        MemCategory::Workspace,
    ];

    /// Stable lane index (array slot in the ledger and in [`PeakBytes`]).
    pub fn lane(self) -> usize {
        match self {
            MemCategory::Params => 0,
            MemCategory::Grads => 1,
            MemCategory::OptimState => 2,
            MemCategory::Activations => 3,
            MemCategory::CkptStash => 4,
            MemCategory::RingShards => 5,
            MemCategory::CommBuffers => 6,
            MemCategory::InFlight => 7,
            MemCategory::RetransQueue => 8,
            MemCategory::Workspace => 9,
        }
    }

    /// Short lowercase label, used in exports and counter-track names.
    pub fn label(self) -> &'static str {
        match self {
            MemCategory::Params => "params",
            MemCategory::Grads => "grads",
            MemCategory::OptimState => "optim_state",
            MemCategory::Activations => "activations",
            MemCategory::CkptStash => "ckpt_stash",
            MemCategory::RingShards => "ring_shards",
            MemCategory::CommBuffers => "comm_buffers",
            MemCategory::InFlight => "in_flight",
            MemCategory::RetransQueue => "retrans_queue",
            MemCategory::Workspace => "workspace",
        }
    }

    /// Whether this category participates in the exact measured-vs-analytic
    /// peak-bytes gate.
    pub fn is_gated(self) -> bool {
        !matches!(
            self,
            MemCategory::InFlight | MemCategory::RetransQueue | MemCategory::Workspace
        )
    }
}

/// Handle to an open ledger entry (index into the entry vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemId(pub u32);

/// One named allocation interval on the virtual clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemEntry {
    pub name: String,
    pub cat: MemCategory,
    pub bytes: u64,
    /// Virtual time the buffer became live.
    pub open: f64,
    /// Virtual time it was freed; `None` while live (force-closed with a
    /// warning by [`MemLedger::finish`]).
    pub close: Option<f64>,
}

/// Per-category peak bytes — the census row both the measured ledger and
/// `burst-perf`'s analytic `exact_peak_bytes` produce, so equality is a
/// plain `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PeakBytes {
    pub params: u64,
    pub grads: u64,
    pub optim_state: u64,
    pub activations: u64,
    pub ckpt_stash: u64,
    pub ring_shards: u64,
    pub comm_buffers: u64,
    pub in_flight: u64,
    pub retrans_queue: u64,
    pub workspace: u64,
    /// Peak of the *sum* over gated categories (the per-GPU headline
    /// number). Tracked live, not a sum of per-category peaks — category
    /// peaks need not coincide in time.
    pub gated_total: u64,
}

impl PeakBytes {
    pub fn get(&self, cat: MemCategory) -> u64 {
        match cat {
            MemCategory::Params => self.params,
            MemCategory::Grads => self.grads,
            MemCategory::OptimState => self.optim_state,
            MemCategory::Activations => self.activations,
            MemCategory::CkptStash => self.ckpt_stash,
            MemCategory::RingShards => self.ring_shards,
            MemCategory::CommBuffers => self.comm_buffers,
            MemCategory::InFlight => self.in_flight,
            MemCategory::RetransQueue => self.retrans_queue,
            MemCategory::Workspace => self.workspace,
        }
    }

    pub fn set(&mut self, cat: MemCategory, v: u64) {
        match cat {
            MemCategory::Params => self.params = v,
            MemCategory::Grads => self.grads = v,
            MemCategory::OptimState => self.optim_state = v,
            MemCategory::Activations => self.activations = v,
            MemCategory::CkptStash => self.ckpt_stash = v,
            MemCategory::RingShards => self.ring_shards = v,
            MemCategory::CommBuffers => self.comm_buffers = v,
            MemCategory::InFlight => self.in_flight = v,
            MemCategory::RetransQueue => self.retrans_queue = v,
            MemCategory::Workspace => self.workspace = v,
        }
    }

    /// The gated sub-census (ungated lanes zeroed) — what the exact gate
    /// compares.
    pub fn gated(&self) -> PeakBytes {
        PeakBytes {
            in_flight: 0,
            retrans_queue: 0,
            workspace: 0,
            ..*self
        }
    }

    /// Element-wise max across ranks (each field merges like a gauge).
    pub fn merge_max(&mut self, other: &PeakBytes) {
        for cat in MemCategory::ALL {
            self.set(cat, self.get(cat).max(other.get(cat)));
        }
        self.gated_total = self.gated_total.max(other.gated_total);
    }
}

/// The per-rank ledger. One per rank thread, owned by the communicator —
/// no locks, no sharing, never touches the clock.
#[derive(Debug)]
pub struct MemLedger {
    rank: usize,
    entries: Vec<MemEntry>,
    cur: [u64; MEM_CATEGORIES],
    peak: [u64; MEM_CATEGORIES],
    /// Live sum over gated categories and its peak.
    cur_gated: u64,
    peak_gated: u64,
    /// Scheduled lane releases: `(virtual release time as sortable bits,
    /// lane, bytes)`. Drained whenever the ledger observes a later time.
    pending: BinaryHeap<Reverse<(u64, usize, u64)>>,
    allocated: u64,
    freed: u64,
}

/// Nonnegative f64 → order-preserving u64 key (virtual clocks start at 0).
fn time_key(t: f64) -> u64 {
    debug_assert!(t >= 0.0 && t.is_finite(), "virtual time {t} not sortable");
    t.to_bits()
}

impl MemLedger {
    pub fn new(rank: usize) -> Self {
        MemLedger {
            rank,
            entries: Vec::with_capacity(64),
            cur: [0; MEM_CATEGORIES],
            peak: [0; MEM_CATEGORIES],
            cur_gated: 0,
            peak_gated: 0,
            pending: BinaryHeap::with_capacity(16),
            allocated: 0,
            freed: 0,
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Release every pending lane charge whose release time is ≤ `now`.
    /// Releases are applied before any same-instant charge, so the peak of
    /// a lane is the exact peak of its step function.
    fn drain(&mut self, now: f64) {
        let key = time_key(now);
        while let Some(Reverse((t, lane, bytes))) = self.pending.peek().copied() {
            if t > key {
                break;
            }
            self.pending.pop();
            self.cur[lane] -= bytes;
        }
    }

    fn raise(&mut self, lane: usize, bytes: u64, gated: bool) {
        self.cur[lane] += bytes;
        if self.cur[lane] > self.peak[lane] {
            self.peak[lane] = self.cur[lane];
        }
        if gated {
            self.cur_gated += bytes;
            if self.cur_gated > self.peak_gated {
                self.peak_gated = self.cur_gated;
            }
        }
    }

    /// Register a named buffer of `bytes` becoming live at `now`.
    pub fn alloc(&mut self, name: &str, cat: MemCategory, bytes: u64, now: f64) -> MemId {
        self.drain(now);
        let id = MemId(self.entries.len() as u32);
        self.entries.push(MemEntry {
            name: name.to_string(),
            cat,
            bytes,
            open: now,
            close: None,
        });
        self.allocated += bytes;
        self.raise(cat.lane(), bytes, cat.is_gated());
        id
    }

    /// Close entry `id` at `now`. Double frees panic (accounting bugs must
    /// not silently unbalance the ledger).
    pub fn free(&mut self, id: MemId, now: f64) {
        self.drain(now);
        let e = &mut self.entries[id.0 as usize];
        assert!(
            e.close.is_none(),
            "rank {}: mem entry `{}` freed twice",
            self.rank,
            e.name
        );
        e.close = Some(now);
        let (lane, bytes, gated) = (e.cat.lane(), e.bytes, e.cat.is_gated());
        self.freed += bytes;
        self.cur[lane] -= bytes;
        if gated {
            self.cur_gated -= bytes;
        }
    }

    /// Lane-only charge of `bytes` on `[now, release)`: no ledger entry, so
    /// steady-state traffic leaves the entry vector untouched. Used for the
    /// in-flight and retransmit-queue lanes.
    pub fn charge_until(&mut self, cat: MemCategory, bytes: u64, now: f64, release: f64) {
        self.drain(now);
        self.raise(cat.lane(), bytes, cat.is_gated());
        self.pending
            .push(Reverse((time_key(release.max(now)), cat.lane(), bytes)));
    }

    /// Raise a lane's peak to at least `bytes` without touching its current
    /// level — for workspaces whose high-water mark is read off at the end
    /// of a pass.
    pub fn note_peak(&mut self, cat: MemCategory, bytes: u64) {
        let lane = cat.lane();
        if bytes > self.peak[lane] {
            self.peak[lane] = bytes;
        }
    }

    /// Number of ledger entries recorded so far (the zero-churn contract:
    /// constant across steady-state rounds).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// `(len, capacity)` of the entry vector — compare before/after a
    /// steady-state phase to prove the ledger allocated nothing.
    pub fn fingerprint(&self) -> (usize, usize) {
        (self.entries.len(), self.entries.capacity())
    }

    /// Current live bytes on a lane.
    pub fn cur(&self, cat: MemCategory) -> u64 {
        self.cur[cat.lane()]
    }

    /// Peak bytes seen on a lane so far.
    pub fn peak(&self, cat: MemCategory) -> u64 {
        self.peak[cat.lane()]
    }

    /// Close the ledger at `now`: any entry still open is force-closed with
    /// a warning (mirroring the span sink's crash semantics), any pending
    /// lane charge still scheduled counts as live at close. The returned
    /// report always balances: `allocated == freed + live_at_close`.
    pub fn finish(mut self, now: f64) -> MemReport {
        self.drain(now);
        let mut warnings = Vec::new();
        let mut live = 0u64;
        for e in &mut self.entries {
            if e.close.is_none() {
                warnings.push(format!(
                    "rank {}: mem entry `{}` ({}) dropped open; force-closed at t={:.3e}s",
                    self.rank,
                    e.name,
                    e.cat.label(),
                    now
                ));
                e.close = Some(now);
                live += e.bytes;
            }
        }
        let mut peak = PeakBytes::default();
        for cat in MemCategory::ALL {
            peak.set(cat, self.peak[cat.lane()]);
        }
        peak.gated_total = self.peak_gated;
        MemReport {
            rank: self.rank,
            end_time: now,
            entries: self.entries,
            peak,
            allocated_bytes: self.allocated,
            freed_bytes: self.freed,
            live_at_close: live,
            warnings,
        }
    }
}

/// The finished, serializable ledger of one rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemReport {
    pub rank: usize,
    pub end_time: f64,
    pub entries: Vec<MemEntry>,
    pub peak: PeakBytes,
    pub allocated_bytes: u64,
    pub freed_bytes: u64,
    /// Bytes force-closed at [`MemLedger::finish`] — nonzero exactly when
    /// the rank died (or leaked) with buffers live.
    pub live_at_close: u64,
    pub warnings: Vec<String>,
}

impl MemReport {
    /// The ledger balance identity, which must hold even for a crashed
    /// rank: every allocated byte was either freed or live at close.
    pub fn balances(&self) -> bool {
        self.allocated_bytes == self.freed_bytes + self.live_at_close
    }
}

/// Structural validation of a finished ledger: the balance identity, entry
/// intervals that sit inside `[0, end_time]`, and per-category peaks that
/// dominate both every single entry and the entry-replay peak.
pub fn validate_mem(r: &MemReport) -> Result<(), String> {
    if !r.balances() {
        return Err(format!(
            "rank {}: ledger does not balance: allocated {} != freed {} + live {}",
            r.rank, r.allocated_bytes, r.freed_bytes, r.live_at_close
        ));
    }
    let entry_sum: u64 = r.entries.iter().map(|e| e.bytes).sum();
    if entry_sum != r.allocated_bytes {
        return Err(format!(
            "rank {}: entry bytes sum {} != allocated {}",
            r.rank, entry_sum, r.allocated_bytes
        ));
    }
    for e in &r.entries {
        let close = e
            .close
            .ok_or_else(|| format!("rank {}: entry `{}` still open in report", r.rank, e.name))?;
        if !(e.open >= 0.0 && close >= e.open && close <= r.end_time) {
            return Err(format!(
                "rank {}: entry `{}` interval [{}, {close}] escapes [0, {}]",
                r.rank, e.name, e.open, r.end_time
            ));
        }
        if r.peak.get(e.cat) < e.bytes {
            return Err(format!(
                "rank {}: category {} peak {} below entry `{}` of {} bytes",
                r.rank,
                e.cat.label(),
                r.peak.get(e.cat),
                e.name,
                e.bytes
            ));
        }
    }
    // Replay the entry intervals (closes applied before same-instant
    // opens): the sweep peak is a lower bound on the recorded lane peak —
    // equal when no lane-only charges hit the category.
    for cat in MemCategory::ALL {
        let replay = replay_peak(&r.entries, cat);
        if replay > r.peak.get(cat) {
            return Err(format!(
                "rank {}: category {} replay peak {} exceeds recorded {}",
                r.rank,
                cat.label(),
                replay,
                r.peak.get(cat)
            ));
        }
    }
    Ok(())
}

/// Sweep-line peak of one category's entry intervals (release-before-
/// charge at equal timestamps, matching the live ledger's drain order).
pub fn replay_peak(entries: &[MemEntry], cat: MemCategory) -> u64 {
    // (time, is_open, bytes); closes sort before opens at the same time.
    let mut events: Vec<(u64, bool, u64)> = Vec::new();
    for e in entries.iter().filter(|e| e.cat == cat) {
        events.push((time_key(e.open), true, e.bytes));
        if let Some(c) = e.close {
            events.push((time_key(c), false, e.bytes));
        }
    }
    events.sort_by_key(|&(t, open, _)| (t, open));
    let (mut cur, mut peak) = (0u64, 0u64);
    for (_, open, bytes) in events {
        if open {
            cur += bytes;
            peak = peak.max(cur);
        } else {
            cur -= bytes;
        }
    }
    peak
}

/// Per-category **Perfetto counter events** (`ph:"C"`) for one rank's
/// ledger: one counter sample per change point, on the dedicated memory
/// lane. Loadable next to the span timeline in `ui.perfetto.dev`, where
/// each `mem/<category>` track renders as a byte step-function.
pub fn mem_counter_events(report: &MemReport, pid: u64) -> Vec<crate::perfetto::PerfettoEvent> {
    use crate::perfetto::{PerfettoArgs, PerfettoEvent};
    const US: f64 = 1e6;
    /// Perfetto tid for memory counter tracks (span lanes use 0–4).
    const MEM_LANE: u64 = 5;
    let mut out = Vec::new();
    for cat in MemCategory::ALL {
        // (time, close-first, delta) change points from the entry ledger.
        let mut events: Vec<(u64, bool, i64)> = Vec::new();
        for e in report.entries.iter().filter(|e| e.cat == cat) {
            events.push((time_key(e.open), true, e.bytes as i64));
            if let Some(c) = e.close {
                events.push((time_key(c), false, -(e.bytes as i64)));
            }
        }
        if events.is_empty() {
            continue;
        }
        events.sort_by_key(|&(t, open, _)| (t, open));
        let mut cur = 0i64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                cur += events[i].2;
                i += 1;
            }
            out.push(PerfettoEvent {
                name: format!("mem/{}", cat.label()),
                cat: "mem".to_string(),
                ph: "C".to_string(),
                ts: f64::from_bits(t) * US,
                dur: 0.0,
                pid,
                tid: MEM_LANE,
                args: PerfettoArgs {
                    detail: format!("{} bytes", cur),
                    value: cur as f64,
                },
            });
        }
    }
    out
}

/// Element-wise max of per-rank peak censuses — the cluster-wide peak-GB
/// row a benchmark reports.
pub fn peak_census(reports: &[MemReport]) -> PeakBytes {
    let mut acc = PeakBytes::default();
    for r in reports {
        acc.merge_max(&r.peak);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_tracks_cur_and_peak() {
        let mut l = MemLedger::new(0);
        let a = l.alloc("acc_o", MemCategory::Activations, 1000, 0.0);
        let b = l.alloc("acc_lse", MemCategory::Activations, 24, 0.1);
        assert_eq!(l.cur(MemCategory::Activations), 1024);
        l.free(a, 0.5);
        assert_eq!(l.cur(MemCategory::Activations), 24);
        l.free(b, 0.6);
        let r = l.finish(1.0);
        assert_eq!(r.peak.activations, 1024);
        assert_eq!(r.peak.gated_total, 1024);
        assert!(r.balances());
        assert_eq!(r.live_at_close, 0);
        assert!(r.warnings.is_empty());
        validate_mem(&r).unwrap();
    }

    #[test]
    fn gated_total_is_a_timeline_peak_not_a_sum_of_peaks() {
        let mut l = MemLedger::new(0);
        let a = l.alloc("x", MemCategory::Activations, 100, 0.0);
        l.free(a, 1.0);
        let b = l.alloc("y", MemCategory::RingShards, 70, 2.0);
        l.free(b, 3.0);
        let r = l.finish(4.0);
        assert_eq!(r.peak.activations, 100);
        assert_eq!(r.peak.ring_shards, 70);
        // The two never overlap, so the headline peak is 100, not 170.
        assert_eq!(r.peak.gated_total, 100);
    }

    #[test]
    fn lane_charges_release_on_schedule_and_leave_no_entries() {
        let mut l = MemLedger::new(1);
        l.charge_until(MemCategory::InFlight, 512, 0.0, 1.0);
        l.charge_until(MemCategory::InFlight, 512, 0.5, 1.5);
        assert_eq!(l.cur(MemCategory::InFlight), 1024);
        // A later charge first drains both earlier releases.
        l.charge_until(MemCategory::InFlight, 100, 2.0, 3.0);
        assert_eq!(l.cur(MemCategory::InFlight), 100);
        assert_eq!(l.entry_count(), 0);
        let r = l.finish(5.0);
        assert_eq!(r.peak.in_flight, 1024);
        // Ungated lanes never move the gated headline.
        assert_eq!(r.peak.gated_total, 0);
        assert!(r.balances());
        validate_mem(&r).unwrap();
    }

    #[test]
    fn release_applies_before_same_instant_charge() {
        let mut l = MemLedger::new(0);
        l.charge_until(MemCategory::InFlight, 512, 0.0, 1.0);
        // Charging exactly at the release instant must not double-count.
        l.charge_until(MemCategory::InFlight, 512, 1.0, 2.0);
        let r = l.finish(3.0);
        assert_eq!(r.peak.in_flight, 512);
    }

    #[test]
    fn finish_force_closes_open_entries_and_still_balances() {
        let mut l = MemLedger::new(3);
        let a = l.alloc("kv_buf", MemCategory::CommBuffers, 2048, 0.0);
        l.free(a, 0.4);
        l.alloc("grad_q", MemCategory::Activations, 4096, 0.2);
        l.charge_until(MemCategory::InFlight, 64, 0.3, 10.0);
        let r = l.finish(0.5); // crash: grad_q still open, 64 B in flight
        assert_eq!(r.warnings.len(), 1);
        assert!(r.warnings[0].contains("grad_q"), "{:?}", r.warnings);
        assert!(r.warnings[0].contains("force-closed"));
        assert_eq!(r.live_at_close, 4096);
        assert!(r.balances());
        assert_eq!(r.entries[1].close, Some(0.5));
        validate_mem(&r).unwrap();
    }

    #[test]
    fn note_peak_raises_workspace_without_live_bytes() {
        let mut l = MemLedger::new(0);
        l.note_peak(MemCategory::Workspace, 333);
        l.note_peak(MemCategory::Workspace, 100);
        assert_eq!(l.cur(MemCategory::Workspace), 0);
        let r = l.finish(1.0);
        assert_eq!(r.peak.workspace, 333);
        assert_eq!(r.peak.gated_total, 0);
    }

    #[test]
    #[should_panic(expected = "freed twice")]
    fn double_free_panics() {
        let mut l = MemLedger::new(0);
        let a = l.alloc("x", MemCategory::Params, 8, 0.0);
        l.free(a, 1.0);
        l.free(a, 2.0);
    }

    #[test]
    fn fingerprint_is_stable_across_reuse() {
        let mut l = MemLedger::new(0);
        for _ in 0..8 {
            l.charge_until(MemCategory::InFlight, 128, 0.0, 0.1);
        }
        let fp = l.fingerprint();
        for _ in 0..100 {
            l.charge_until(MemCategory::InFlight, 128, 1.0, 1.1);
        }
        assert_eq!(l.fingerprint(), fp, "lane traffic must not add entries");
    }

    #[test]
    fn replay_peak_matches_recorded_for_entry_only_categories() {
        let mut l = MemLedger::new(0);
        let a = l.alloc("a", MemCategory::CkptStash, 10, 0.0);
        let b = l.alloc("b", MemCategory::CkptStash, 20, 1.0);
        l.free(a, 2.0);
        let c = l.alloc("c", MemCategory::CkptStash, 15, 2.0);
        l.free(b, 3.0);
        l.free(c, 3.0);
        let r = l.finish(4.0);
        assert_eq!(replay_peak(&r.entries, MemCategory::CkptStash), 35);
        assert_eq!(r.peak.ckpt_stash, 35);
        validate_mem(&r).unwrap();
    }

    #[test]
    fn counter_events_step_through_change_points() {
        let mut l = MemLedger::new(2);
        let a = l.alloc("stash", MemCategory::CkptStash, 100, 0.0);
        l.free(a, 2.0);
        let r = l.finish(3.0);
        let evs = mem_counter_events(&r, 2);
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| e.ph == "C" && e.pid == 2));
        assert_eq!(evs[0].args.value, 100.0);
        assert_eq!(evs[1].args.value, 0.0);
        assert_eq!(evs[0].name, "mem/ckpt_stash");
    }

    #[test]
    fn report_serde_round_trips() {
        let mut l = MemLedger::new(1);
        let a = l.alloc("w", MemCategory::Params, 64, 0.0);
        l.free(a, 1.0);
        l.charge_until(MemCategory::InFlight, 16, 0.2, 0.4);
        let r = l.finish(2.0);
        let text = serde_json::to_string(&r).unwrap();
        let back: MemReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn census_merges_by_max() {
        let mut a = MemLedger::new(0);
        a.alloc("x", MemCategory::Activations, 10, 0.0);
        let mut b = MemLedger::new(1);
        b.alloc("y", MemCategory::Activations, 30, 0.0);
        let (ra, rb) = (a.finish(1.0), b.finish(1.0));
        let c = peak_census(&[ra, rb]);
        assert_eq!(c.activations, 30);
        assert_eq!(c.gated_total, 30);
    }
}
