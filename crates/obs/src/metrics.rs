//! A deterministic metrics registry: named counters, time accumulators,
//! gauges and histograms that merge **exactly** across ranks.
//!
//! Per-rank registries are built independently (usually from a rank's
//! [`crate::RankTrace`] plus `burst-comm`'s counters) and then folded into
//! one cluster view. Floating-point addition is not associative, so time
//! is stored in integer nanoseconds (each observation rounded once at
//! record time), counters and histogram buckets are integer sums, and
//! gauges merge by `max` — every merge is therefore associative and
//! commutative, and any rank order folds to the identical registry.

use serde_json::Value;
use std::collections::BTreeMap;

/// Fixed-point scale for time metrics: virtual seconds × 1e9.
const NANOS: f64 = 1e9;

/// A histogram with explicit bucket bounds: `counts[i]` holds observations
/// `<= bounds[i]`, the last bucket is the overflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds, strictly increasing. `counts.len() == bounds.len() + 1`.
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    /// Smallest / largest observation (min/max merge exactly).
    pub min: f64,
    pub max: f64,
    pub total: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            total: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge with mismatched bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A per-step sampled counter: `samples[step]` is the integer value
/// sampled at that step, summed across ranks. Ranks that never reached a
/// step simply contribute nothing there (missing = 0), so ragged rank
/// counts — elastic shrink mid-run, late joiners — merge exactly: the
/// series extends to the longest rank and every position is a plain
/// integer sum, hence associative and commutative.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    pub samples: Vec<u64>,
}

impl Series {
    fn add(&mut self, step: usize, v: u64) {
        if self.samples.len() <= step {
            self.samples.resize(step + 1, 0);
        }
        self.samples[step] += v;
    }

    fn merge(&mut self, other: &Series) {
        if self.samples.len() < other.samples.len() {
            self.samples.resize(other.samples.len(), 0);
        }
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            *a += b;
        }
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone event count; merges by integer sum.
    Counter(u64),
    /// Accumulated virtual time in integer nanoseconds; merges by sum.
    Secs(i64),
    /// A level; merges by `max` (e.g. peak bytes, final epoch).
    Gauge(f64),
    /// Distribution; merges bucket-wise.
    Hist(Histogram),
    /// Per-step sampled counters; merges position-wise by sum.
    Series(Series),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Secs(_) => "secs",
            Metric::Gauge(_) => "gauge",
            Metric::Hist(_) => "histogram",
            Metric::Series(_) => "series",
        }
    }
}

/// A named collection of metrics. `BTreeMap` keys give a deterministic
/// iteration/export order regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn slot(&mut self, name: &str, fresh: Metric) -> &mut Metric {
        let entry = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| fresh.clone());
        assert_eq!(
            entry.type_name(),
            fresh.type_name(),
            "metric `{name}` recorded as {} but already registered as {}",
            fresh.type_name(),
            entry.type_name()
        );
        entry
    }

    /// Add `v` to counter `name` (creating it at zero).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        if let Metric::Counter(c) = self.slot(name, Metric::Counter(0)) {
            *c += v;
        }
    }

    /// Add `secs` of virtual time to accumulator `name`. The value is
    /// rounded to nanoseconds once, here; merges are then exact.
    pub fn add_secs(&mut self, name: &str, secs: f64) {
        let nanos = (secs * NANOS).round() as i64;
        if let Metric::Secs(n) = self.slot(name, Metric::Secs(0)) {
            *n += nanos;
        }
    }

    /// Raise gauge `name` to at least `v`.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        if let Metric::Gauge(g) = self.slot(name, Metric::Gauge(f64::NEG_INFINITY)) {
            *g = g.max(v);
        }
    }

    /// Record `v` into histogram `name` with the given bucket bounds (the
    /// bounds must match on every call and every rank).
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        if let Metric::Hist(h) = self.slot(name, Metric::Hist(Histogram::new(bounds))) {
            h.observe(v);
        }
    }

    /// Add `v` to position `step` of the per-step series `name` (creating
    /// the series, and any skipped positions, at zero).
    pub fn add_sample(&mut self, name: &str, step: usize, v: u64) {
        if let Metric::Series(s) = self.slot(name, Metric::Series(Series::default())) {
            s.add(step, v);
        }
    }

    /// The sampled series (empty if absent).
    pub fn series(&self, name: &str) -> &[u64] {
        match self.metrics.get(name) {
            Some(Metric::Series(s)) => &s.samples,
            _ => &[],
        }
    }

    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Time accumulator in seconds (0.0 if absent).
    pub fn secs(&self, name: &str) -> f64 {
        match self.metrics.get(name) {
            Some(Metric::Secs(n)) => *n as f64 / NANOS,
            _ => 0.0,
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Fold `other` into `self`. Exact (integer sums, min/max), hence
    /// associative and commutative: any rank order yields the same result.
    pub fn merge_from(&mut self, other: &Registry) {
        for (name, m) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), m.clone());
                }
                Some(mine) => match (mine, m) {
                    (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                    (Metric::Secs(a), Metric::Secs(b)) => *a += b,
                    (Metric::Gauge(a), Metric::Gauge(b)) => *a = a.max(*b),
                    (Metric::Hist(a), Metric::Hist(b)) => a.merge(b),
                    (Metric::Series(a), Metric::Series(b)) => a.merge(b),
                    (mine, m) => panic!(
                        "metric `{name}` merge across types: {} vs {}",
                        mine.type_name(),
                        m.type_name()
                    ),
                },
            }
        }
    }

    /// Deterministic JSON export (object keyed by metric name).
    pub fn to_json(&self) -> Value {
        let mut fields = Vec::with_capacity(self.metrics.len());
        for (name, m) in &self.metrics {
            let v = match m {
                Metric::Counter(c) => Value::Object(vec![
                    ("type".into(), Value::String("counter".into())),
                    ("value".into(), Value::Number(*c as f64)),
                ]),
                Metric::Secs(n) => Value::Object(vec![
                    ("type".into(), Value::String("secs".into())),
                    ("value".into(), Value::Number(*n as f64 / NANOS)),
                ]),
                Metric::Gauge(g) => Value::Object(vec![
                    ("type".into(), Value::String("gauge".into())),
                    ("value".into(), Value::Number(*g)),
                ]),
                Metric::Series(s) => Value::Object(vec![
                    ("type".into(), Value::String("series".into())),
                    (
                        "samples".into(),
                        Value::Array(s.samples.iter().map(|&v| Value::Number(v as f64)).collect()),
                    ),
                ]),
                Metric::Hist(h) => Value::Object(vec![
                    ("type".into(), Value::String("histogram".into())),
                    (
                        "bounds".into(),
                        Value::Array(h.bounds.iter().map(|&b| Value::Number(b)).collect()),
                    ),
                    (
                        "counts".into(),
                        Value::Array(h.counts.iter().map(|&c| Value::Number(c as f64)).collect()),
                    ),
                    ("total".into(), Value::Number(h.total as f64)),
                ]),
            };
            fields.push((name.clone(), v));
        }
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quasi-random per-rank registry exercising every metric type.
    fn rank_registry(rank: u64) -> Registry {
        let mut r = Registry::new();
        let mut x = rank.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..20 {
            let n = next();
            r.add_counter("sends", n % 7);
            // Deliberately awkward floats: exercises the fixed-point path.
            r.add_secs("wait", (n % 1000) as f64 * 1.0e-4 + 0.1 / 3.0);
            r.gauge_max("peak", (n % 1_000_000) as f64 * 1.3e-3);
            r.observe("lat", &[1e-5, 1e-4, 1e-3], (n % 100) as f64 * 3.3e-5);
        }
        r
    }

    fn fold(order: &[u64]) -> Registry {
        let mut acc = Registry::new();
        for &r in order {
            acc.merge_from(&rank_registry(r));
        }
        acc
    }

    #[test]
    fn merge_is_commutative_and_associative_across_rank_orders() {
        let forward = fold(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let reverse = fold(&[7, 6, 5, 4, 3, 2, 1, 0]);
        let shuffled = fold(&[3, 0, 7, 1, 6, 2, 5, 4]);
        assert_eq!(forward, reverse);
        assert_eq!(forward, shuffled);
        // Associativity: ((a+b)+(c+d)) == (a+(b+(c+d))).
        let mut left = fold(&[0, 1]);
        left.merge_from(&fold(&[2, 3]));
        let mut right = rank_registry(0);
        let mut tail = rank_registry(1);
        tail.merge_from(&fold(&[2, 3]));
        right.merge_from(&tail);
        assert_eq!(left, right);
    }

    #[test]
    fn accessors_and_json_export() {
        let mut r = Registry::new();
        r.add_counter("faults_injected", 3);
        r.add_secs("wait", 0.25);
        r.add_secs("wait", 0.5);
        r.gauge_max("epoch", 2.0);
        r.observe("msg_secs", &[0.1, 1.0], 0.05);
        r.observe("msg_secs", &[0.1, 1.0], 5.0);
        assert_eq!(r.counter("faults_injected"), 3);
        assert!((r.secs("wait") - 0.75).abs() < 1e-12);
        assert_eq!(r.counter("missing"), 0);
        let json = r.to_json();
        let text = serde_json::to_string(&json).unwrap();
        assert!(text.contains("faults_injected"), "{text}");
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back, json);
        match r.get("msg_secs") {
            Some(Metric::Hist(h)) => {
                assert_eq!(h.counts, vec![1, 0, 1]);
                assert_eq!(h.total, 2);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_confusion_panics() {
        let mut r = Registry::new();
        r.add_counter("x", 1);
        r.add_secs("x", 1.0);
    }

    /// A rank sampling a per-step counter over `[first, last)` steps — the
    /// shape elastic membership produces: late joiners start past 0,
    /// evicted ranks stop early.
    fn sampling_rank(rank: u64, first: usize, last: usize) -> Registry {
        let mut r = Registry::new();
        for step in first..last {
            r.add_sample("mem/peak_by_step", step, rank * 100 + step as u64);
            r.add_sample("comm/msgs_by_step", step, (rank + 1) * (step as u64 + 1));
        }
        r
    }

    #[test]
    fn series_merge_is_order_independent_with_ragged_rank_counts() {
        // Four ranks with ragged step spans: 0..8, 0..5, 2..8, 0..3.
        let spans = [(0usize, 8usize), (0, 5), (2, 8), (0, 3)];
        let regs: Vec<Registry> = spans
            .iter()
            .enumerate()
            .map(|(rank, &(a, b))| sampling_rank(rank as u64, a, b))
            .collect();
        let fold = |order: &[usize]| {
            let mut acc = Registry::new();
            for &i in order {
                acc.merge_from(&regs[i]);
            }
            acc
        };
        let fwd = fold(&[0, 1, 2, 3]);
        let rev = fold(&[3, 2, 1, 0]);
        let shuffled = fold(&[2, 0, 3, 1]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd, shuffled);
        assert_eq!(fwd.to_json(), rev.to_json());
        // The merged series spans the longest rank; position 0 sums only
        // the ranks that sampled it (ranks 0, 1, 3 — rank 0 contributed 0).
        let s = fwd.series("mem/peak_by_step");
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], 100 + 300);
        // Position 7 is sampled only by ranks 0 and 2.
        assert_eq!(s[7], 7 + 207);
    }

    #[test]
    fn series_survives_elastic_shrink_and_grow_mid_run() {
        // Rank 1 is evicted after step 3; rank 2 joins at step 4 (shrink
        // then grow). Merging pre- and post-churn registries in any order
        // gives one exact series.
        let pre = [sampling_rank(0, 0, 4), sampling_rank(1, 0, 4)];
        let post = [sampling_rank(0, 4, 8), sampling_rank(2, 4, 8)];
        let mut a = Registry::new();
        for r in pre.iter().chain(&post) {
            a.merge_from(r);
        }
        let mut b = Registry::new();
        for r in post.iter().chain(&pre) {
            b.merge_from(r);
        }
        assert_eq!(a, b);
        let s = a.series("mem/peak_by_step");
        assert_eq!(s.len(), 8);
        // Steps 0–3: ranks {0, 1}; steps 4–7: ranks {0, 2}.
        assert_eq!(s[2], 2 + 102);
        assert_eq!(s[5], 5 + 205);
    }

    #[test]
    fn series_skipped_steps_are_zero_and_json_exports() {
        let mut r = Registry::new();
        r.add_sample("s", 3, 7);
        assert_eq!(r.series("s"), &[0, 0, 0, 7]);
        assert_eq!(r.series("missing"), &[] as &[u64]);
        let text = serde_json::to_string(&r.to_json()).unwrap();
        assert!(text.contains("series"), "{text}");
        assert!(text.contains("samples"), "{text}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn series_type_confusion_panics() {
        let mut r = Registry::new();
        r.add_counter("x", 1);
        r.add_sample("x", 0, 1);
    }
}
