//! Engine-level differential gates: full distributed train steps (every
//! backend) vs the serial oracle train-step, checkpoint/resume bit-exactness
//! across proptest-chosen cut points, and fault+skip lockstep recovery
//! compared against an oracle told to skip the same steps.

use burst_comm::{FaultPlan, Topology};
use burst_dattn::Algo;
use burst_model::engine::{Backend, EngineConfig};
use burst_verify::diff::{
    elastic_ops_after, engine_elastic, engine_resume, engine_run, engine_span,
};
use burst_verify::oracle::oracle_train;
use burst_verify::{
    assert_bits_eq, compare_slice, BF16_RTOL, ORACLE_TRAIN_ATOL, ORACLE_TRAIN_RTOL,
};
use proptest::prelude::*;

fn cfg_for(backend: Backend, grad_accum: usize, seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::tiny(backend);
    cfg.grad_accum = grad_accum;
    cfg.seed = seed;
    cfg
}

/// World size each backend supports with `ModelConfig::tiny()` (2 heads,
/// seq 32): Ulysses caps at the head count, USP's Ulysses factor likewise.
fn world_for(backend: Backend) -> usize {
    match backend {
        Backend::Local => 1,
        Backend::Ring(_) => 4,
        Backend::Ulysses => 2,
        Backend::Usp { .. } => 4,
    }
}

fn backend_name(b: Backend) -> String {
    match b {
        Backend::Local => "local".into(),
        Backend::Ring(a) => format!("ring/{a:?}"),
        Backend::Ulysses => "ulysses".into(),
        Backend::Usp { ulysses_size } => format!("usp/u{ulysses_size}"),
    }
}

fn any_backend() -> impl Strategy<Value = Backend> {
    prop_oneof![
        Just(Backend::Local),
        Just(Backend::Ring(Algo::RingFlat)),
        Just(Backend::Ring(Algo::BurstFlat)),
        Just(Backend::Ring(Algo::DoubleRing)),
        Just(Backend::Ring(Algo::BurstTopo)),
        Just(Backend::Ulysses),
        Just(Backend::Usp { ulysses_size: 2 }),
    ]
}

fn expect_train_matches(
    label: &str,
    losses: &[f32],
    flat: &[f32],
    want: &burst_verify::oracle::OracleTrain,
    rtol: f32,
) {
    if let Err(d) = compare_slice("losses", losses, &want.losses, ORACLE_TRAIN_ATOL, rtol) {
        panic!("{label}: {d}");
    }
    if let Err(d) = compare_slice("flat_state", flat, &want.flat, ORACLE_TRAIN_ATOL, rtol) {
        panic!("{label}: {d}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every backend's full train loop — embeddings, RoPE, norms, FFN,
    /// fused LM head, FSDP sync, Adam — lands within the documented bounds
    /// of the serial oracle's train-step, for f32 and bf16-emulated runs.
    #[test]
    fn engine_matches_oracle_train(
        backend in any_backend(),
        grad_accum in 1usize..=2,
        steps in 2usize..=3,
        seed in 0u64..500,
        bf16 in prop_oneof![Just(false), Just(true)],
    ) {
        let mut cfg = cfg_for(backend, grad_accum, seed);
        cfg.emulate_bf16 = bf16;
        let topo = Topology::single_node(world_for(backend));
        let run = engine_run(&cfg, &topo, steps, None).expect("train failed");
        let want = oracle_train(&cfg, steps, &[]);
        let rtol = if bf16 { BF16_RTOL } else { ORACLE_TRAIN_RTOL };
        expect_train_matches(&backend_name(backend), &run.losses, &run.flat, &want, rtol);
        prop_assert_eq!(run.skipped, 0);
    }

    /// Cut a run at a random step, resume from the flattened state on a
    /// fresh cluster: losses and final state must be **bit-identical** to
    /// the uninterrupted run — the checkpoint/resume invariant.
    #[test]
    fn resume_is_bit_exact(
        backend in any_backend(),
        steps in 2usize..=4,
        cut_frac in 0usize..=100,
        seed in 0u64..500,
    ) {
        let cfg = cfg_for(backend, 1, seed);
        let topo = Topology::single_node(world_for(backend));
        let cut = cut_frac * steps / 101;      // 0..steps-ish, incl. 0
        let whole = engine_run(&cfg, &topo, steps, None).expect("train failed");
        let resumed = engine_resume(&cfg, &topo, cut, steps, None).expect("resume failed");
        prop_assert_eq!(&whole.losses, &resumed.losses);
        assert_bits_eq(
            &format!("{}/resume@{cut}", backend_name(backend)),
            &resumed.flat,
            &whole.flat,
        );
    }

    /// Poison one rank's gradient at a random step: the engine must skip
    /// that optimizer step in lockstep on every rank, and the run must
    /// match an oracle told to skip the same step. Resuming after the
    /// poisoned step stays bit-exact with the uninterrupted faulty run.
    #[test]
    fn poisoned_step_skips_in_lockstep_and_resumes(
        backend in any_backend(),
        seed in 0u64..500,
        bad_step in 0usize..=2,
        bad_rank_pick in 0usize..4,
    ) {
        let steps = 3usize;
        let cfg = cfg_for(backend, 1, seed);
        let g = world_for(backend);
        let topo = Topology::single_node(g);
        let plan = FaultPlan::new(seed)
            .poison_grad(bad_rank_pick % g, bad_step as u64, f32::NAN);

        let run = engine_run(&cfg, &topo, steps, Some(&plan)).expect("faulty train failed");
        prop_assert_eq!(run.skipped, 1, "poisoned step was not skipped");

        let want = oracle_train(&cfg, steps, &[bad_step]);
        expect_train_matches(
            &format!("{}+poison@{bad_step}", backend_name(backend)),
            &run.losses, &run.flat, &want, ORACLE_TRAIN_RTOL,
        );

        // Fault + resume: cut right after the poisoned step; phase 1
        // replays the poison, phase 2 runs clean. Must equal the
        // uninterrupted faulty run bit for bit.
        let cut = bad_step + 1;
        let resumed = engine_resume(&cfg, &topo, cut, steps, Some(&plan))
            .expect("faulty resume failed");
        prop_assert_eq!(resumed.skipped, 1);
        prop_assert_eq!(&resumed.losses, &run.losses);
        assert_bits_eq(
            &format!("{}/faulty-resume", backend_name(backend)),
            &resumed.flat,
            &run.flat,
        );
    }

    /// Link delays and compute slowdowns shift the virtual clock only:
    /// training results are bit-identical to the clean run on every
    /// backend.
    #[test]
    fn timing_faults_do_not_change_training(
        backend in any_backend(),
        seed in 0u64..500,
        fault_seed in 0u64..100,
    ) {
        let steps = 2usize;
        let cfg = cfg_for(backend, 1, seed);
        let g = world_for(backend);
        let topo = Topology::single_node(g);
        let plan = FaultPlan::new(fault_seed)
            .delay_link(0, g - 1, 2e-3, 1e-3)
            .slow_compute(fault_seed as usize % g, 3.0);
        let clean = engine_run(&cfg, &topo, steps, None).expect("clean train failed");
        let slow = engine_run(&cfg, &topo, steps, Some(&plan)).expect("delayed train failed");
        prop_assert_eq!(&clean.losses, &slow.losses);
        assert_bits_eq(
            &format!("{}+delay", backend_name(backend)),
            &slow.flat,
            &clean.flat,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Crash one rank mid-step: the elastic engine evicts it, replays only
    /// that step in place on the shrunken ring, and the whole run must be
    /// **bit-identical** to a fresh 4-rank world chained into a fresh
    /// 3-rank world at the crash step — the shrink-and-continue invariant.
    #[test]
    fn elastic_shrink_continue_is_bit_exact(
        victim in 1usize..4,
        seed in 0u64..500,
        f in 1usize..3,
    ) {
        let steps = 3usize;
        let mut cfg = cfg_for(Backend::Ring(Algo::BurstFlat), 1, seed);
        cfg.model.seq_len = 48;            // zigzag needs n % 2g == 0 for g in {3, 4}
        let topo = Topology::single_node(4);

        // Aim the crash inside step `f` by probing the op counter of a
        // clean elastic run at the step boundaries.
        let before = elastic_ops_after(&cfg, &topo, victim, f);
        let after = elastic_ops_after(&cfg, &topo, victim, f + 1);
        let plan = FaultPlan::new(seed)
            .crash_at_op(victim, (before + after) / 2)
            .recv_deadline(60.0);

        let run = engine_elastic(&cfg, &topo, steps, Some(&plan), None, 0)
            .expect("elastic train failed");
        prop_assert_eq!(run.evicted.clone(), vec![victim]);
        prop_assert_eq!(run.steps_replayed, 1, "only the failed step may replay");
        prop_assert_eq!(run.skipped, 0);

        let phase1 = engine_span(&cfg, &topo, 0, f, None, None).expect("full-world span failed");
        let phase2 = engine_span(
            &cfg,
            &Topology::single_node(3),
            f,
            steps,
            Some(&phase1.flat),
            None,
        )
        .expect("shrunken span failed");
        let want: Vec<f32> = phase1.losses.iter().chain(&phase2.losses).copied().collect();
        prop_assert_eq!(&run.losses, &want);
        assert_bits_eq("elastic-shrink-continue", &run.flat, &phase2.flat);
    }
}

/// The fixed-seed acceptance row: one fault+resume case per backend —
/// poison step 1, skip in lockstep, resume at the cut, match the skipping
/// oracle. This is the deliberate (non-randomised) instance of the
/// acceptance criterion "≥ 1 fault + resume case per schedule".
#[test]
fn fixed_fault_resume_matrix_all_backends() {
    let backends = [
        Backend::Local,
        Backend::Ring(Algo::RingFlat),
        Backend::Ring(Algo::BurstFlat),
        Backend::Ring(Algo::DoubleRing),
        Backend::Ring(Algo::BurstTopo),
        Backend::Ulysses,
        Backend::Usp { ulysses_size: 2 },
    ];
    let steps = 3usize;
    for backend in backends {
        let cfg = cfg_for(backend, 1, 42);
        let g = world_for(backend);
        let topo = Topology::single_node(g);
        let plan = FaultPlan::new(17).poison_grad(g - 1, 1, f32::INFINITY);

        let run = engine_run(&cfg, &topo, steps, Some(&plan)).expect("faulty train failed");
        assert_eq!(
            run.skipped,
            1,
            "{}: poisoned step not skipped",
            backend_name(backend)
        );

        let want = oracle_train(&cfg, steps, &[1]);
        expect_train_matches(
            &backend_name(backend),
            &run.losses,
            &run.flat,
            &want,
            ORACLE_TRAIN_RTOL,
        );

        let resumed = engine_resume(&cfg, &topo, 2, steps, Some(&plan)).expect("resume failed");
        assert_eq!(&resumed.losses, &run.losses);
        assert_bits_eq(&backend_name(backend), &resumed.flat, &run.flat);
    }
}

/// Gradient accumulation must not change what is computed, only how it is
/// batched — but micro-batches draw different synthetic data per absolute
/// micro index, so accum=2 is a different (still oracle-checked) run, not
/// a bitwise twin. Pin both against their own oracle.
#[test]
fn grad_accum_matches_oracle() {
    for accum in [1usize, 2, 3] {
        let cfg = cfg_for(Backend::Ring(Algo::BurstTopo), accum, 7);
        let topo = Topology::single_node(4);
        let run = engine_run(&cfg, &topo, 2, None).expect("train failed");
        let want = oracle_train(&cfg, 2, &[]);
        expect_train_matches(
            &format!("accum{accum}"),
            &run.losses,
            &run.flat,
            &want,
            ORACLE_TRAIN_RTOL,
        );
    }
}
