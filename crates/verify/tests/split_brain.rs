//! Split-brain containment: a live-but-unreachable rank must **park**, not
//! train ahead solo.
//!
//! A dropped message makes the receiver evict the sender. The sender is
//! still alive, though — its peers just stop answering it, so its own
//! eviction agreement would (in absentia) evict everyone else and leave it
//! training a divergent one-rank replica. The quorum rule in
//! `agree_on_eviction` catches this: a side whose decision evicts a strict
//! majority of the pre-agreement membership has lost the split and parks
//! itself instead.

use burst_comm::{FaultPlan, RetryPolicy, Topology, World};
use burst_dattn::Algo;
use burst_model::engine::{run_span_elastic, Backend, EngineConfig};
use burst_model::{ElasticCfg, Model};

#[test]
fn a_live_evicted_rank_parks_instead_of_training_solo() {
    let seed = 100u64;
    let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    cfg.model.seq_len = 48; // zigzag: n % 2g == 0 for g in {3, 4}
    cfg.seed = seed;
    let steps = 2usize;
    let victim = 1usize;
    // Aim the drop at the victim's first attention K/V send, past the FSDP
    // gather prelude of (g - 1) messages per parameter tensor on the link.
    let prelude = 3 * Model::new(cfg.model, cfg.seed).params().len() as u64;
    let plan = FaultPlan::new(seed)
        .drop_msg(victim, victim + 1, prelude)
        .recv_deadline(60.0);
    let world = World::with_faults(Topology::single_node(4), plan);
    let ecfg = ElasticCfg {
        policy: RetryPolicy::default(),
        ckpt_dir: None,
        every: 0,
        max_replays_per_step: 0,
    };
    let c2 = cfg.clone();
    let outs = world.run_faulty::<_, burst_comm::CommError, _>(move |comm| {
        let mut model = Model::new(c2.model, c2.seed);
        let out = run_span_elastic(comm, &c2, &mut model, 0, steps, &[], &ecfg)?;
        Ok((out, model.flat_state()))
    });

    // The victim parks at the failing step, agreeing it was the one
    // evicted — not the majority it could no longer reach.
    let (veo, _) = outs[victim].result.as_ref().expect("victim parks cleanly");
    assert_eq!(veo.parked_at, Some(0), "victim parks at the failing step");
    assert_eq!(veo.evicted, vec![victim], "victim records its own eviction");
    assert!(veo.losses.is_empty(), "a parked rank completes no step");

    // The survivors agree on the same eviction and finish bit-identically.
    let mut reference: Option<(&Vec<f32>, &Vec<f32>)> = None;
    for r in [0usize, 2, 3] {
        let (eo, flat) = outs[r].result.as_ref().expect("survivor finishes");
        assert_eq!(eo.parked_at, None, "rank {r} finishes the span");
        assert_eq!(eo.evicted, vec![victim], "rank {r} evicts the victim");
        assert_eq!(eo.steps_replayed, 1, "rank {r} replays the broken step");
        match reference {
            None => reference = Some((&eo.losses, flat)),
            Some((losses, rflat)) => {
                assert_eq!(&eo.losses, losses, "rank {r}: survivor losses agree");
                assert_eq!(flat, rflat, "rank {r}: survivor replicas agree");
            }
        }
    }
}
