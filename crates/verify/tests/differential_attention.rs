//! Differential gates: every distributed attention schedule vs the serial
//! `f64` oracle, over proptest-generated shapes, world sizes (including 1
//! and non-power-of-two), layouts and fault plans.
//!
//! Two tiers of assertion (see `burst_verify` crate docs):
//! * oracle bounds (`ORACLE_*`) for any schedule vs the oracle;
//! * bit-exact (`assert_bits_eq`) for pairs sharing an accumulation order —
//!   determinism re-runs and timing-only fault runs.

use burst_comm::{FaultPlan, Topology, WireDtype};
use burst_dattn::{Algo, ElasticOpts, Layout};
use burst_kernels::{AttnMask, BlockSparseMask};
use burst_verify::diff::{
    attn_inputs, run_elastic, run_elastic_masked_on, run_elastic_on, run_ring_family,
    run_ring_family_opts, run_ulysses, run_usp, run_usp_opts, GlobalAttn,
};
use burst_verify::oracle::oracle_attention;
use burst_verify::{
    assert_bits_eq, compare_slice, BF16_ATTN_ATOL, BF16_ATTN_RTOL, BF16_GRAD_ATOL, BF16_GRAD_RTOL,
    ORACLE_ATTN_ATOL, ORACLE_ATTN_RTOL, ORACLE_GRAD_ATOL, ORACLE_GRAD_RTOL,
};
use proptest::prelude::*;

fn scale(d: usize) -> f32 {
    1.0 / (d as f32).sqrt()
}

/// Assert a reassembled schedule run against the oracle under the
/// documented bounds. `with_lse` is false for head-parallel schedules that
/// never materialise a per-token LSE on the sequence-sharded side.
fn expect_matches_oracle(
    label: &str,
    got: &GlobalAttn,
    want: &burst_verify::oracle::OracleAttn,
    with_lse: bool,
) {
    let gate = |what: &str, g: &[f32], w: &[f32], atol: f32, rtol: f32| {
        if let Err(d) = compare_slice(what, g, w, atol, rtol) {
            panic!("{label}: {d}");
        }
    };
    gate(
        "o",
        got.o.as_slice(),
        want.o.as_slice(),
        ORACLE_ATTN_ATOL,
        ORACLE_ATTN_RTOL,
    );
    if with_lse {
        gate(
            "lse",
            &got.lse,
            &want.lse,
            ORACLE_ATTN_ATOL,
            ORACLE_ATTN_RTOL,
        );
    }
    gate(
        "dq",
        got.dq.as_slice(),
        want.dq.as_slice(),
        ORACLE_GRAD_ATOL,
        ORACLE_GRAD_RTOL,
    );
    gate(
        "dk",
        got.dk.as_slice(),
        want.dk.as_slice(),
        ORACLE_GRAD_ATOL,
        ORACLE_GRAD_RTOL,
    );
    gate(
        "dv",
        got.dv.as_slice(),
        want.dv.as_slice(),
        ORACLE_GRAD_ATOL,
        ORACLE_GRAD_RTOL,
    );
}

/// Like [`expect_matches_oracle`], under the looser `BF16_*` bounds for
/// runs whose wire payloads are rounded to bf16 (see the derivation on the
/// constants in `burst_verify`).
fn expect_matches_oracle_bf16(
    label: &str,
    got: &GlobalAttn,
    want: &burst_verify::oracle::OracleAttn,
) {
    let gate = |what: &str, g: &[f32], w: &[f32], atol: f32, rtol: f32| {
        if let Err(d) = compare_slice(what, g, w, atol, rtol) {
            panic!("{label}: {d}");
        }
    };
    gate(
        "o",
        got.o.as_slice(),
        want.o.as_slice(),
        BF16_ATTN_ATOL,
        BF16_ATTN_RTOL,
    );
    gate("lse", &got.lse, &want.lse, BF16_ATTN_ATOL, BF16_ATTN_RTOL);
    gate(
        "dq",
        got.dq.as_slice(),
        want.dq.as_slice(),
        BF16_GRAD_ATOL,
        BF16_GRAD_RTOL,
    );
    gate(
        "dk",
        got.dk.as_slice(),
        want.dk.as_slice(),
        BF16_GRAD_ATOL,
        BF16_GRAD_RTOL,
    );
    gate(
        "dv",
        got.dv.as_slice(),
        want.dv.as_slice(),
        BF16_GRAD_ATOL,
        BF16_GRAD_RTOL,
    );
}

fn bits_eq_attn(label: &str, a: &GlobalAttn, b: &GlobalAttn) {
    assert_bits_eq(&format!("{label}/o"), a.o.as_slice(), b.o.as_slice());
    assert_bits_eq(&format!("{label}/lse"), &a.lse, &b.lse);
    assert_bits_eq(&format!("{label}/dq"), a.dq.as_slice(), b.dq.as_slice());
    assert_bits_eq(&format!("{label}/dk"), a.dk.as_slice(), b.dk.as_slice());
    assert_bits_eq(&format!("{label}/dv"), a.dv.as_slice(), b.dv.as_slice());
}

fn oracle_for(n: usize, d: usize, seed: u64, mask: &AttnMask) -> burst_verify::oracle::OracleAttn {
    let (q, k, v, go) = attn_inputs(n, d, seed);
    oracle_attention(&q, &k, &v, &go, scale(d), mask)
}

fn algo_name(a: Algo) -> &'static str {
    match a {
        Algo::RingFlat => "ring-flat",
        Algo::BurstFlat => "burst-flat",
        Algo::DoubleRing => "double-ring",
        Algo::BurstTopo => "burst-topo",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every ring-family schedule, on single- and multi-node topologies,
    /// matches the oracle — including world size 1 and non-power-of-two
    /// worlds (g = 3 with zigzag exercises the 2G-chunk layout off the
    /// power-of-two path).
    #[test]
    fn ring_family_matches_oracle(
        g in 1usize..=4,
        chunks_per_rank in 1usize..=3,
        d in prop_oneof![Just(4usize), Just(8)],
        seed in 0u64..1_000,
        algo in prop_oneof![
            Just(Algo::RingFlat), Just(Algo::BurstFlat),
            Just(Algo::DoubleRing), Just(Algo::BurstTopo)
        ],
        causal in prop_oneof![Just(true), Just(false)],
    ) {
        // Zigzag needs n divisible by 2g; scale n off g so every world
        // size (1..=4, incl. 3) stays feasible.
        let n = 2 * g * chunks_per_rank * 2;
        let mask = if causal { AttnMask::Causal } else { AttnMask::Full };
        let layout = Layout::Zigzag;
        let topo = if g % 2 == 0 && g > 2 {
            Topology::new(2, g / 2, burst_comm::Link::new(1e-6, 100e9), burst_comm::Link::new(5e-6, 25e9))
        } else {
            Topology::single_node(g)
        };
        let want = oracle_for(n, d, seed, &mask);
        let got = run_ring_family(algo, layout, &topo, n, d, seed, &mask, None)
            .unwrap_or_else(|e| panic!("{} failed: {e}", algo_name(algo)));
        expect_matches_oracle(algo_name(algo), &got, &want, true);
    }

    /// The same ring-family sweep with **bf16 wire payloads**: every K/V
    /// shard and merged O block is genuinely rounded to 8 mantissa bits at
    /// the sender. Results must stay inside the `BF16_*` bounds of the
    /// oracle — and remain deterministic (rounding is a pure function of
    /// the data flow, so two runs still agree bit for bit).
    #[test]
    fn ring_family_bf16_wire_matches_oracle(
        g in 2usize..=4,
        chunks_per_rank in 1usize..=2,
        d in prop_oneof![Just(4usize), Just(8)],
        seed in 0u64..1_000,
        algo in prop_oneof![
            Just(Algo::RingFlat), Just(Algo::BurstFlat),
            Just(Algo::DoubleRing), Just(Algo::BurstTopo)
        ],
        causal in prop_oneof![Just(true), Just(false)],
    ) {
        let n = 2 * g * chunks_per_rank * 2;
        let mask = if causal { AttnMask::Causal } else { AttnMask::Full };
        let topo = Topology::single_node(g).with_wire_dtype(WireDtype::Bf16);
        let want = oracle_for(n, d, seed, &mask);
        let label = format!("{}+bf16wire", algo_name(algo));
        let got = run_ring_family(algo, Layout::Zigzag, &topo, n, d, seed, &mask, None)
            .unwrap_or_else(|e| panic!("{label} failed: {e}"));
        expect_matches_oracle_bf16(&label, &got, &want);
        let again = run_ring_family(algo, Layout::Zigzag, &topo, n, d, seed, &mask, None).unwrap();
        bits_eq_attn(&label, &got, &again);
    }

    /// Pure Ulysses head parallelism matches the oracle head-by-head,
    /// including the degenerate single-rank group.
    #[test]
    fn ulysses_matches_oracle(
        g in prop_oneof![Just(1usize), Just(2), Just(3), Just(4)],
        heads_per_rank in 1usize..=2,
        rows_per_rank in 2usize..=4,
        d in prop_oneof![Just(4usize), Just(8)],
        seed in 0u64..1_000,
    ) {
        let heads = g * heads_per_rank;        // Ulysses needs heads % g == 0
        let n = g * rows_per_rank;
        let topo = Topology::single_node(g);
        let got = run_ulysses(&topo, n, d, heads, seed, &AttnMask::Causal, None)
            .expect("ulysses failed");
        for (h, got_h) in got.iter().enumerate() {
            let want = oracle_for(n, d, seed.wrapping_mul(64) + h as u64, &AttnMask::Causal);
            expect_matches_oracle(&format!("ulysses/head{h}"), got_h, &want, false);
        }
    }

    /// USP (Ulysses nested in zigzag rings) matches the oracle for every
    /// factorisation of the world, including pure-ring (u = 1) and
    /// pure-Ulysses (u = g) corners.
    #[test]
    fn usp_matches_oracle(
        factors in prop_oneof![
            Just((1usize, 1usize)), Just((1, 2)), Just((2, 1)), Just((2, 2)),
            Just((1, 4)), Just((4, 1)), Just((3, 1)), Just((1, 3))
        ],
        heads_mul in 1usize..=2,
        d in prop_oneof![Just(4usize), Just(8)],
        seed in 0u64..1_000,
    ) {
        let (u, r) = factors;                  // ulysses size × ring size
        let g = u * r;
        let heads = u * heads_mul;             // heads % ulysses_size == 0
        let n = 2 * r * u * 2;                 // zigzag over r rings, then /u per member
        let topo = Topology::single_node(g);
        let got = run_usp(&topo, n, d, heads, u, seed, &AttnMask::Causal, None)
            .expect("usp failed");
        for (h, got_h) in got.iter().enumerate() {
            let want = oracle_for(n, d, seed.wrapping_mul(64) + h as u64, &AttnMask::Causal);
            expect_matches_oracle(&format!("usp[u={u},r={r}]/head{h}"), got_h, &want, false);
        }
    }

    /// Same schedule, same seed, run twice on fresh worlds → bit-identical.
    /// The simulated cluster is deterministic end to end; any drift here
    /// means a scheduling-order dependence leaked into the numerics.
    #[test]
    fn schedules_are_deterministic(
        g in 2usize..=4,
        seed in 0u64..1_000,
        algo in prop_oneof![
            Just(Algo::RingFlat), Just(Algo::BurstFlat),
            Just(Algo::DoubleRing), Just(Algo::BurstTopo)
        ],
    ) {
        let (n, d) = (4 * g, 8);
        let topo = Topology::single_node(g);
        let a = run_ring_family(algo, Layout::Zigzag, &topo, n, d, seed, &AttnMask::Causal, None).unwrap();
        let b = run_ring_family(algo, Layout::Zigzag, &topo, n, d, seed, &AttnMask::Causal, None).unwrap();
        bits_eq_attn(algo_name(algo), &a, &b);
    }

    /// Timing-only faults (link delay, compute slowdown) shift the virtual
    /// clock but must not change a single bit of any schedule's output —
    /// the numerics are a pure function of the data flow.
    #[test]
    fn timing_faults_do_not_change_ring_results(
        g in 2usize..=4,
        seed in 0u64..500,
        fault_seed in 0u64..100,
        algo in prop_oneof![
            Just(Algo::RingFlat), Just(Algo::BurstFlat),
            Just(Algo::DoubleRing), Just(Algo::BurstTopo)
        ],
    ) {
        let (n, d) = (4 * g, 8);
        let topo = Topology::single_node(g);
        let plan = FaultPlan::new(fault_seed)
            .delay_link(0, 1 % g, 3e-3, 1e-3)
            .delay_link(g - 1, 0, 5e-3, 0.0)
            .slow_compute(fault_seed as usize % g, 2.5);
        let clean = run_ring_family(algo, Layout::Zigzag, &topo, n, d, seed, &AttnMask::Causal, None).unwrap();
        let delayed = run_ring_family(algo, Layout::Zigzag, &topo, n, d, seed, &AttnMask::Causal, Some(&plan)).unwrap();
        bits_eq_attn(&format!("{}+delay", algo_name(algo)), &clean, &delayed);
    }

    /// Same for the head-parallel schedules: delayed all-to-alls reorder
    /// nothing observable.
    #[test]
    fn timing_faults_do_not_change_ulysses_usp_results(
        seed in 0u64..500,
        fault_seed in 0u64..100,
    ) {
        let g = 4;
        let (n, d, heads, u) = (16, 8, 4, 2);
        let topo = Topology::single_node(g);
        let plan = FaultPlan::new(fault_seed)
            .delay_link(1, 2, 2e-3, 5e-4)
            .slow_compute(3, 1.7);
        let a = run_ulysses(&topo, n, d, heads, seed, &AttnMask::Causal, None).unwrap();
        let b = run_ulysses(&topo, n, d, heads, seed, &AttnMask::Causal, Some(&plan)).unwrap();
        for (h, (x, y)) in a.iter().zip(&b).enumerate() {
            bits_eq_attn(&format!("ulysses+delay/head{h}"), x, y);
        }
        let a = run_usp(&topo, n, d, heads, u, seed, &AttnMask::Causal, None).unwrap();
        let b = run_usp(&topo, n, d, heads, u, seed, &AttnMask::Causal, Some(&plan)).unwrap();
        for (h, (x, y)) in a.iter().zip(&b).enumerate() {
            bits_eq_attn(&format!("usp+delay/head{h}"), x, y);
        }
    }

    /// Fault + recovery: crash one rank mid-attention; the survivors evict
    /// it, reload shards, re-partition and still match the oracle — and
    /// match a fresh world of the surviving size bit-for-bit (the re-run
    /// shares its accumulation order with a clean small-world run).
    #[test]
    fn elastic_recovery_matches_oracle_and_fresh_small_world(
        dead in 0usize..4,
        seed in 0u64..500,
        crash_op in 2u64..12,
    ) {
        let orig = 4usize;
        let (n, d) = (24, 8);                  // divisible by 2·4 and 2·3
        let plan = FaultPlan::new(seed).crash_at_op(dead, crash_op);
        let out = run_elastic(orig, n, d, seed, Some(&plan)).expect("elastic recovery failed");
        prop_assert_eq!(out.evicted.clone(), vec![dead]);
        prop_assert!(out.attempts > 1, "crash at op {} was never hit", crash_op);

        let want = oracle_for(n, d, seed, &AttnMask::Causal);
        expect_matches_oracle("elastic", &out.attn, &want, true);

        // A clean run with no fault plan takes the fast path (attempts == 1).
        let clean = run_elastic(orig, n, d, seed, None).expect("clean elastic run failed");
        prop_assert_eq!(clean.attempts, 1);
        expect_matches_oracle("elastic-clean", &clean.attn, &want, true);

        // The recovered run re-partitions over the 3 survivors with the
        // same layout formula a fresh 3-rank world uses, so the two share
        // their accumulation order exactly: bit-identical results.
        let fresh = run_elastic(orig - 1, n, d, seed, None).expect("fresh small world failed");
        bits_eq_attn("elastic-vs-fresh", &out.attn, &fresh.attn);
    }

    /// Multi-node elastic double-ring: crash one of four ranks on a
    /// 2-node × 2-GPU cluster. Any three survivors are ragged across the
    /// nodes, so the topology-aware retry must fall back to the flat ring
    /// — and still match the oracle, and a fresh 3-rank world bit for bit
    /// (the fallback shares its accumulation order with the flat path).
    #[test]
    fn elastic_double_ring_shrink_matches_oracle(
        dead in 0usize..4,
        seed in 0u64..500,
        crash_op in 2u64..10,
    ) {
        let (n, d) = (24, 8);
        let multi = Topology::a800(2, 2);
        let plan = FaultPlan::new(seed)
            .crash_at_op(dead, crash_op)
            .recv_deadline(60.0);
        let opts = ElasticOpts { double_ring: true, warm_start: false, skip_masked_rounds: false };
        let out = run_elastic_on(&multi, n, d, seed, Some(&plan), opts)
            .expect("elastic double-ring recovery failed");
        prop_assert_eq!(out.evicted.clone(), vec![dead]);
        prop_assert!(
            out.flat_fallbacks >= 1,
            "3 ragged survivors must fall back to the flat ring"
        );

        let want = oracle_for(n, d, seed, &AttnMask::Causal);
        expect_matches_oracle("elastic-dr", &out.attn, &want, true);

        let fresh = run_elastic(3, n, d, seed, None).expect("fresh small world failed");
        bits_eq_attn("elastic-dr-vs-fresh", &out.attn, &fresh.attn);
    }
}

/// One deliberate, non-random fault+resume case per schedule — the
/// fixed-seed smoke row of the acceptance matrix (the proptests above cover
/// the randomised space around it).
#[test]
fn fixed_fault_matrix_all_schedules() {
    let g = 4;
    let (n, d, heads) = (16usize, 8usize, 4usize);
    let topo = Topology::single_node(g);
    let delay = FaultPlan::new(7).delay_link(2, 3, 4e-3, 1e-3);
    for algo in [
        Algo::RingFlat,
        Algo::BurstFlat,
        Algo::DoubleRing,
        Algo::BurstTopo,
    ] {
        let want = oracle_for(n, d, 11, &AttnMask::Causal);
        let got = run_ring_family(
            algo,
            Layout::Zigzag,
            &topo,
            n,
            d,
            11,
            &AttnMask::Causal,
            Some(&delay),
        )
        .unwrap();
        expect_matches_oracle(algo_name(algo), &got, &want, true);
    }
    for (h, got_h) in run_ulysses(&topo, n, d, heads, 11, &AttnMask::Causal, Some(&delay))
        .unwrap()
        .iter()
        .enumerate()
    {
        let want = oracle_for(n, d, 11u64.wrapping_mul(64) + h as u64, &AttnMask::Causal);
        expect_matches_oracle("ulysses", got_h, &want, false);
    }
    for (h, got_h) in run_usp(&topo, n, d, heads, 2, 11, &AttnMask::Causal, Some(&delay))
        .unwrap()
        .iter()
        .enumerate()
    {
        let want = oracle_for(n, d, 11u64.wrapping_mul(64) + h as u64, &AttnMask::Causal);
        expect_matches_oracle("usp", got_h, &want, false);
    }
    let crash = FaultPlan::new(7).crash_at_op(1, 5);
    let out = run_elastic(g, 24, d, 11, Some(&crash)).unwrap();
    assert_eq!(out.evicted, vec![1]);
    let want = oracle_for(24, d, 11, &AttnMask::Causal);
    expect_matches_oracle("elastic", &out.attn, &want, true);

    // The same crash on a 2×2 multi-node cluster with the topology-aware
    // schedule enabled: the ragged survivor set forces a flat-ring
    // fallback, which must still satisfy the oracle gate.
    let crash_dr = FaultPlan::new(7).crash_at_op(1, 5).recv_deadline(60.0);
    let out = run_elastic_on(
        &Topology::a800(2, 2),
        24,
        d,
        11,
        Some(&crash_dr),
        ElasticOpts {
            double_ring: true,
            warm_start: false,
            skip_masked_rounds: false,
        },
    )
    .unwrap();
    assert_eq!(out.evicted, vec![1]);
    assert!(out.flat_fallbacks >= 1, "expected a flat-ring fallback");
    expect_matches_oracle("elastic-dr", &out.attn, &want, true);

    // bf16-wire rows: the same four ring schedules with rounded payloads,
    // including one under the link-delay plan (timing faults still must
    // not touch the — now rounded — numerics).
    let bf16_topo = topo.with_wire_dtype(WireDtype::Bf16);
    for algo in [
        Algo::RingFlat,
        Algo::BurstFlat,
        Algo::DoubleRing,
        Algo::BurstTopo,
    ] {
        let want = oracle_for(n, d, 11, &AttnMask::Causal);
        let clean = run_ring_family(
            algo,
            Layout::Zigzag,
            &bf16_topo,
            n,
            d,
            11,
            &AttnMask::Causal,
            None,
        )
        .unwrap();
        expect_matches_oracle_bf16(&format!("{}+bf16wire", algo_name(algo)), &clean, &want);
        let delayed = run_ring_family(
            algo,
            Layout::Zigzag,
            &bf16_topo,
            n,
            d,
            11,
            &AttnMask::Causal,
            Some(&delay),
        )
        .unwrap();
        bits_eq_attn(
            &format!("{}+bf16wire+delay", algo_name(algo)),
            &clean,
            &delayed,
        );
    }
}

/// The reassembly helper itself is covered by construction everywhere
/// above, but pin the scatter logic on a case where layouts interleave:
/// striped vs contiguous reassembly of the same global tensors agree.
#[test]
fn reassembly_is_layout_invariant() {
    let (n, d, g, seed) = (12usize, 4usize, 3usize, 99u64);
    let topo = Topology::single_node(g);
    let a = run_ring_family(
        Algo::RingFlat,
        Layout::Contiguous,
        &topo,
        n,
        d,
        seed,
        &AttnMask::Full,
        None,
    )
    .unwrap();
    let b = run_ring_family(
        Algo::RingFlat,
        Layout::Striped,
        &topo,
        n,
        d,
        seed,
        &AttnMask::Full,
        None,
    )
    .unwrap();
    // Different shardings reorder the ring merges, so compare under the
    // oracle bounds, not bitwise; both must also satisfy the oracle gate.
    let want = oracle_for(n, d, seed, &AttnMask::Full);
    expect_matches_oracle("contiguous", &a, &want, true);
    expect_matches_oracle("striped", &b, &want, true);
    if let Err(divergence) = compare_slice(
        "o",
        b.o.as_slice(),
        a.o.as_slice(),
        ORACLE_ATTN_ATOL,
        ORACLE_ATTN_RTOL,
    ) {
        panic!("striped vs contiguous: {divergence}");
    }
}

// ---------------------------------------------------------------------------
// Sparse-mask cells: every mask kind × every schedule vs the oracle, plus
// skip-on vs skip-off bit identity (mask-aware round skipping must be a
// pure communication optimisation — same arithmetic, same order).
// ---------------------------------------------------------------------------

/// Deterministic random block-sparse pattern from a seed (xorshift64).
/// Diagonal blocks stay allowed so no query row is ever fully dead —
/// off-diagonal blocks drop with probability ~3/4, which reliably produces
/// fully-masked tiles for the skip path to elide.
fn random_block_sparse(n: usize, block: usize, seed: u64) -> AttnMask {
    let nblocks = n.div_ceil(block);
    let mut s = seed | 1;
    let mut allowed = vec![false; nblocks * nblocks];
    for bi in 0..nblocks {
        for bj in 0..nblocks {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            allowed[bi * nblocks + bj] = bi == bj || (s >> 33) & 3 == 0;
        }
    }
    AttnMask::BlockSparse(BlockSparseMask::new(block, nblocks, allowed))
}

/// The sparse mask kinds of the acceptance matrix. Every kind keeps the
/// diagonal allowed, so softmax is defined for every row under every
/// sharding.
fn sparse_masks(n: usize, seed: u64) -> Vec<(&'static str, AttnMask)> {
    vec![
        ("sliding-window", AttnMask::SlidingWindow { window: 6 }),
        (
            "dilated",
            AttnMask::Dilated {
                window: 12,
                step: 3,
            },
        ),
        ("block-sparse", random_block_sparse(n, 4, seed)),
    ]
}

/// Every sparse mask kind through every schedule — the fixed-seed rows of
/// the mask × schedule acceptance matrix. Ring family runs multi-node (so
/// forwarding-only hops exist), head-parallel and elastic run single-node.
#[test]
fn sparse_mask_matrix_all_schedules() {
    let (n, d, g, heads, seed) = (32usize, 8usize, 4usize, 4usize, 11u64);
    let multi = Topology::a800(2, 2);
    let single = Topology::single_node(g);
    for (name, mask) in sparse_masks(n, seed) {
        let want = oracle_for(n, d, seed, &mask);
        for algo in [
            Algo::RingFlat,
            Algo::BurstFlat,
            Algo::DoubleRing,
            Algo::BurstTopo,
        ] {
            let label = format!("{}+{name}", algo_name(algo));
            let got = run_ring_family(algo, Layout::Zigzag, &multi, n, d, seed, &mask, None)
                .unwrap_or_else(|e| panic!("{label} failed: {e}"));
            expect_matches_oracle(&label, &got, &want, true);
        }
        let ul = run_ulysses(&single, n, d, heads, seed, &mask, None)
            .unwrap_or_else(|e| panic!("ulysses+{name} failed: {e}"));
        for (h, got_h) in ul.iter().enumerate() {
            let want_h = oracle_for(n, d, seed.wrapping_mul(64) + h as u64, &mask);
            expect_matches_oracle(&format!("ulysses+{name}/head{h}"), got_h, &want_h, false);
        }
        let usp = run_usp(&single, n, d, heads, 2, seed, &mask, None)
            .unwrap_or_else(|e| panic!("usp+{name} failed: {e}"));
        for (h, got_h) in usp.iter().enumerate() {
            let want_h = oracle_for(n, d, seed.wrapping_mul(64) + h as u64, &mask);
            expect_matches_oracle(&format!("usp+{name}/head{h}"), got_h, &want_h, false);
        }
        let el = run_elastic_masked_on(
            &single,
            n,
            d,
            seed,
            &mask,
            Layout::Zigzag,
            None,
            ElasticOpts::default(),
        )
        .unwrap_or_else(|e| panic!("elastic+{name} failed: {e}"));
        expect_matches_oracle(&format!("elastic+{name}"), &el.attn, &want, true);
    }
}

/// Mask-aware round skipping is bit-invisible: for every mask kind (causal
/// included), every ring-family schedule, USP, the elastic loop, and both a
/// skip-rich layout (contiguous) and a balanced one (zigzag), the skip-on
/// run is bit-identical to the skip-off run of the same cell.
#[test]
fn skip_on_is_bit_identical_to_skip_off_matrix() {
    let (n, d, g, heads, seed) = (32usize, 8usize, 4usize, 4usize, 17u64);
    let multi = Topology::a800(2, 2);
    let single = Topology::single_node(g);
    let mut masks = vec![("causal", AttnMask::Causal)];
    masks.extend(sparse_masks(n, seed));
    for (name, mask) in &masks {
        for layout in [Layout::Contiguous, Layout::Zigzag] {
            for algo in [
                Algo::RingFlat,
                Algo::BurstFlat,
                Algo::DoubleRing,
                Algo::BurstTopo,
            ] {
                let label = format!("{}+{name}+{layout:?}", algo_name(algo));
                let off = run_ring_family_opts(algo, layout, &multi, n, d, seed, mask, None, false)
                    .unwrap_or_else(|e| panic!("{label} skip-off failed: {e}"));
                let on = run_ring_family_opts(algo, layout, &multi, n, d, seed, mask, None, true)
                    .unwrap_or_else(|e| panic!("{label} skip-on failed: {e}"));
                bits_eq_attn(&label, &on, &off);
            }
            let opts_off = ElasticOpts::default();
            let opts_on = ElasticOpts {
                skip_masked_rounds: true,
                ..ElasticOpts::default()
            };
            let label = format!("elastic+{name}+{layout:?}");
            let off = run_elastic_masked_on(&single, n, d, seed, mask, layout, None, opts_off)
                .unwrap_or_else(|e| panic!("{label} skip-off failed: {e}"));
            let on = run_elastic_masked_on(&single, n, d, seed, mask, layout, None, opts_on)
                .unwrap_or_else(|e| panic!("{label} skip-on failed: {e}"));
            bits_eq_attn(&label, &on.attn, &off.attn);
        }
        let off = run_usp_opts(&single, n, d, heads, 2, seed, mask, None, false)
            .unwrap_or_else(|e| panic!("usp+{name} skip-off failed: {e}"));
        let on = run_usp_opts(&single, n, d, heads, 2, seed, mask, None, true)
            .unwrap_or_else(|e| panic!("usp+{name} skip-on failed: {e}"));
        for (h, (a, b)) in on.iter().zip(&off).enumerate() {
            bits_eq_attn(&format!("usp+{name}/head{h}"), a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomised sweep over the sparse-mask cells: a random world size,
    /// mask kind and ring-family schedule must match the oracle with
    /// skipping ON, and be bit-identical to the same run with skipping OFF.
    #[test]
    fn sparse_masks_match_oracle_and_skip_is_invisible(
        g in 1usize..=4,
        chunks_per_rank in 1usize..=3,
        seed in 0u64..1_000,
        algo in prop_oneof![
            Just(Algo::RingFlat), Just(Algo::BurstFlat),
            Just(Algo::DoubleRing), Just(Algo::BurstTopo)
        ],
        kind in 0usize..3,
        layout in prop_oneof![Just(Layout::Contiguous), Just(Layout::Zigzag)],
    ) {
        let n = 2 * g * chunks_per_rank * 2;
        let d = 8usize;
        let (name, mask) = sparse_masks(n, seed).swap_remove(kind);
        let topo = Topology::single_node(g);
        let want = oracle_for(n, d, seed, &mask);
        let on = run_ring_family_opts(algo, layout, &topo, n, d, seed, &mask, None, true)
            .unwrap_or_else(|e| panic!("{}+{name} skip-on failed: {e}", algo_name(algo)));
        expect_matches_oracle(&format!("{}+{name}+skip", algo_name(algo)), &on, &want, true);
        let off = run_ring_family_opts(algo, layout, &topo, n, d, seed, &mask, None, false)
            .unwrap_or_else(|e| panic!("{}+{name} skip-off failed: {e}", algo_name(algo)));
        bits_eq_attn(&format!("{}+{name}", algo_name(algo)), &on, &off);
    }
}
