//! The recovery-ladder property: **any** all-transient fault plan, run
//! under the reliable transport, trains to a final state bit-identical to
//! the fault-free run — drops, burst drops, corruptions, link flaps and
//! partitions all heal at the transport rung without ever reaching the
//! detector/eviction/replay rungs above it.
//!
//! Failures shrink (via the proptest tape) toward the smallest fault set
//! that still breaks the bit-identity, typically a single fault spec.

use burst_comm::{FaultPlan, Topology, TransportPolicy};
use burst_dattn::Algo;
use burst_model::engine::{Backend, EngineConfig};
use burst_verify::assert_bits_eq;
use burst_verify::diff::engine_run;
use proptest::prelude::*;

/// One drawn fault spec: `kind` selects the class, the rest parameterize
/// it. `src == dst` draws are skipped (no self-links on the wire).
type FaultSpec = (u8, usize, usize, u64, u64);

/// Apply `n_active` of the drawn specs to a plan. Every window is built
/// strictly inside the transport's minimum retry budget, so the resulting
/// plan is transient by construction.
fn apply_specs(mut plan: FaultPlan, specs: &[FaultSpec], n_active: usize) -> FaultPlan {
    let budget = TransportPolicy::default().min_retry_budget();
    for &(kind, src, dst, index, extent) in specs.iter().take(n_active) {
        if src == dst {
            continue;
        }
        match kind % 5 {
            0 => plan = plan.drop_msg(src, dst, index),
            1 => plan = plan.drop_burst(src, dst, index, 1 + extent % 3),
            2 => plan = plan.corrupt_msg(src, dst, index),
            3 => {
                // Flap window: starts somewhere in the first few virtual
                // milliseconds, stays under half the retry budget.
                let from = (index % 50) as f64 * 1e-4;
                let width = 1e-5 + (extent % 100) as f64 / 100.0 * (budget * 0.5);
                plan = plan.flap_link(src, dst, from, from + width);
            }
            _ => {
                let from = (index % 50) as f64 * 1e-4;
                let width = 1e-5 + (extent % 100) as f64 / 100.0 * (budget * 0.5);
                let groups: [&[usize]; 2] = if extent % 2 == 0 {
                    [&[0, 1], &[2, 3]]
                } else {
                    [&[0, 2], &[1, 3]]
                };
                plan = plan.partition(&groups, from, from + width);
            }
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Transient plan + reliable transport ⇒ losses, final state and the
    /// skip count are all bit-identical to the clean run: the transport
    /// rung absorbs the whole fault plan.
    #[test]
    fn any_transient_plan_heals_to_the_clean_fixed_point(
        seed in 0u64..1_000,
        n_active in 0usize..6,
        specs in proptest::collection::vec(
            (0u8..5, 0usize..4, 0usize..4, 0u64..60, 0u64..100),
            6,
        ),
    ) {
        let cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
        let topo = Topology::single_node(4);
        let steps = 2;
        let clean = engine_run(&cfg, &topo, steps, None).expect("clean run");

        let plan = apply_specs(FaultPlan::new(seed), &specs, n_active).reliable();
        prop_assert!(
            plan.has_transient_faults() || n_active == 0 || specs.iter().take(n_active).all(|s| s.1 == s.2),
            "the drawn plan should carry transient faults"
        );
        let healed = engine_run(&cfg, &topo, steps, Some(&plan))
            .expect("a transient plan must never kill the run");

        assert_bits_eq("ladder: losses", &healed.losses, &clean.losses);
        assert_bits_eq("ladder: final state", &healed.flat, &clean.flat);
        prop_assert_eq!(healed.skipped, clean.skipped, "no step is ever skipped");
    }

    /// The same property across the other ring schedules: the transport is
    /// below the schedule layer, so every discipline rides it untouched.
    #[test]
    fn every_ring_schedule_rides_the_reliable_path(
        algo in prop_oneof![
            Just(Algo::RingFlat),
            Just(Algo::DoubleRing),
            Just(Algo::BurstTopo),
        ],
        seed in 0u64..1_000,
        specs in proptest::collection::vec(
            (0u8..5, 0usize..4, 0usize..4, 0u64..60, 0u64..100),
            3,
        ),
    ) {
        let cfg = EngineConfig::tiny(Backend::Ring(algo));
        let topo = Topology::single_node(4);
        let clean = engine_run(&cfg, &topo, 1, None).expect("clean run");
        let plan = apply_specs(FaultPlan::new(seed), &specs, specs.len()).reliable();
        let healed = engine_run(&cfg, &topo, 1, Some(&plan))
            .expect("a transient plan must never kill the run");
        assert_bits_eq("schedule ladder: final state", &healed.flat, &clean.flat);
    }
}
