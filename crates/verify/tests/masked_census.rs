//! Masked wire census vs measured traffic: with mask-aware skipping ON,
//! the bytes and messages a schedule actually puts on the wire must equal
//! the analytic masked census **exactly** (integer equality, both wire
//! dtypes), the number of elided rank-rounds must equal the analytic
//! skipped-round count, the skipped-byte dual must reconstruct the dense
//! census to the byte, and the virtual clock must stay monotone and never
//! run longer than the unskipped schedule.

use burst_comm::{CommStats, Topology, WireDtype, World};
use burst_dattn::{try_run_attention_opts, Algo, CostModel, Layout};
use burst_kernels::{AttnMask, BlockSparseMask};
use burst_perf::{exact_wire_counts_dtype, exact_wire_counts_masked_dtype, Cluster, RingMethod};
use burst_tensor::randn_mat;
use proptest::prelude::*;

/// Deterministic random block-sparse pattern (xorshift64) with the
/// diagonal kept allowed — the same generator the differential matrix
/// uses, dense enough to stay solvable, sparse enough to skip rounds.
fn random_block_sparse(n: usize, block: usize, seed: u64) -> AttnMask {
    let nblocks = n.div_ceil(block);
    let mut s = seed | 1;
    let mut allowed = vec![false; nblocks * nblocks];
    for bi in 0..nblocks {
        for bj in 0..nblocks {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            allowed[bi * nblocks + bj] = bi == bj || (s >> 33) & 3 == 0;
        }
    }
    AttnMask::BlockSparse(BlockSparseMask::new(block, nblocks, allowed))
}

fn mask_for(kind: usize, seq: usize, seed: u64) -> AttnMask {
    match kind {
        0 => AttnMask::SlidingWindow { window: seq / 4 },
        1 => AttnMask::Dilated {
            window: seq / 2,
            step: 2,
        },
        _ => random_block_sparse(seq, 4, seed),
    }
}

const METHODS: [(Algo, RingMethod); 3] = [
    (Algo::RingFlat, RingMethod::Ring),
    (Algo::DoubleRing, RingMethod::DoubleRing),
    (Algo::BurstTopo, RingMethod::Burst),
];

/// Run one attention layer (forward + backward) on a fresh world with
/// skipping toggled, returning each rank's comm stats and its clock
/// readings around the schedule.
fn run_once(
    topo: &Topology,
    algo: Algo,
    layout: Layout,
    seq: usize,
    d: usize,
    mask: &AttnMask,
    skip: bool,
) -> Vec<(CommStats, f64, f64)> {
    let g = topo.world_size();
    let q = randn_mat(seq, d, 0.7, 71);
    let k = randn_mat(seq, d, 0.7, 72);
    let v = randn_mat(seq, d, 0.7, 73);
    let go = randn_mat(seq, d, 0.8, 74);
    let mask = mask.clone();
    let world = World::new(topo.clone());
    world
        .run(move |comm| {
            let idx = layout.indices(seq, g, comm.rank());
            let t0 = comm.time();
            try_run_attention_opts(
                algo,
                comm,
                &q.gather_rows(&idx),
                &k.gather_rows(&idx),
                &v.gather_rows(&idx),
                &go.gather_rows(&idx),
                1.0 / (d as f32).sqrt(),
                &mask,
                layout,
                seq,
                &CostModel::free(),
                skip,
            )
            .expect("fault-free schedule failed");
            let t1 = comm.time();
            (t0, t1)
        })
        .into_iter()
        .map(|o| (o.stats, o.result.0, o.result.1))
        .collect()
}

fn sum_stats(outs: &[(CommStats, f64, f64)]) -> (u64, u64, f64, f64, u64, f64) {
    let mut acc = (0u64, 0u64, 0.0f64, 0.0f64, 0u64, 0.0f64);
    for (s, _, _) in outs {
        acc.0 += s.intra_msgs;
        acc.1 += s.inter_msgs;
        acc.2 += s.intra_bytes;
        acc.3 += s.inter_bytes;
        acc.4 += s.rounds_skipped;
        acc.5 += s.skipped_bytes;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For a random mask (sliding-window, dilated, or seeded random
    /// block-sparse), world shape, schedule, layout and wire dtype:
    ///
    /// * skip-ON measured traffic == masked census, to the message and byte;
    /// * skip-ON elided rounds == the census's analytic skipped-round count;
    /// * measured bytes + skipped-byte dual == dense census bytes exactly;
    /// * skip-OFF measured traffic == dense census, with zero skips billed;
    /// * each rank's clock is monotone and skip-ON never finishes later
    ///   than skip-OFF.
    #[test]
    fn measured_masked_traffic_equals_masked_census(
        nodes in 1usize..=2,
        gpn in 2usize..=4,
        mask_kind in 0usize..3,
        mask_seed in 0u64..1_000,
        method_idx in 0usize..3,
        layout_idx in 0usize..2,
        dtype_idx in 0usize..2,
    ) {
        let g = nodes * gpn;
        let (seq, d) = (8 * g, 8usize);
        let mask = mask_for(mask_kind, seq, mask_seed);
        let (algo, method) = METHODS[method_idx];
        let layout = [Layout::Contiguous, Layout::Zigzag][layout_idx];
        let dtype = [WireDtype::F32, WireDtype::Bf16][dtype_idx];
        let cluster = Cluster::a800(nodes, gpn);
        let topo = Topology::a800(nodes, gpn).with_wire_dtype(dtype);
        let label = format!(
            "{algo:?}+{layout:?}+{} mask{mask_kind}/{mask_seed} {nodes}x{gpn}",
            dtype.label()
        );

        let on = run_once(&topo, algo, layout, seq, d, &mask, true);
        let (im, xm, ib, xb, skipped_rounds, skipped_bytes) = sum_stats(&on);
        let want =
            exact_wire_counts_masked_dtype(&cluster, seq, d, method, dtype, &mask, layout, None, true);
        prop_assert_eq!(
            (im, xm),
            (want.counts.intra_msgs, want.counts.inter_msgs),
            "{}: masked message census mismatch", label
        );
        prop_assert_eq!(
            (ib, xb),
            (want.counts.intra_bytes, want.counts.inter_bytes),
            "{}: masked byte census mismatch", label
        );
        prop_assert_eq!(
            skipped_rounds, want.rounds_skipped,
            "{}: skipped-round count mismatch", label
        );
        prop_assert_eq!(
            skipped_bytes, want.skipped_bytes,
            "{}: skipped-byte dual mismatch", label
        );

        // The dual reconstructs the dense schedule to the byte.
        let dense = exact_wire_counts_dtype(&cluster, seq, d, method, dtype);
        prop_assert_eq!(
            ib + xb + skipped_bytes,
            dense.intra_bytes + dense.inter_bytes,
            "{}: wire bytes + skipped dual must equal the dense census", label
        );

        // Skip-OFF reproduces the dense census and bills no skips.
        let off = run_once(&topo, algo, layout, seq, d, &mask, false);
        let (im0, xm0, ib0, xb0, sr0, sb0) = sum_stats(&off);
        prop_assert_eq!((sr0, sb0), (0u64, 0.0f64), "{}: dense run billed skips", label);
        prop_assert_eq!(
            (im0, xm0, ib0, xb0),
            (dense.intra_msgs, dense.inter_msgs, dense.intra_bytes, dense.inter_bytes),
            "{}: dense run vs dense census mismatch", label
        );

        // Clock: monotone per rank, and skipping never slows a rank down.
        for (rank, ((_, t0, t1), (_, u0, u1))) in on.iter().zip(&off).enumerate() {
            prop_assert!(t1.is_finite() && *t1 >= *t0, "{label}: rank {rank} clock ran backwards");
            prop_assert!(u1.is_finite() && *u1 >= *u0);
            prop_assert!(
                t1 - t0 <= u1 - u0 + 1e-12,
                "{label}: rank {rank} skip-on elapsed {} > skip-off {}",
                t1 - t0,
                u1 - u0
            );
        }
    }
}

/// Non-vacuity witness for the property above: a sliding-window mask on a
/// contiguous layout genuinely elides rounds and bytes on every schedule,
/// and the measured counters agree with the census about how many.
#[test]
fn window_on_contiguous_actually_skips() {
    let (nodes, gpn, d) = (2usize, 2usize, 8usize);
    let g = nodes * gpn;
    let seq = 8 * g;
    let mask = AttnMask::SlidingWindow { window: seq / 4 };
    let cluster = Cluster::a800(nodes, gpn);
    let topo = Topology::a800(nodes, gpn);
    for (algo, method) in METHODS {
        let want = exact_wire_counts_masked_dtype(
            &cluster,
            seq,
            d,
            method,
            WireDtype::F32,
            &mask,
            Layout::Contiguous,
            None,
            true,
        );
        assert!(
            want.rounds_skipped > 0,
            "{algo:?}: census predicts no skipped rounds — witness is vacuous"
        );
        assert!(want.skipped_bytes > 0.0, "{algo:?}: no bytes saved");
        let outs = run_once(&topo, algo, Layout::Contiguous, seq, d, &mask, true);
        let (_, _, ib, xb, rounds, bytes) = sum_stats(&outs);
        assert_eq!(rounds, want.rounds_skipped, "{algo:?}: measured skips");
        assert_eq!(bytes, want.skipped_bytes, "{algo:?}: measured saved bytes");
        assert_eq!(
            (ib, xb),
            (want.counts.intra_bytes, want.counts.inter_bytes),
            "{algo:?}: measured wire bytes"
        );
    }
}
