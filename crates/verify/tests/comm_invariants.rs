//! Algebraic invariants of the comm layer, property-tested:
//!
//! * `all_gather ∘ reduce_scatter ≡ all_reduce` — bit-exactly, on the
//!   divisible path where `all_reduce_mat` itself is RS+AG;
//! * `all_to_all` is an involution: routing the received blocks straight
//!   back restores every rank's original payload bit-for-bit;
//! * byte conservation: the bytes/messages the simulated wire actually
//!   carried during ring attention equal `exact_wire_counts`' closed-form
//!   census, per link class, exactly;
//! * the virtual clock is monotone through any sequence of collectives.

use burst_comm::{Topology, WireDtype, World};
use burst_dattn::{run_attention, Algo, CostModel, Layout};
use burst_kernels::AttnMask;
use burst_perf::commtime::{exact_wire_counts, exact_wire_counts_dtype, RingMethod};
use burst_perf::machine::Cluster;
use burst_tensor::{randn_mat, Mat};
use burst_verify::assert_bits_eq;
use proptest::prelude::*;

fn rank_mat(rank: usize, rows: usize, cols: usize, salt: u64) -> Mat {
    Mat::from_fn(rows, cols, |r, c| {
        (((rank as u64 + 1) * 131 + r as u64 * 17 + c as u64 * 3 + salt * 7) % 101) as f32 / 9.0
            - 5.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On the divisible path `all_reduce_mat` *is* reduce-scatter followed
    /// by all-gather; composing the two collectives by hand must therefore
    /// agree to the last bit — any drift means the fused path reordered a
    /// reduction.
    #[test]
    fn all_gather_of_reduce_scatter_is_all_reduce(
        g in 1usize..6,
        rows_per_rank in 1usize..4,
        cols in 1usize..4,
        salt in 0u64..1_000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let me = comm.rank();
            let x = rank_mat(me, g * rows_per_rank, cols, salt);
            let fused = comm.all_reduce_mat(&x);
            let parts: Vec<Mat> = (0..g)
                .map(|p| x.slice_rows(p * rows_per_rank, (p + 1) * rows_per_rank))
                .collect();
            let mine = comm.reduce_scatter_mat(&parts);
            let gathered = comm.all_gather_mat(&mine);
            let composed = Mat::vstack(&gathered);
            (fused, composed)
        });
        for (rank, (fused, composed)) in outs.iter().enumerate() {
            assert_bits_eq(
                &format!("rank{rank}: AG∘RS vs AR"),
                composed.as_slice(),
                fused.as_slice(),
            );
        }
    }

    /// all-to-all twice is the identity: each rank sends block `d` to rank
    /// `d`, then routes what it received straight back, and must recover
    /// its original outgoing payloads bit-for-bit (messages are neither
    /// altered, duplicated nor misrouted — including self-delivery and the
    /// single-rank world).
    #[test]
    fn all_to_all_is_an_involution(
        g in 1usize..6,
        rows in 1usize..4,
        cols in 1usize..4,
        salt in 0u64..1_000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let me = comm.rank();
            let original: Vec<Mat> = (0..g)
                .map(|d| rank_mat(me * g + d, rows, cols, salt))
                .collect();
            let received = comm.all_to_all_mat(original.clone());
            let returned = comm.all_to_all_mat(received);
            (original, returned)
        });
        for (rank, (original, returned)) in outs.iter().enumerate() {
            for (d, (a, b)) in original.iter().zip(returned).enumerate() {
                assert_bits_eq(
                    &format!("rank{rank} block{d}"),
                    b.as_slice(),
                    a.as_slice(),
                );
            }
        }
    }

    /// The virtual clock never runs backwards, collectives leave every
    /// rank's clock positive once any real message moved, and a
    /// single-rank world's collectives cost nothing on the wire.
    #[test]
    fn virtual_clock_is_monotone(
        g in 1usize..5,
        rows in 1usize..4,
        salt in 0u64..1_000,
    ) {
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let me = comm.rank();
            let mut stamps = vec![comm.time()];
            let x = rank_mat(me, g * rows, 2, salt);
            let _ = comm.all_reduce_mat(&x);
            stamps.push(comm.time());
            let _ = comm.all_gather_mat(&x);
            stamps.push(comm.time());
            let _ = comm.all_to_all_mat((0..g).map(|d| rank_mat(d, rows, 2, salt)).collect());
            stamps.push(comm.time());
            comm.barrier();
            stamps.push(comm.time());
            stamps
        });
        for (rank, stamps) in outs.iter().enumerate() {
            for w in stamps.windows(2) {
                prop_assert!(
                    w[1] >= w[0],
                    "rank{rank}: clock ran backwards ({} -> {})", w[0], w[1]
                );
            }
            if g > 1 {
                prop_assert!(stamps.last().unwrap() > &0.0, "rank{rank}: clock never advanced");
            }
        }
    }
}

/// Byte conservation: run each ring method's full forward+backward on the
/// simulated wire and census the bytes and messages every rank actually
/// sent. The totals must equal `exact_wire_counts`' closed-form prediction
/// *exactly*, per link class — the analytic model and the simulator count
/// the same wire.
#[test]
fn measured_wire_traffic_equals_exact_census() {
    const METHODS: [(&str, Algo, RingMethod); 3] = [
        ("ring", Algo::RingFlat, RingMethod::Ring),
        ("double_ring", Algo::DoubleRing, RingMethod::DoubleRing),
        ("burst", Algo::BurstTopo, RingMethod::Burst),
    ];
    let (seq, d) = (64usize, 8usize);
    for (nodes, gpn) in [(1usize, 4usize), (2, 2), (2, 4)] {
        let cluster = Cluster::a800(nodes, gpn);
        let g = nodes * gpn;
        // Both wire dtypes: the census must track the 4-byte f32 payloads
        // and the 2-byte bf16 payloads (LSE/D stat vectors stay f32 either
        // way, so bf16 does NOT simply halve the totals).
        for dtype in [WireDtype::F32, WireDtype::Bf16] {
            let topo = Topology::a800(nodes, gpn).with_wire_dtype(dtype);
            for (name, algo, method) in METHODS {
                let q = randn_mat(seq, d, 0.7, 61);
                let k = randn_mat(seq, d, 0.7, 62);
                let v = randn_mat(seq, d, 0.7, 63);
                let go = randn_mat(seq, d, 0.8, 64);
                let world = World::new(topo.clone());
                let outs = world.run(move |comm| {
                    let idx = Layout::Zigzag.indices(seq, g, comm.rank());
                    run_attention(
                        algo,
                        comm,
                        &q.gather_rows(&idx),
                        &k.gather_rows(&idx),
                        &v.gather_rows(&idx),
                        &go.gather_rows(&idx),
                        1.0 / (d as f32).sqrt(),
                        &AttnMask::Causal,
                        Layout::Zigzag,
                        seq,
                        &CostModel::free(),
                    );
                });
                let mut intra_msgs = 0u64;
                let mut inter_msgs = 0u64;
                let mut intra_bytes = 0.0f64;
                let mut inter_bytes = 0.0f64;
                for o in &outs {
                    intra_msgs += o.stats.intra_msgs;
                    inter_msgs += o.stats.inter_msgs;
                    intra_bytes += o.stats.intra_bytes;
                    inter_bytes += o.stats.inter_bytes;
                }
                let want = exact_wire_counts_dtype(&cluster, seq, d, method, dtype);
                assert_eq!(
                    (intra_msgs, inter_msgs),
                    (want.intra_msgs, want.inter_msgs),
                    "{name} {nodes}x{gpn} {}: message census mismatch",
                    dtype.label()
                );
                assert_eq!(
                    (intra_bytes, inter_bytes),
                    (want.intra_bytes, want.inter_bytes),
                    "{name} {nodes}x{gpn} {}: byte census mismatch",
                    dtype.label()
                );
            }
        }
    }
}

/// A world of one carries nothing on the wire: collectives degenerate to
/// copies, the census predicts zero, and the measured stats agree.
#[test]
fn single_rank_world_moves_no_bytes() {
    let world = World::new(Topology::single_node(1));
    let outs = world.run(|comm| {
        let x = rank_mat(0, 4, 3, 9);
        let r = comm.all_reduce_mat(&x);
        assert_bits_eq("g=1 all_reduce is identity", r.as_slice(), x.as_slice());
        let gathered = comm.all_gather_mat(&x);
        assert_eq!(gathered.len(), 1);
        let swapped = comm.all_to_all_mat(vec![x.clone()]);
        assert_bits_eq(
            "g=1 all_to_all is identity",
            swapped[0].as_slice(),
            x.as_slice(),
        );
    });
    let stats = &outs[0].stats;
    assert_eq!(stats.total_msgs(), 0, "single rank sent messages");
    assert_eq!(stats.intra_bytes + stats.inter_bytes, 0.0);
    let cluster = Cluster::a800(1, 1);
    let counts = exact_wire_counts(&cluster, 32, 8, RingMethod::Ring);
    assert_eq!(counts.msgs(), 0);
    assert_eq!(counts.bytes(), 0.0);
}
