//! The differential harness: run a distributed schedule on the simulated
//! cluster, reassemble the sharded outputs into **global row order**, and
//! hand back something directly comparable to the serial oracle.
//!
//! Every runner here returns per-token tensors indexed by global position,
//! regardless of how the schedule sharded the sequence (contiguous, zigzag,
//! striped, head-parallel, or an elastic re-partition after an eviction) —
//! reassembly is the harness's job so the comparisons stay one-liners.

use burst_comm::{CommError, FaultPlan, Membership, RetryPolicy, Topology, World};
use burst_dattn::ring::AttnFailure;
use burst_dattn::ulysses::{try_ulysses_backward, try_ulysses_forward};
use burst_dattn::usp::{try_usp_backward, try_usp_forward, UspTopo};
use burst_dattn::{
    try_elastic_attention_opts, try_run_attention_opts, Algo, CostModel, DattnError, ElasticOpts,
    Layout, ShardData,
};
use burst_kernels::AttnMask;
use burst_model::engine::{run_span, run_span_elastic, ElasticCfg, EngineConfig};
use burst_model::Model;
use burst_tensor::{randn_mat, Mat};

/// A schedule's attention outputs reassembled into global row order.
#[derive(Debug, Clone)]
pub struct GlobalAttn {
    pub o: Mat,
    pub lse: Vec<f32>,
    pub dq: Mat,
    pub dk: Mat,
    pub dv: Mat,
}

impl GlobalAttn {
    fn empty(n: usize, d: usize) -> Self {
        GlobalAttn {
            o: Mat::zeros(n, d),
            lse: vec![0.0; n],
            dq: Mat::zeros(n, d),
            dk: Mat::zeros(n, d),
            dv: Mat::zeros(n, d),
        }
    }

    fn scatter(&mut self, idx: &[usize], o: &Mat, lse: &[f32], dq: &Mat, dk: &Mat, dv: &Mat) {
        for (r, &g) in idx.iter().enumerate() {
            self.o.row_mut(g).copy_from_slice(o.row(r));
            self.lse[g] = lse[r];
            self.dq.row_mut(g).copy_from_slice(dq.row(r));
            self.dk.row_mut(g).copy_from_slice(dk.row(r));
            self.dv.row_mut(g).copy_from_slice(dv.row(r));
        }
    }
}

/// Deterministic global Q/K/V/∇O for a differential case.
pub fn attn_inputs(n: usize, d: usize, seed: u64) -> (Mat, Mat, Mat, Mat) {
    (
        randn_mat(n, d, 0.7, seed.wrapping_mul(4) + 1),
        randn_mat(n, d, 0.7, seed.wrapping_mul(4) + 2),
        randn_mat(n, d, 0.7, seed.wrapping_mul(4) + 3),
        randn_mat(n, d, 0.8, seed.wrapping_mul(4) + 4),
    )
}

fn head_scale(d: usize) -> f32 {
    1.0 / (d as f32).sqrt()
}

fn world_for(topo: &Topology, plan: Option<&FaultPlan>) -> World {
    match plan {
        Some(p) => World::with_faults(topo.clone(), p.clone()),
        None => World::new(topo.clone()),
    }
}

/// Run a ring-family schedule (flat ring, BurstAttention backward,
/// double-ring, or topology-aware Burst) and reassemble.
#[allow(clippy::too_many_arguments)]
pub fn run_ring_family(
    algo: Algo,
    layout: Layout,
    topo: &Topology,
    n: usize,
    d: usize,
    seed: u64,
    mask: &AttnMask,
    plan: Option<&FaultPlan>,
) -> Result<GlobalAttn, AttnFailure> {
    run_ring_family_opts(algo, layout, topo, n, d, seed, mask, plan, false)
}

/// [`run_ring_family`] with mask-aware round skipping toggled explicitly —
/// the entry point for the skip-on vs skip-off bit-identity cells.
#[allow(clippy::too_many_arguments)]
pub fn run_ring_family_opts(
    algo: Algo,
    layout: Layout,
    topo: &Topology,
    n: usize,
    d: usize,
    seed: u64,
    mask: &AttnMask,
    plan: Option<&FaultPlan>,
    skip: bool,
) -> Result<GlobalAttn, AttnFailure> {
    let g = topo.world_size();
    let (q, k, v, go) = attn_inputs(n, d, seed);
    let world = world_for(topo, plan);
    let mask = mask.clone();
    let outs = world.run_faulty::<_, AttnFailure, _>(move |comm| {
        let idx = layout.indices(n, g, comm.rank());
        let (o, lse, dq, dk, dv) = try_run_attention_opts(
            algo,
            comm,
            &q.gather_rows(&idx),
            &k.gather_rows(&idx),
            &v.gather_rows(&idx),
            &go.gather_rows(&idx),
            head_scale(d),
            &mask,
            layout,
            n,
            &CostModel::free(),
            skip,
        )?;
        Ok((idx, o, lse, dq, dk, dv))
    });
    let mut global = GlobalAttn::empty(n, d);
    for out in outs {
        let (idx, o, lse, dq, dk, dv) = out.result?;
        global.scatter(&idx, &o, &lse, &dq, &dk, &dv);
    }
    Ok(global)
}

/// Run pure Ulysses head parallelism (one all-to-all each way) over
/// `heads` heads and reassemble each head separately.
#[allow(clippy::too_many_arguments)]
pub fn run_ulysses(
    topo: &Topology,
    n: usize,
    d: usize,
    heads: usize,
    seed: u64,
    mask: &AttnMask,
    plan: Option<&FaultPlan>,
) -> Result<Vec<GlobalAttn>, DattnError> {
    let g = topo.world_size();
    let per_head: Vec<(Mat, Mat, Mat, Mat)> = (0..heads)
        .map(|h| attn_inputs(n, d, seed.wrapping_mul(64) + h as u64))
        .collect();
    let world = world_for(topo, plan);
    let mask = mask.clone();
    let inputs = per_head.clone();
    let outs = world.run_faulty::<_, DattnError, _>(move |comm| {
        let members: Vec<usize> = (0..g).collect();
        let member_idx: Vec<Vec<usize>> = (0..g)
            .map(|r| Layout::Contiguous.indices(n, g, r))
            .collect();
        let idx = member_idx[comm.rank()].clone();
        let gather = |sel: fn(&(Mat, Mat, Mat, Mat)) -> &Mat| -> Vec<Mat> {
            inputs.iter().map(|t| sel(t).gather_rows(&idx)).collect()
        };
        let q_heads = gather(|t| &t.0);
        let k_heads = gather(|t| &t.1);
        let v_heads = gather(|t| &t.2);
        let go_heads = gather(|t| &t.3);
        let (o_heads, saved) = try_ulysses_forward(
            comm,
            &members,
            &member_idx,
            &q_heads,
            &k_heads,
            &v_heads,
            head_scale(d),
            &mask,
            &CostModel::free(),
        )?;
        let (dq, dk, dv) = try_ulysses_backward(
            comm,
            &members,
            &member_idx,
            &saved,
            &go_heads,
            head_scale(d),
            &mask,
            &CostModel::free(),
        )?;
        Ok((idx, o_heads, dq, dk, dv))
    });
    let mut global: Vec<GlobalAttn> = (0..heads).map(|_| GlobalAttn::empty(n, d)).collect();
    for out in outs {
        let (idx, o_heads, dq, dk, dv) = out.result?;
        for h in 0..heads {
            let lse = vec![0.0f32; idx.len()]; // Ulysses returns no per-rank lse
            global[h].scatter(&idx, &o_heads[h], &lse, &dq[h], &dk[h], &dv[h]);
        }
    }
    Ok(global)
}

/// Run USP (Ulysses groups of size `ulysses_size` nested in zigzag rings)
/// and reassemble each head separately.
#[allow(clippy::too_many_arguments)]
pub fn run_usp(
    topo: &Topology,
    n: usize,
    d: usize,
    heads: usize,
    ulysses_size: usize,
    seed: u64,
    mask: &AttnMask,
    plan: Option<&FaultPlan>,
) -> Result<Vec<GlobalAttn>, DattnError> {
    run_usp_opts(topo, n, d, heads, ulysses_size, seed, mask, plan, false)
}

/// [`run_usp`] with mask-aware skipping on the ring legs toggled explicitly
/// (the Ulysses all-to-all legs have no rounds to skip).
#[allow(clippy::too_many_arguments)]
pub fn run_usp_opts(
    topo: &Topology,
    n: usize,
    d: usize,
    heads: usize,
    ulysses_size: usize,
    seed: u64,
    mask: &AttnMask,
    plan: Option<&FaultPlan>,
    skip: bool,
) -> Result<Vec<GlobalAttn>, DattnError> {
    let per_head: Vec<(Mat, Mat, Mat, Mat)> = (0..heads)
        .map(|h| attn_inputs(n, d, seed.wrapping_mul(64) + h as u64))
        .collect();
    let world = world_for(topo, plan);
    let mask = mask.clone();
    let inputs = per_head.clone();
    let outs = world.run_faulty::<_, DattnError, _>(move |comm| {
        let utopo = UspTopo::new(comm, ulysses_size).with_skip(skip);
        let idx = utopo.local_idx(n);
        let gather = |sel: fn(&(Mat, Mat, Mat, Mat)) -> &Mat| -> Vec<Mat> {
            inputs.iter().map(|t| sel(t).gather_rows(&idx)).collect()
        };
        let q_heads = gather(|t| &t.0);
        let k_heads = gather(|t| &t.1);
        let v_heads = gather(|t| &t.2);
        let go_heads = gather(|t| &t.3);
        let (o_heads, saved) = try_usp_forward(
            comm,
            &utopo,
            &q_heads,
            &k_heads,
            &v_heads,
            head_scale(d),
            &mask,
            n,
            &CostModel::free(),
        )?;
        let (dq, dk, dv) = try_usp_backward(
            comm,
            &utopo,
            &saved,
            &go_heads,
            head_scale(d),
            &mask,
            n,
            &CostModel::free(),
        )?;
        Ok((idx, o_heads, dq, dk, dv))
    });
    let mut global: Vec<GlobalAttn> = (0..heads).map(|_| GlobalAttn::empty(n, d)).collect();
    for out in outs {
        let (idx, o_heads, dq, dk, dv) = out.result?;
        for h in 0..heads {
            let lse = vec![0.0f32; idx.len()];
            global[h].scatter(&idx, &o_heads[h], &lse, &dq[h], &dk[h], &dv[h]);
        }
    }
    Ok(global)
}

/// What an elastic run produced beyond the tensors: who was evicted, how
/// many ring attempts it took, and how often a topology-aware schedule had
/// to fall back to the flat ring on a ragged survivor set.
#[derive(Debug, Clone)]
pub struct ElasticOutcome {
    pub attn: GlobalAttn,
    pub evicted: Vec<usize>,
    pub attempts: usize,
    pub flat_fallbacks: usize,
}

/// Run elastic attention on an `orig_world`-rank zigzag ring with a fault
/// plan (typically a mid-ring crash). Survivors evict the dead, re-partition
/// from "checkpoint" shards (served straight from the global tensors) and
/// re-run; the reassembled result covers **all** `n` rows.
pub fn run_elastic(
    orig_world: usize,
    n: usize,
    d: usize,
    seed: u64,
    plan: Option<&FaultPlan>,
) -> Result<ElasticOutcome, AttnFailure> {
    run_elastic_on(
        &Topology::single_node(orig_world),
        n,
        d,
        seed,
        plan,
        ElasticOpts::default(),
    )
}

/// [`run_elastic`] on an explicit (typically multi-node) topology with
/// [`ElasticOpts`] — the entry point for the topology-aware double-ring
/// elastic cells.
pub fn run_elastic_on(
    topo: &Topology,
    n: usize,
    d: usize,
    seed: u64,
    plan: Option<&FaultPlan>,
    opts: ElasticOpts,
) -> Result<ElasticOutcome, AttnFailure> {
    run_elastic_masked_on(
        topo,
        n,
        d,
        seed,
        &AttnMask::Causal,
        Layout::Zigzag,
        plan,
        opts,
    )
}

/// [`run_elastic_on`] with an explicit mask and layout — the entry point
/// for the sparse-mask elastic cells and their skip-on/off twins.
#[allow(clippy::too_many_arguments)]
pub fn run_elastic_masked_on(
    topo: &Topology,
    n: usize,
    d: usize,
    seed: u64,
    mask: &AttnMask,
    layout: Layout,
    plan: Option<&FaultPlan>,
    opts: ElasticOpts,
) -> Result<ElasticOutcome, AttnFailure> {
    let orig_world = topo.world_size();
    let (q, k, v, go) = attn_inputs(n, d, seed);
    let world = world_for(topo, plan);
    let (qc, kc, vc, goc) = (q.clone(), k.clone(), v.clone(), go.clone());
    let mask = mask.clone();
    let outs = world.run_faulty::<_, AttnFailure, _>(move |comm| {
        let mut m = Membership::new(comm.world_size());
        let policy = RetryPolicy::default();
        let shard_of = |r: usize| -> ShardData {
            let idx = layout.indices(n, orig_world, r);
            (
                qc.gather_rows(&idx),
                kc.gather_rows(&idx),
                vc.gather_rows(&idx),
                goc.gather_rows(&idx),
            )
        };
        let (sq, sk, sv, sgo) = shard_of(comm.rank());
        let mut load = |r: usize| shard_of(r);
        let out = try_elastic_attention_opts(
            comm,
            &mut m,
            &sq,
            &sk,
            &sv,
            &sgo,
            head_scale(d),
            &mask,
            layout,
            n,
            &CostModel::free(),
            &mut load,
            &policy,
            opts,
        )?;
        Ok(out)
    });
    let mut global = GlobalAttn::empty(n, d);
    let mut evicted: Vec<usize> = Vec::new();
    let mut attempts = 1usize;
    let mut flat_fallbacks = 0usize;
    let mut survivors = 0usize;
    for out in outs {
        match out.result {
            Ok(e) => {
                global.scatter(&e.idx, &e.o, &e.lse, &e.dq, &e.dk, &e.dv);
                for r in e.evicted {
                    if !evicted.contains(&r) {
                        evicted.push(r);
                    }
                }
                attempts = attempts.max(e.attempts);
                flat_fallbacks = flat_fallbacks.max(e.flat_fallbacks);
                survivors += 1;
            }
            Err(e) => {
                // The dead rank reports its own crash; anything else is a
                // real failure the caller must see.
                if !matches!(e.source, CommError::Crashed { .. }) {
                    return Err(e);
                }
            }
        }
    }
    assert!(survivors > 0, "elastic run lost every rank");
    evicted.sort_unstable();
    Ok(ElasticOutcome {
        attn: global,
        evicted,
        attempts,
        flat_fallbacks,
    })
}

// ---------------------------------------------------------------------------
// Engine-level differential runs.
// ---------------------------------------------------------------------------

/// What one engine training run produced, reduced to the comparable facts.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRun {
    /// Global mean loss of every step.
    pub losses: Vec<f32>,
    /// Final flattened training state (identical across FSDP replicas —
    /// asserted bit-exactly before this struct is built).
    pub flat: Vec<f32>,
    /// How many optimizer steps were skipped in lockstep
    /// (gradient-poison recovery).
    pub skipped: usize,
}

/// Train `steps` steps on a fresh cluster and return the run's facts.
/// Every rank's parameter replica is asserted **bit-identical** (the FSDP
/// invariant) before rank 0's copy is returned.
pub fn engine_run(
    cfg: &EngineConfig,
    topo: &Topology,
    steps: usize,
    plan: Option<&FaultPlan>,
) -> Result<EngineRun, CommError> {
    engine_span(cfg, topo, 0, steps, None, plan)
}

/// Train steps `start..end`, optionally resuming from a flattened state
/// (`init`, as produced by a previous [`EngineRun::flat] at `start`).
pub fn engine_span(
    cfg: &EngineConfig,
    topo: &Topology,
    start: usize,
    end: usize,
    init: Option<&[f32]>,
    plan: Option<&FaultPlan>,
) -> Result<EngineRun, CommError> {
    let world = world_for(topo, plan);
    let cfg = cfg.clone();
    let init: Option<Vec<f32>> = init.map(|s| s.to_vec());
    let outs = world.run_faulty::<_, CommError, _>(move |comm| {
        let mut model = Model::new(cfg.model, cfg.seed);
        if let Some(flat) = &init {
            model.load_flat_state(flat);
        }
        let span = run_span(comm, &cfg, &mut model, start, end, |_, _, _, _| {})?;
        Ok((span.losses, model.flat_state(), span.skipped_steps))
    });
    let mut first: Option<EngineRun> = None;
    for out in outs {
        let (losses, flat, skipped) = out.result?;
        match &first {
            None => {
                first = Some(EngineRun {
                    losses,
                    flat,
                    skipped,
                })
            }
            Some(f) => {
                assert_eq!(f.losses, losses, "ranks disagree on the global loss");
                assert_eq!(f.skipped, skipped, "ranks disagree on skipped steps");
                crate::assert_bits_eq("fsdp replica", &f.flat, &flat);
            }
        }
    }
    Ok(first.expect("world has at least one rank"))
}

/// What an **elastic** engine run produced: the comparable training facts
/// plus the membership history in-step recovery and scheduled churn left
/// behind.
#[derive(Debug, Clone)]
pub struct ElasticEngineRun {
    /// Global mean loss of every step (full history, bit-comparable to a
    /// segmented reference of fresh worlds chained with [`engine_span`]).
    pub losses: Vec<f32>,
    /// Final flattened training state of the finishing ranks (asserted
    /// bit-identical across them).
    pub flat: Vec<f32>,
    /// Ranks evicted by in-step recovery, sorted.
    pub evicted: Vec<usize>,
    /// Ranks re-admitted by the Join leg, in admission order.
    pub rejoined: Vec<usize>,
    /// Steps replayed from their top by in-step recovery.
    pub steps_replayed: usize,
    /// Optimizer steps skipped in lockstep (gradient poison).
    pub skipped: usize,
}

/// Train `steps` steps **elastically** ([`run_span_elastic`]): mid-step
/// faults are repaired inside the failed step, scheduled churn shrinks and
/// regrows the ring. Ranks that leave for good (parked) or die are
/// excluded from the result; the finishing ranks' replicas are asserted
/// bit-identical. `ckpt_dir` is required when the plan schedules joins.
pub fn engine_elastic(
    cfg: &EngineConfig,
    topo: &Topology,
    steps: usize,
    plan: Option<&FaultPlan>,
    ckpt_dir: Option<&std::path::Path>,
    every: usize,
) -> Result<ElasticEngineRun, CommError> {
    let world = world_for(topo, plan);
    let cfg = cfg.clone();
    let ecfg = ElasticCfg {
        policy: RetryPolicy::default(),
        ckpt_dir: ckpt_dir.map(|p| p.to_path_buf()),
        every,
        max_replays_per_step: 0,
    };
    let outs = world.run_faulty::<_, CommError, _>(move |comm| {
        let mut model = Model::new(cfg.model, cfg.seed);
        let out = run_span_elastic(comm, &cfg, &mut model, 0, steps, &[], &ecfg)?;
        Ok((out, model.flat_state()))
    });
    let mut first: Option<ElasticEngineRun> = None;
    for out in outs {
        match out.result {
            Ok((eo, flat)) => {
                if eo.parked_at.is_some() {
                    continue; // left the job for good — not a finisher
                }
                let mut evicted = eo.evicted;
                evicted.sort_unstable();
                evicted.dedup();
                let run = ElasticEngineRun {
                    losses: eo.losses,
                    flat,
                    evicted,
                    rejoined: eo.rejoined,
                    steps_replayed: eo.steps_replayed,
                    skipped: eo.skipped_steps,
                };
                match &first {
                    None => first = Some(run),
                    Some(f) => {
                        assert_eq!(
                            f.losses, run.losses,
                            "ranks disagree on the elastic loss history"
                        );
                        crate::assert_bits_eq("elastic replica", &f.flat, &run.flat);
                    }
                }
            }
            Err(e) => {
                // A crashed rank reports its own death; anything else is a
                // real failure the caller must see.
                if !matches!(e, CommError::Crashed { .. } | CommError::Panicked { .. }) {
                    return Err(e);
                }
            }
        }
    }
    Ok(first.expect("elastic engine run lost every rank"))
}

/// Op count `rank` has accumulated after `s` **clean** elastic steps on a
/// fresh `topo` world — for aiming a [`FaultPlan::crash_at_op`] inside a
/// specific training step.
pub fn elastic_ops_after(cfg: &EngineConfig, topo: &Topology, rank: usize, s: usize) -> u64 {
    let world = World::new(topo.clone());
    let cfg = cfg.clone();
    let outs = world.run_results(move |comm| {
        let mut model = Model::new(cfg.model, cfg.seed);
        run_span_elastic(comm, &cfg, &mut model, 0, s, &[], &ElasticCfg::default())
            .expect("clean elastic probe failed");
        comm.op_count()
    });
    outs[rank]
}

/// Train to `cut`, drop the world, then resume `cut..steps` on a fresh
/// cluster from the flattened state — the checkpoint/resume differential.
/// The fault plan applies to the **first** phase only (the resumed phase
/// runs clean, as after a real recovery).
pub fn engine_resume(
    cfg: &EngineConfig,
    topo: &Topology,
    cut: usize,
    steps: usize,
    plan: Option<&FaultPlan>,
) -> Result<EngineRun, CommError> {
    assert!(cut <= steps, "resume cut {cut} beyond {steps} steps");
    let phase1 = engine_span(cfg, topo, 0, cut, None, plan)?;
    if cut == steps {
        return Ok(phase1);
    }
    let phase2 = engine_span(cfg, topo, cut, steps, Some(&phase1.flat), None)?;
    let mut losses = phase1.losses;
    losses.extend(phase2.losses);
    Ok(EngineRun {
        losses,
        flat: phase2.flat,
        skipped: phase1.skipped + phase2.skipped,
    })
}
