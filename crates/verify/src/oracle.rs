//! The serial oracle: ground-truth attention and train-step with no
//! communication, no tiling, and no online softmax.
//!
//! Scores are materialised as an explicit `n × n` matrix and every
//! reduction (row max, softmax normaliser, matmuls, loss) accumulates in
//! `f64`, rounding to `f32` exactly once at the output boundary. Against
//! this reference, any `f32` schedule's deviation is pure rounding noise —
//! a real algorithmic divergence (wrong LSE merge, dropped tile, stale
//! gradient) exceeds the documented bounds by orders of magnitude.

use burst_kernels::AttnMask;
use burst_model::attention::{AttnExec, AttnOut};
use burst_model::engine::{synthetic_batch, EngineConfig};
use burst_model::{Model, Strategy};
use burst_tensor::Mat;

/// Ground-truth attention outputs for one head over global rows `0..n`.
#[derive(Debug, Clone)]
pub struct OracleAttn {
    pub o: Mat,
    pub lse: Vec<f32>,
    pub dq: Mat,
    pub dk: Mat,
    pub dv: Mat,
}

fn f64_rows(m: &Mat) -> Vec<Vec<f64>> {
    (0..m.rows())
        .map(|r| m.row(r).iter().map(|&x| x as f64).collect())
        .collect()
}

fn to_mat(rows: &[Vec<f64>]) -> Mat {
    let r = rows.len();
    let c = rows.first().map(|v| v.len()).unwrap_or(0);
    Mat::from_fn(r, c, |i, j| rows[i][j] as f32)
}

/// Naive softmax attention forward in `f64`: explicit scores, two-pass
/// softmax (max, then exp-sum). `q_idx`/`k_idx` are the *global* token
/// indices of the rows, consulted by the mask exactly as the kernels do.
pub fn oracle_forward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> (Mat, Vec<f32>) {
    let (qf, kf, vf) = (f64_rows(q), f64_rows(k), f64_rows(v));
    let d = q.cols();
    let dv = v.cols();
    let scale = scale as f64;
    let mut o = vec![vec![0.0f64; dv]; q.rows()];
    let mut lse = vec![0.0f32; q.rows()];
    for (i, &qi) in q_idx.iter().enumerate() {
        let mut s = vec![f64::NEG_INFINITY; k.rows()];
        let mut m = f64::NEG_INFINITY;
        for (j, &kj) in k_idx.iter().enumerate() {
            if !mask.allowed(qi, kj) {
                continue;
            }
            let mut dot = 0.0f64;
            for c in 0..d {
                dot += qf[i][c] * kf[j][c];
            }
            s[j] = dot * scale;
            m = m.max(s[j]);
        }
        assert!(
            m.is_finite(),
            "oracle_forward: query {qi} attends to nothing"
        );
        let mut l = 0.0f64;
        let mut acc = vec![0.0f64; dv];
        for j in 0..k.rows() {
            if s[j] == f64::NEG_INFINITY {
                continue;
            }
            let p = (s[j] - m).exp();
            l += p;
            for c in 0..dv {
                acc[c] += p * vf[j][c];
            }
        }
        for c in 0..dv {
            o[i][c] = acc[c] / l;
        }
        lse[i] = (m + l.ln()) as f32;
    }
    (to_mat(&o), lse)
}

/// Naive attention backward in `f64` (recomputes the probability matrix
/// from scratch — the oracle never trusts saved state).
#[allow(clippy::too_many_arguments)]
pub fn oracle_backward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> (Mat, Mat, Mat) {
    let (qf, kf, vf, gof) = (f64_rows(q), f64_rows(k), f64_rows(v), f64_rows(grad_o));
    let d = q.cols();
    let dvc = v.cols();
    let scale = scale as f64;
    let mut dq = vec![vec![0.0f64; d]; q.rows()];
    let mut dk = vec![vec![0.0f64; d]; k.rows()];
    let mut dv = vec![vec![0.0f64; dvc]; v.rows()];
    for (i, &qi) in q_idx.iter().enumerate() {
        // Recompute row i of P = softmax(S).
        let mut s = vec![f64::NEG_INFINITY; k.rows()];
        let mut m = f64::NEG_INFINITY;
        for (j, &kj) in k_idx.iter().enumerate() {
            if !mask.allowed(qi, kj) {
                continue;
            }
            let mut dot = 0.0f64;
            for c in 0..d {
                dot += qf[i][c] * kf[j][c];
            }
            s[j] = dot * scale;
            m = m.max(s[j]);
        }
        let mut l = 0.0f64;
        for &sj in &s {
            if sj != f64::NEG_INFINITY {
                l += (sj - m).exp();
            }
        }
        let p: Vec<f64> = s
            .iter()
            .map(|&sj| {
                if sj == f64::NEG_INFINITY {
                    0.0
                } else {
                    (sj - m).exp() / l
                }
            })
            .collect();
        // dP_ij = dO_i · V_j ;  δ_i = Σ_j P_ij dP_ij ;  dS = P ∘ (dP − δ).
        let mut dp = vec![0.0f64; k.rows()];
        let mut delta = 0.0f64;
        for j in 0..k.rows() {
            if p[j] == 0.0 {
                continue;
            }
            let mut dot = 0.0f64;
            for c in 0..dvc {
                dot += gof[i][c] * vf[j][c];
            }
            dp[j] = dot;
            delta += p[j] * dot;
        }
        for j in 0..k.rows() {
            if p[j] == 0.0 {
                continue;
            }
            let ds = p[j] * (dp[j] - delta) * scale;
            for c in 0..d {
                dq[i][c] += ds * kf[j][c];
                dk[j][c] += ds * qf[i][c];
            }
            for c in 0..dvc {
                dv[j][c] += p[j] * gof[i][c];
            }
        }
    }
    (to_mat(&dq), to_mat(&dk), to_mat(&dv))
}

/// Forward + backward in one call (the attention-level differential target).
pub fn oracle_attention(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    scale: f32,
    mask: &AttnMask,
) -> OracleAttn {
    let n = q.rows();
    let idx: Vec<usize> = (0..n).collect();
    let (o, lse) = oracle_forward(q, k, v, scale, mask, &idx, &idx);
    let (dq, dk, dv) = oracle_backward(q, k, v, grad_o, scale, mask, &idx, &idx);
    OracleAttn { o, lse, dq, dk, dv }
}

/// The oracle's [`AttnExec`]: plugs the `f64` naive kernels into the full
/// model so [`oracle_train`] exercises embeddings, RoPE, norms, FFNs and
/// the LM head on the identical code path the engine uses — only the
/// attention itself (and, via `lm_tiles: None`, the LM-head fusion) is
/// swapped for the reference computation.
pub struct OracleExec {
    pub mask: AttnMask,
    pub seq_len: usize,
}

impl OracleExec {
    pub fn new(mask: AttnMask, seq_len: usize) -> Self {
        OracleExec { mask, seq_len }
    }
}

impl AttnExec for OracleExec {
    fn forward(&mut self, q: &[Mat], k: &[Mat], v: &[Mat]) -> AttnOut {
        let idx = self.local_indices();
        let mut o = Vec::with_capacity(q.len());
        let mut lse = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            let scale = 1.0 / (q[h].cols() as f32).sqrt();
            let (oh, lh) = oracle_forward(&q[h], &k[h], &v[h], scale, &self.mask, &idx, &idx);
            o.push(oh);
            lse.push(lh);
        }
        (o, lse)
    }

    fn backward(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        _o: &[Mat],
        _lse: &[Vec<f32>],
        grad_o: &[Mat],
    ) -> (Vec<Mat>, Vec<Mat>, Vec<Mat>) {
        let idx = self.local_indices();
        let mut dq = Vec::with_capacity(q.len());
        let mut dk = Vec::with_capacity(q.len());
        let mut dv = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            let scale = 1.0 / (q[h].cols() as f32).sqrt();
            let (a, b, c) = oracle_backward(
                &q[h], &k[h], &v[h], &grad_o[h], scale, &self.mask, &idx, &idx,
            );
            dq.push(a);
            dk.push(b);
            dv.push(c);
        }
        (dq, dk, dv)
    }

    fn local_indices(&self) -> Vec<usize> {
        (0..self.seq_len).collect()
    }

    fn mask(&self) -> &AttnMask {
        &self.mask
    }
}

/// What one oracle training run produced.
#[derive(Debug, Clone)]
pub struct OracleTrain {
    /// Global mean loss of every step (skipped steps included).
    pub losses: Vec<f32>,
    /// Final training state (weights, gradients, Adam moments), flattened
    /// in the model's stable parameter order.
    pub flat: Vec<f32>,
}

/// The serial oracle train-step: single rank, no communication, naive `f64`
/// attention, unfused LM head. Mirrors [`burst_model::engine::run_span`]'s
/// step structure exactly — synthetic batch and Adam bias correction are
/// keyed by the *absolute* step index, micro-batches accumulate, and
/// `skip_steps` reproduces the engine's lockstep skip decision (gradients
/// discarded, optimizer untouched) so faulty runs stay comparable.
pub fn oracle_train(cfg: &EngineConfig, steps: usize, skip_steps: &[usize]) -> OracleTrain {
    let n = cfg.model.seq_len;
    let accum = cfg.grad_accum.max(1);
    let mut model = Model::new(cfg.model, cfg.seed);
    // The unfused reference LM head: `lm_tiles: None` selects
    // `naive_lm_loss`, the materialised-logits path.
    model.lm_tiles = None;
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        model.zero_grads();
        if cfg.emulate_bf16 {
            for p in model.params_mut() {
                p.w.round_bf16_inplace();
            }
        }
        let mut step_loss_sum = 0.0f64;
        for micro in 0..accum {
            let (tokens, targets) = synthetic_batch(&cfg.model, step * accum + micro);
            let mut exec = OracleExec::new(cfg.mask.clone(), n);
            let out = model.train_step(&tokens, &targets, &mut exec, Strategy::None, n * accum);
            step_loss_sum += out.loss_sum as f64;
        }
        losses.push((step_loss_sum / (n * accum) as f64) as f32);
        if skip_steps.contains(&step) {
            // The engine's skip-in-lockstep path: the step's gradients are
            // discarded, weights and Adam state stay at the last good step.
            model.zero_grads();
            continue;
        }
        model.adam_step(&cfg.adam, step as u64 + 1);
    }
    OracleTrain {
        losses,
        flat: model.flat_state(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_model::engine::Backend;
    use burst_tensor::randn_mat;

    #[test]
    fn oracle_matches_itself_bitwise() {
        let (q, k, v, go) = (
            randn_mat(16, 8, 0.7, 1),
            randn_mat(16, 8, 0.7, 2),
            randn_mat(16, 8, 0.7, 3),
            randn_mat(16, 8, 0.8, 4),
        );
        let a = oracle_attention(&q, &k, &v, &go, 0.35, &AttnMask::Causal);
        let b = oracle_attention(&q, &k, &v, &go, 0.35, &AttnMask::Causal);
        crate::assert_bits_eq("o", a.o.as_slice(), b.o.as_slice());
        crate::assert_bits_eq("dq", a.dq.as_slice(), b.dq.as_slice());
    }

    #[test]
    fn causal_first_row_attends_only_to_itself() {
        let (q, k, v, go) = (
            randn_mat(8, 4, 0.7, 5),
            randn_mat(8, 4, 0.7, 6),
            randn_mat(8, 4, 0.7, 7),
            randn_mat(8, 4, 0.8, 8),
        );
        let a = oracle_attention(&q, &k, &v, &go, 0.5, &AttnMask::Causal);
        // Row 0 of a causal attention is exactly V[0] (softmax over one key).
        for c in 0..4 {
            assert!((a.o.get(0, c) - v.get(0, c)).abs() < 1e-6);
        }
        assert_eq!(a.o.rows(), 8);
        assert_eq!(a.dk.rows(), 8);
    }

    #[test]
    fn gradcheck_against_finite_differences() {
        // f64 central differences on a scalar objective sum(O ∘ G) must
        // match the analytic dQ/dK/dV to ~sqrt(eps_f32) — the classic
        // gradient check, run on the oracle itself.
        let n = 6;
        let d = 3;
        let (q, k, v, go) = (
            randn_mat(n, d, 0.6, 11),
            randn_mat(n, d, 0.6, 12),
            randn_mat(n, d, 0.6, 13),
            randn_mat(n, d, 0.5, 14),
        );
        let scale = 0.7f32;
        let mask = AttnMask::Causal;
        let base = oracle_attention(&q, &k, &v, &go, scale, &mask);
        let objective = |q: &Mat, k: &Mat, v: &Mat| -> f64 {
            let idx: Vec<usize> = (0..n).collect();
            let (o, _) = oracle_forward(q, k, v, scale, &mask, &idx, &idx);
            o.as_slice()
                .iter()
                .zip(go.as_slice())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };
        let eps = 1e-3f32;
        let check = |which: &str, m: &Mat, grad: &Mat, sel: usize| {
            let (r, c) = (sel / d, sel % d);
            let mut plus = m.clone();
            plus.set(r, c, m.get(r, c) + eps);
            let mut minus = m.clone();
            minus.set(r, c, m.get(r, c) - eps);
            let (fp, fm) = match which {
                "q" => (objective(&plus, &k, &v), objective(&minus, &k, &v)),
                "k" => (objective(&q, &plus, &v), objective(&q, &minus, &v)),
                _ => (objective(&q, &k, &plus), objective(&q, &k, &minus)),
            };
            let fd = ((fp - fm) / (2.0 * eps as f64)) as f32;
            let an = grad.get(r, c);
            assert!(
                (fd - an).abs() < 2e-3 + 2e-2 * an.abs(),
                "{which}[{r},{c}]: finite-diff {fd} vs analytic {an}"
            );
        };
        for sel in [0, 7, n * d - 1] {
            check("q", &q, &base.dq, sel);
            check("k", &k, &base.dk, sel);
            check("v", &v, &base.dv, sel);
        }
    }

    #[test]
    fn oracle_train_is_deterministic_and_learns() {
        let cfg = EngineConfig::tiny(Backend::Local);
        let a = oracle_train(&cfg, 3, &[]);
        let b = oracle_train(&cfg, 3, &[]);
        crate::assert_bits_eq("flat", &a.flat, &b.flat);
        assert_eq!(a.losses, b.losses);
        assert!(
            a.losses[2] < a.losses[0],
            "loss must fall on the synthetic stream: {:?}",
            a.losses
        );
    }

    #[test]
    fn oracle_train_skip_freezes_the_optimizer() {
        let cfg = EngineConfig::tiny(Backend::Local);
        let skipped = oracle_train(&cfg, 1, &[0]);
        // A skipped step discards its gradients and never touches Adam, so
        // the full state equals a freshly initialised model's bit-for-bit
        // (`lm_tiles` changes the compute path, not the parameters).
        let reference = Model::new(cfg.model, cfg.seed).flat_state();
        crate::assert_bits_eq("skipped step leaves state", &skipped.flat, &reference);
    }
}
