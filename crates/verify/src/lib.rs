//! # burst-verify
//!
//! The correctness backbone of the reproduction: every distributed schedule
//! in this workspace — ring, double-ring, Ulysses, USP, the elastic
//! shrunken ring, and the full training engine on top of them — claims to
//! compute **the same function** as a plain serial transformer. This crate
//! turns that claim into an executable gate:
//!
//! * [`oracle`] — the ground truth: single-rank forward/backward/train-step
//!   with no communication, no tiling, no online softmax. Score matrices
//!   are materialised explicitly and every reduction runs in `f64`, so the
//!   oracle's rounding error is negligible next to any `f32` schedule.
//! * [`diff`] — the differential harness: runs a schedule on the simulated
//!   cluster, reassembles the sharded outputs into global row order, and
//!   compares them (and gradients, losses, optimizer state) against the
//!   oracle under the documented bounds below.
//!
//! ## Exactness model
//!
//! Two tiers, asserted separately:
//!
//! 1. **Oracle bounds** (`ORACLE_*` constants): a distributed `f32`
//!    schedule can never bit-match an `f64` oracle — flash attention's
//!    online softmax and the ring's partial-sum merge order both reorder
//!    floating-point reductions. What *is* guaranteed is that the result
//!    lies within a small, shape-independent neighbourhood of the true
//!    value. The bounds here are calibrated to ~100× tighter than a real
//!    divergence (a wrong LSE merge or dropped tile shows up at `1e-1`,
//!    not `1e-4`).
//! 2. **Bit-exact gates** ([`assert_bits_eq`]): pairs that share an
//!    accumulation order must agree to the last bit — the same schedule run
//!    twice, a resumed run vs an uninterrupted one, an elastic re-run vs a
//!    fresh smaller world, and every rank's FSDP replica of the parameters.
//!
//! bf16 runs (`EngineConfig::emulate_bf16`) round weights to 8 mantissa
//! bits each step; comparisons against a bf16 oracle use [`BF16_RTOL`]
//! (a few bf16 ULPs, `2^-8` each) instead of the f32 bounds.

pub mod diff;
pub mod oracle;

/// Absolute floor for attention outputs vs the oracle (`O`, and `lse`).
pub const ORACLE_ATTN_ATOL: f32 = 2e-5;
/// Relative bound for attention outputs vs the oracle.
pub const ORACLE_ATTN_RTOL: f32 = 2e-4;
/// Absolute floor for attention gradients vs the oracle.
pub const ORACLE_GRAD_ATOL: f32 = 5e-5;
/// Relative bound for attention gradients vs the oracle.
pub const ORACLE_GRAD_RTOL: f32 = 5e-4;
/// Absolute floor for per-step losses and post-Adam parameters vs the
/// serial oracle train-step. Adam normalises each update by
/// `sqrt(v) + eps`, which amplifies tiny gradient differences, so the
/// engine bound is looser than the raw attention bound.
pub const ORACLE_TRAIN_ATOL: f32 = 2e-4;
/// Relative bound for engine state vs the serial oracle train-step.
pub const ORACLE_TRAIN_RTOL: f32 = 2e-3;
/// Relative bound for bf16-emulated runs: weights carry 8 mantissa bits
/// (ULP `2^-8 ≈ 3.9e-3`); a few ULPs of slack cover reduction reorder.
pub const BF16_RTOL: f32 = 1.6e-2;

/// Bounds for schedules run with bf16 **wire** payloads
/// (`burst_comm::WireDtype::Bf16`): every K/V ring shard and merged O
/// block is rounded to 8 mantissa bits at the sender, exactly once per
/// tensor (the round-once law — re-encoding a decoded shard is lossless).
///
/// Derivation, to first order in `ε = 2⁻⁸` (one bf16 ULP):
/// * rounding `K` perturbs each score by `≤ ε·|q·k|`; softmax maps a
///   score perturbation `δ` to an output-weight perturbation `≤ 2δ` (its
///   Jacobian rows have ℓ₁ norm `≤ 2·max pᵢ(1−pᵢ)·spread ≤ spread/2`,
///   and the generated inputs keep the score spread ≲ 4);
/// * rounding `V` adds `≤ ε·max|v|` directly to the convex combination;
/// * `O` crosses the wire once more in the ring merge: `+ε`.
///
/// So `|ΔO| ≲ (2·spread·ε + 2ε)·scale ≈ 3–4 ε` relative in the worst
/// case. [`BF16_ATTN_RTOL`] allows 4 ULPs; the absolute floor covers
/// near-zero outputs where the relative bound collapses. Gradients chain
/// one more rounded factor (`dS·K`, `P·dO`), hence double the slack.
pub const BF16_ATTN_ATOL: f32 = 1e-3;
/// Relative bound for attention outputs under bf16 wire payloads (4 ULPs).
pub const BF16_ATTN_RTOL: f32 = 1.6e-2;
/// Absolute floor for attention gradients under bf16 wire payloads.
pub const BF16_GRAD_ATOL: f32 = 2e-3;
/// Relative bound for attention gradients under bf16 wire payloads (8 ULPs).
pub const BF16_GRAD_RTOL: f32 = 3.2e-2;

/// Where and how badly two tensors disagree — the payload of every failed
/// comparison, formatted so a shrunken proptest case reads as a bug report.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which tensor diverged (e.g. `"dq"`, `"flat_state"`).
    pub what: String,
    /// Flat element index of the worst violation.
    pub index: usize,
    pub got: f32,
    pub want: f32,
    /// `|got − want|` at the worst element.
    pub abs: f32,
    /// `|got − want| / max(|want|, tiny)` at the worst element.
    pub rel: f32,
    /// ULP distance at the worst element (`u32::MAX` across signs/NaN).
    pub ulp: u32,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: got {:e}, oracle {:e} (abs {:e}, rel {:e}, {} ulp)",
            self.what, self.index, self.got, self.want, self.abs, self.rel, self.ulp
        )
    }
}

/// ULP distance between two finite `f32`s (monotone integer mapping of the
/// float line); `u32::MAX` when signs differ materially or a value is NaN.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    // Map to a monotone integer line: negative floats mirror below zero.
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i64;
        if x < 0.0 {
            -(bits & 0x7fff_ffff)
        } else {
            bits & 0x7fff_ffff
        }
    }
    (key(a) - key(b)).unsigned_abs().min(u32::MAX as u64) as u32
}

/// Compare `got` against the oracle `want` element-wise under
/// `|got − want| ≤ atol + rtol·|want|`; returns the **worst** violation.
pub fn compare_slice(
    what: &str,
    got: &[f32],
    want: &[f32],
    atol: f32,
    rtol: f32,
) -> Result<(), Divergence> {
    assert_eq!(
        got.len(),
        want.len(),
        "{what}: length mismatch {} vs {}",
        got.len(),
        want.len()
    );
    let mut worst: Option<Divergence> = None;
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let abs = (g - w).abs();
        let bound = atol + rtol * w.abs();
        let violation = if g.is_finite() && w.is_finite() {
            abs > bound
        } else {
            g.to_bits() != w.to_bits()
        };
        if violation {
            let rel = abs / w.abs().max(f32::MIN_POSITIVE);
            let excess = abs - bound;
            let beat = worst
                .as_ref()
                .map(|d| excess > (d.abs - (atol + rtol * d.want.abs())))
                .unwrap_or(true);
            if beat {
                worst = Some(Divergence {
                    what: what.to_string(),
                    index: i,
                    got: g,
                    want: w,
                    abs,
                    rel,
                    ulp: ulp_distance(g, w),
                });
            }
        }
    }
    match worst {
        Some(d) => Err(d),
        None => Ok(()),
    }
}

/// Bit-exact equality (the shared-accumulation-order gate). Panics with the
/// first differing element, including its ULP distance.
#[track_caller]
pub fn assert_bits_eq(what: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}[{i}] not bit-identical: {g:e} vs {w:e} ({} ulp)",
            ulp_distance(g, w)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
        assert!(ulp_distance(-1.0, 1.0) > 1_000_000);
    }

    #[test]
    fn compare_slice_reports_worst_element() {
        let want = [1.0f32, 2.0, 3.0];
        let got = [1.0f32, 2.5, 3.001];
        let d = compare_slice("x", &got, &want, 1e-3, 1e-3).unwrap_err();
        assert_eq!(d.index, 1);
        assert!(d.abs > 0.49 && d.abs < 0.51);
        assert!(compare_slice("x", &got, &want, 0.6, 0.0).is_ok());
    }

    #[test]
    fn compare_slice_rejects_nan() {
        assert!(compare_slice("x", &[f32::NAN], &[0.0], 1.0, 1.0).is_err());
        assert!(compare_slice("x", &[f32::NAN], &[f32::NAN], 0.0, 0.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "not bit-identical")]
    fn bits_eq_catches_one_ulp() {
        assert_bits_eq("y", &[1.0], &[f32::from_bits(1.0f32.to_bits() + 1)]);
    }
}
