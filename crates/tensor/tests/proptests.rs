//! Property-based tests for the tensor substrate.

use burst_tensor::testutil::{allclose, assert_allclose};
use burst_tensor::Mat;
use proptest::prelude::*;

fn small_mat(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-4.0f32..4.0, r * c).prop_map(move |v| Mat::from_vec(r, c, v))
    })
}

fn mat_pair_mul(max_dim: usize) -> impl Strategy<Value = (Mat, Mat)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-2.0f32..2.0, m * k)
                .prop_map(move |v| Mat::from_vec(m, k, v)),
            proptest::collection::vec(-2.0f32..2.0, k * n)
                .prop_map(move |v| Mat::from_vec(k, n, v)),
        )
    })
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition((a, b) in mat_pair_mul(8), s in -2.0f32..2.0) {
        // A·(B + sB) == A·B + s(A·B)
        let mut b2 = b.clone();
        b2.axpy(s, &b);
        let lhs = a.matmul(&b2);
        let mut rhs = a.matmul(&b);
        let ab = rhs.clone();
        rhs.axpy(s, &ab);
        prop_assert!(allclose(&lhs, &rhs, 1e-3, 1e-3));
    }

    #[test]
    fn matmul_transpose_identities((a, b) in mat_pair_mul(8)) {
        // (A·B)ᵀ == Bᵀ·Aᵀ, and the nt/tn kernels agree with explicit transposes.
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        prop_assert!(allclose(&ab_t, &bt_at, 1e-3, 1e-3));
        let nt = a.matmul_nt(&b.transpose());
        prop_assert!(allclose(&nt, &a.matmul(&b), 1e-3, 1e-3));
        let tn = a.transpose().matmul_tn(&b);
        prop_assert!(allclose(&tn, &a.matmul(&b), 1e-3, 1e-3));
    }

    #[test]
    fn identity_is_neutral(a in small_mat(8)) {
        let i = Mat::eye(a.cols());
        prop_assert!(allclose(&a.matmul(&i), &a, 1e-5, 1e-5));
        let i2 = Mat::eye(a.rows());
        prop_assert!(allclose(&i2.matmul(&a), &a, 1e-5, 1e-5));
    }

    #[test]
    fn softmax_rows_are_probability_rows(a in small_mat(8)) {
        let sm = a.softmax_rows();
        for r in 0..sm.rows() {
            let sum: f32 = sm.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(sm.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn lse_is_shift_equivariant(a in small_mat(6), shift in -5.0f32..5.0) {
        let base = a.lse_rows();
        let mut shifted = a.clone();
        for v in shifted.as_mut_slice() { *v += shift; }
        let lse2 = shifted.lse_rows();
        for (x, y) in base.iter().zip(&lse2) {
            prop_assert!((x + shift - y).abs() < 1e-4);
        }
    }

    #[test]
    fn vstack_chunk_roundtrip(a in small_mat(6), parts in 1usize..4) {
        // Pad rows to a multiple of `parts` by stacking the matrix with itself.
        let reps = parts;
        let stacked = Mat::vstack(&vec![a.clone(); reps]);
        let chunks = stacked.chunk_rows(reps);
        for c in &chunks {
            prop_assert!(allclose(c, &a, 0.0, 0.0));
        }
    }

    #[test]
    fn rowsum_hadamard_is_bilinear(a in small_mat(6)) {
        let b = a.clone();
        let d = a.rowsum_hadamard(&b);
        for (r, sum) in d.iter().enumerate() {
            let expect: f32 = a.row(r).iter().map(|v| v * v).sum();
            prop_assert!((sum - expect).abs() < 1e-4);
        }
    }
}

#[test]
fn assert_allclose_is_reflexive() {
    let a = Mat::from_fn(4, 4, |r, c| (r + c) as f32);
    assert_allclose(&a, &a, 0.0, "reflexive");
}
