//! bf16 storage: round `f32` through bfloat16 precision, and hold matrices
//! at genuine 2-byte width.
//!
//! The paper trains in bf16 with fp32 Adam masters. The simulator computes
//! in `f32` for exact cross-checks, and offers two bf16 facilities:
//!
//! * [`round_bf16`] — round-to-nearest-even to the closest bf16-representable
//!   `f32`, used by the engine to *emulate* bf16 weight storage while keeping
//!   4-byte buffers;
//! * [`Bf16Mat`] — a real 2-byte-per-element matrix ([`encode_bf16`] /
//!   [`decode_bf16`]) used for half-width activation stashes, KV ring
//!   shards, and wire payloads. Decoding is exact (a bf16 value is a
//!   prefix of an `f32`), so `decode(encode(x)) == round_bf16(x)` bit-for-
//!   bit and re-encoding a decoded matrix is lossless — a shard can
//!   circulate a ring indefinitely without further drift. All arithmetic
//!   stays in `f32`: a `Bf16Mat` only ever stores, never computes.

use crate::mat::Mat;
use serde::{Deserialize, Serialize};

/// Round an `f32` to the nearest bfloat16-representable value
/// (round-to-nearest-even on the dropped 16 mantissa bits).
#[inline]
pub fn round_bf16(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let bits = x.to_bits();
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    f32::from_bits(bits.wrapping_add(rounding_bias) & 0xFFFF_0000)
}

/// Encode an `f32` into the 16 stored bits of its nearest bf16 value
/// (round-to-nearest-even, same rounding as [`round_bf16`]).
#[inline]
pub fn encode_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep NaN a NaN after truncation even if the payload's high
        // mantissa bits are zero (quiet-bit set).
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    (bits.wrapping_add(rounding_bias) >> 16) as u16
}

/// Decode 16 stored bf16 bits back to `f32` — exact, no rounding.
#[inline]
pub fn decode_bf16(u: u16) -> f32 {
    f32::from_bits((u as u32) << 16)
}

impl Mat {
    /// Round every element to bf16 precision in place.
    pub fn round_bf16_inplace(&mut self) {
        for v in self.as_mut_slice() {
            *v = round_bf16(*v);
        }
    }

    /// A bf16-rounded copy.
    pub fn to_bf16(&self) -> Mat {
        let mut m = self.clone();
        m.round_bf16_inplace();
        m
    }
}

/// A row-major matrix stored at genuine bfloat16 width: 2 bytes per
/// element. The half-width storage type behind bf16 activation stashes,
/// KV ring shards, and wire payloads; see the module docs for the
/// numerics contract.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Bf16Mat {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl Bf16Mat {
    /// Encode an `f32` matrix (round-to-nearest-even per element).
    pub fn from_mat(m: &Mat) -> Self {
        Bf16Mat {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&x| encode_bf16(x)).collect(),
        }
    }

    /// Decode back to `f32`. Exact: the result equals `m.to_bf16()` of the
    /// originally encoded matrix, bit for bit.
    pub fn to_mat(&self) -> Mat {
        Mat::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&u| decode_bf16(u)).collect(),
        )
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Storage footprint: 2 bytes per element — half of [`Mat::nbytes`].
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u16>()
    }

    /// Raw stored bits (row-major), for checksums and wire accounting.
    pub fn as_bits(&self) -> &[u16] {
        &self.data
    }

    /// Mutable raw bits, for injected wire corruption in the fault layer.
    pub fn as_bits_mut(&mut self) -> &mut [u16] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_is_idempotent() {
        for &x in &[0.1f32, -3.7, 1e-20, 1e20, 0.333333] {
            let once = round_bf16(x);
            assert_eq!(round_bf16(once), once, "x = {x}");
        }
    }

    #[test]
    fn representable_values_pass_through() {
        // Powers of two and small integers are exactly representable.
        for &x in &[0.0f32, 1.0, -2.0, 0.5, 256.0, -1024.0] {
            assert_eq!(round_bf16(x), x);
        }
    }

    #[test]
    fn relative_error_is_bounded_by_bf16_epsilon() {
        // bf16 has 8 significand bits: relative error ≤ 2⁻⁸.
        for i in 1..1000 {
            let x = (i as f32).sin() * 37.0 + 0.01;
            let r = round_bf16(x);
            assert!(((r - x) / x).abs() <= 1.0 / 256.0, "x = {x}, rounded = {r}");
        }
    }

    #[test]
    fn special_values_are_preserved() {
        assert!(round_bf16(f32::NAN).is_nan());
        assert_eq!(round_bf16(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_bf16(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert_eq!(round_bf16(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2⁻⁹ sits exactly between 1.0 and 1 + 2⁻⁸: even mantissa wins.
        let x = f32::from_bits(0x3F80_8000);
        assert_eq!(round_bf16(x), 1.0);
        // 1 + 3·2⁻⁹ between 1+2⁻⁸ and 1+2⁻⁷: rounds up to even (1+2⁻⁷).
        let y = f32::from_bits(0x3F81_8000);
        assert_eq!(round_bf16(y).to_bits(), 0x3F82_0000);
    }

    #[test]
    fn mat_rounding_applies_elementwise() {
        let m = Mat::from_vec(1, 3, vec![0.1, 1.0, 0.333333]);
        let r = m.to_bf16();
        assert_eq!(r.get(0, 1), 1.0);
        for c in 0..3 {
            assert_eq!(round_bf16(m.get(0, c)), r.get(0, c));
        }
    }

    #[test]
    fn encode_decode_agrees_with_round_bf16_bitwise() {
        for i in 0..4000u32 {
            let x = f32::from_bits(i.wrapping_mul(0x9E37_79B9) | (i & 1) << 31);
            if x.is_nan() {
                assert!(decode_bf16(encode_bf16(x)).is_nan(), "NaN lost: {i}");
                continue;
            }
            assert_eq!(
                decode_bf16(encode_bf16(x)).to_bits(),
                round_bf16(x).to_bits(),
                "x = {x:?}"
            );
        }
        for &x in &[
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
        ] {
            assert_eq!(
                decode_bf16(encode_bf16(x)).to_bits(),
                round_bf16(x).to_bits()
            );
        }
        assert!(decode_bf16(encode_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16mat_round_trip_is_exact_and_half_width() {
        let m = crate::randn_mat(7, 9, 1.3, 42);
        let h = Bf16Mat::from_mat(&m);
        assert_eq!(h.shape(), (7, 9));
        assert_eq!(h.nbytes() * 2, m.nbytes(), "bf16 must be half of f32");
        let back = h.to_mat();
        assert_eq!(back, m.to_bf16(), "decode must equal rounded original");
        // Re-encoding the decoded matrix is lossless: a shard can circulate
        // a ring without accumulating further rounding.
        assert_eq!(Bf16Mat::from_mat(&back), h);
    }

    #[test]
    fn bf16mat_exposes_raw_bits_row_major() {
        let m = Mat::from_vec(2, 2, vec![1.0, -2.0, 0.5, 256.0]);
        let h = Bf16Mat::from_mat(&m);
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        let bits: Vec<u16> = m
            .as_slice()
            .iter()
            .map(|&x| (x.to_bits() >> 16) as u16)
            .collect();
        // All four values are exactly representable: encoding is truncation.
        assert_eq!(h.as_bits(), &bits[..]);
    }
}
