//! bf16 emulation: round-trip `f32` values through bfloat16 precision.
//!
//! The paper trains in bf16 with fp32 Adam masters. The simulator computes
//! in `f32` for exact cross-checks, but [`round_bf16`] lets the engine
//! emulate bf16 weight storage — truncating the mantissa to 8 bits with
//! round-to-nearest-even — to demonstrate that every equivalence in this
//! reproduction survives the paper's actual numeric format.

use crate::mat::Mat;

/// Round an `f32` to the nearest bfloat16-representable value
/// (round-to-nearest-even on the dropped 16 mantissa bits).
#[inline]
pub fn round_bf16(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let bits = x.to_bits();
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    f32::from_bits(bits.wrapping_add(rounding_bias) & 0xFFFF_0000)
}

impl Mat {
    /// Round every element to bf16 precision in place.
    pub fn round_bf16_inplace(&mut self) {
        for v in self.as_mut_slice() {
            *v = round_bf16(*v);
        }
    }

    /// A bf16-rounded copy.
    pub fn to_bf16(&self) -> Mat {
        let mut m = self.clone();
        m.round_bf16_inplace();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_is_idempotent() {
        for &x in &[0.1f32, -3.7, 1e-20, 1e20, 0.333333] {
            let once = round_bf16(x);
            assert_eq!(round_bf16(once), once, "x = {x}");
        }
    }

    #[test]
    fn representable_values_pass_through() {
        // Powers of two and small integers are exactly representable.
        for &x in &[0.0f32, 1.0, -2.0, 0.5, 256.0, -1024.0] {
            assert_eq!(round_bf16(x), x);
        }
    }

    #[test]
    fn relative_error_is_bounded_by_bf16_epsilon() {
        // bf16 has 8 significand bits: relative error ≤ 2⁻⁸.
        for i in 1..1000 {
            let x = (i as f32).sin() * 37.0 + 0.01;
            let r = round_bf16(x);
            assert!(((r - x) / x).abs() <= 1.0 / 256.0, "x = {x}, rounded = {r}");
        }
    }

    #[test]
    fn special_values_are_preserved() {
        assert!(round_bf16(f32::NAN).is_nan());
        assert_eq!(round_bf16(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_bf16(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert_eq!(round_bf16(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2⁻⁹ sits exactly between 1.0 and 1 + 2⁻⁸: even mantissa wins.
        let x = f32::from_bits(0x3F80_8000);
        assert_eq!(round_bf16(x), 1.0);
        // 1 + 3·2⁻⁹ between 1+2⁻⁸ and 1+2⁻⁷: rounds up to even (1+2⁻⁷).
        let y = f32::from_bits(0x3F81_8000);
        assert_eq!(round_bf16(y).to_bits(), 0x3F82_0000);
    }

    #[test]
    fn mat_rounding_applies_elementwise() {
        let m = Mat::from_vec(1, 3, vec![0.1, 1.0, 0.333333]);
        let r = m.to_bf16();
        assert_eq!(r.get(0, 1), 1.0);
        for c in 0..3 {
            assert_eq!(round_bf16(m.get(0, c)), r.get(0, c));
        }
    }
}
