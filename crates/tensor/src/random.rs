//! Deterministic random initialisation.
//!
//! Every experiment in the reproduction is seeded: the same seed produces the
//! same weights, activations and gradients on every run and on every
//! simulated rank, which is what makes the distributed == single-device
//! equivalence tests bit-meaningful.

use crate::mat::Mat;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A stream of derived seeds, so each consumer (per-layer weights, per-rank
/// data shards, ...) gets an independent deterministic RNG.
#[derive(Debug, Clone)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    pub fn new(seed: u64) -> Self {
        SeedStream { state: seed }
    }

    /// Next derived seed (splitmix64 step — avoids correlated SmallRng seeds).
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A fresh RNG derived from the stream.
    pub fn rng(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.next_seed())
    }
}

/// Standard-normal sample via Box–Muller (avoids a `rand_distr` dependency).
pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// `rows × cols` matrix of `N(0, std²)` samples from `seed`.
pub fn randn_mat(rows: usize, cols: usize, std: f32, seed: u64) -> Mat {
    let mut rng = SmallRng::seed_from_u64(seed);
    Mat::from_fn(rows, cols, |_, _| sample_standard_normal(&mut rng) * std)
}

/// `rows × cols` matrix of uniform samples in `[lo, hi)` from `seed`.
pub fn uniform_mat(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Mat {
    let mut rng = SmallRng::seed_from_u64(seed);
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_is_deterministic() {
        let a = randn_mat(8, 8, 1.0, 42);
        let b = randn_mat(8, 8, 1.0, 42);
        assert_eq!(a, b);
        let c = randn_mat(8, 8, 1.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_moments_are_sane() {
        let m = randn_mat(64, 64, 2.0, 7);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_bounds_hold() {
        let m = uniform_mat(32, 32, -0.5, 0.5, 9);
        for &v in m.as_slice() {
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn seed_stream_derives_distinct_seeds() {
        let mut s = SeedStream::new(0);
        let a = s.next_seed();
        let b = s.next_seed();
        assert_ne!(a, b);
        let mut s2 = SeedStream::new(0);
        assert_eq!(a, s2.next_seed());
    }
}
