//! Test utilities: approximate comparison and numerical gradients.
//!
//! These live in the library (not `#[cfg(test)]`) because every downstream
//! crate's tests use them to validate kernels against finite differences.

use crate::mat::Mat;

/// `true` iff every element pair differs by at most `atol + rtol·|b|`.
pub fn allclose(a: &Mat, b: &Mat, atol: f32, rtol: f32) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| (x - y).abs() <= atol + rtol * y.abs())
}

/// Panic with a diagnostic if `a` and `b` differ by more than `tol`
/// (absolute, with a matching relative term).
#[track_caller]
pub fn assert_allclose(a: &Mat, b: &Mat, tol: f32, ctx: &str) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "{ctx}: shape {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let mut worst = 0.0f32;
    let mut worst_at = 0;
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        if x == y {
            continue; // covers equal infinities, whose difference is NaN
        }
        let d = (x - y).abs() / (1.0 + y.abs());
        if d > worst {
            worst = d;
            worst_at = i;
        }
    }
    assert!(
        worst <= tol,
        "{ctx}: max rel-abs diff {worst} > {tol} at flat index {worst_at} \
         (a={}, b={})",
        a.as_slice()[worst_at],
        b.as_slice()[worst_at]
    );
}

/// Same comparison for plain vectors.
#[track_caller]
pub fn assert_allclose_vec(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x == y {
            continue; // covers equal infinities, whose difference is NaN
        }
        let d = (x - y).abs() / (1.0 + y.abs());
        assert!(d <= tol, "{ctx}: diff {d} > {tol} at {i} (a={x}, b={y})");
    }
}

/// Central-difference numerical gradient of a scalar function of a matrix.
///
/// `f` must be deterministic. `eps` around `1e-2`–`1e-3` works well for f32;
/// the caller compares against the analytic gradient with a loose tolerance.
pub fn numerical_grad(x: &Mat, eps: f32, mut f: impl FnMut(&Mat) -> f32) -> Mat {
    let mut grad = Mat::zeros(x.rows(), x.cols());
    let mut probe = x.clone();
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let orig = probe.get(r, c);
            probe.set(r, c, orig + eps);
            let fp = f(&probe);
            probe.set(r, c, orig - eps);
            let fm = f(&probe);
            probe.set(r, c, orig);
            grad.set(r, c, (fp - fm) / (2.0 * eps));
        }
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn_mat;

    #[test]
    fn allclose_detects_differences() {
        let a = Mat::full(2, 2, 1.0);
        let mut b = a.clone();
        assert!(allclose(&a, &b, 1e-6, 1e-6));
        b.set(0, 0, 1.1);
        assert!(!allclose(&a, &b, 1e-6, 1e-6));
    }

    #[test]
    fn allclose_rejects_shape_mismatch() {
        assert!(!allclose(&Mat::zeros(2, 2), &Mat::zeros(2, 3), 1.0, 1.0));
    }

    #[test]
    fn numerical_grad_of_quadratic() {
        // f(X) = 0.5 Σ x² → ∇f = X.
        let x = randn_mat(3, 4, 1.0, 5);
        let g = numerical_grad(&x, 1e-2, |m| {
            0.5 * m.as_slice().iter().map(|v| v * v).sum::<f32>()
        });
        assert_allclose(&g, &x, 1e-2, "grad of quadratic");
    }

    #[test]
    fn numerical_grad_of_linear_form() {
        // f(X) = Σ_ij A_ij X_ij → ∇f = A.
        let a = randn_mat(2, 3, 1.0, 11);
        let x = randn_mat(2, 3, 1.0, 12);
        let a2 = a.clone();
        let g = numerical_grad(&x, 1e-2, move |m| {
            m.as_slice()
                .iter()
                .zip(a2.as_slice())
                .map(|(x, a)| x * a)
                .sum::<f32>()
        });
        assert_allclose(&g, &a, 1e-2, "grad of linear form");
    }
}
