//! Reusable kernel workspace.
//!
//! The tiled attention and LM-head kernels need a handful of temporaries per
//! tile (score matrix, probability matrix, partial gradients, per-tile LSE).
//! Allocating them per tile dominated small-tile runtime and — worse — made
//! every ring round in the distributed loops pay a fresh set of heap
//! allocations. A [`Scratch`] owns those temporaries; callers thread one
//! through a whole pass (or keep one per ring participant) and each tile
//! reshapes the buffers in place via [`Mat::reshape_in_place`], which reuses
//! the backing `Vec` capacity. After the first round every buffer has
//! reached its steady-state size, so subsequent rounds perform zero heap
//! allocations in the tile-compute path.

use crate::Mat;

/// Pre-sized temporaries for the tiled kernels.
///
/// Field roles (shapes are per-tile and set by `reshape_in_place`):
///
/// * `score` — attention scores / probabilities (`bq × bk`), or a logits
///   tile in the LM head (`bs × bv`); doubles as `dS` in the backward pass
///   since `dS` overwrites `P` element-wise.
/// * `gp` — `dP = dO · Vᵀ` in the attention backward (`bq × bk`).
/// * `gtmp` — small dense products accumulated into caller outputs:
///   `P · V`, `dS · K`, `dSᵀ · Q`, `dL · W`, … (`b × d`).
/// * `tile_lse` — per-row log-sum-exp of the current tile.
/// * `tile_max` — per-row score maximum of the current tile (the online
///   merge weights an unnormalised tile by `exp(max − lse_new)`).
/// * `vtiles` — retained per-vocab-tile probability matrices for the fused
///   LM head (forward writes, backward re-reads); each slot is itself
///   reshaped in place across calls.
#[derive(Debug, Default)]
pub struct Scratch {
    pub score: Mat,
    pub gp: Mat,
    pub gtmp: Mat,
    pub tile_lse: Vec<f32>,
    pub tile_max: Vec<f32>,
    pub vtiles: Vec<Mat>,
}

impl Scratch {
    /// An empty workspace; buffers grow to steady-state sizes on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Resize `tile_lse` to `n` entries of `fill` without shrinking the
    /// allocation.
    pub fn lse_fill(&mut self, n: usize, fill: f32) -> &mut [f32] {
        self.tile_lse.clear();
        self.tile_lse.resize(n, fill);
        &mut self.tile_lse
    }

    /// Make sure `vtiles` has at least `n` slots (empty `Mat`s are cheap;
    /// they inflate lazily on first reshape).
    pub fn ensure_vtiles(&mut self, n: usize) {
        if self.vtiles.len() < n {
            self.vtiles.resize_with(n, Mat::default);
        }
    }

    /// Bytes currently held by the workspace buffers, at their present
    /// shapes. Tile sizes come from the autotuner, so this is a measured
    /// (host-dependent) quantity — the memory accountant reports it on the
    /// ungated `workspace` lane rather than gating it against the analytic
    /// census.
    pub fn resident_bytes(&self) -> u64 {
        let mats = self.score.nbytes() + self.gp.nbytes() + self.gtmp.nbytes();
        let vecs = 4 * (self.tile_lse.len() + self.tile_max.len());
        let vtiles: usize = self.vtiles.iter().map(|m| m.nbytes()).sum();
        (mats + vecs + vtiles) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_reach_steady_state() {
        let mut s = Scratch::new();
        s.score.reshape_in_place(32, 64);
        let cap = s.score.as_slice().len();
        let ptr = s.score.as_slice().as_ptr();
        // Any smaller-or-equal reshape reuses the same allocation.
        s.score.reshape_in_place(16, 64);
        s.score.reshape_in_place(32, 32);
        assert_eq!(s.score.as_slice().as_ptr(), ptr);
        assert!(s.score.as_slice().len() <= cap);
    }

    #[test]
    fn lse_fill_resizes_and_fills() {
        let mut s = Scratch::new();
        let l = s.lse_fill(5, f32::NEG_INFINITY);
        assert_eq!(l.len(), 5);
        assert!(l.iter().all(|x| *x == f32::NEG_INFINITY));
        let l = s.lse_fill(3, 0.0);
        assert_eq!(l.len(), 3);
        assert!(l.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn ensure_vtiles_grows_only() {
        let mut s = Scratch::new();
        s.ensure_vtiles(4);
        assert_eq!(s.vtiles.len(), 4);
        s.vtiles[2].reshape_in_place(8, 8);
        s.ensure_vtiles(2);
        assert_eq!(s.vtiles.len(), 4);
        assert_eq!(s.vtiles[2].shape(), (8, 8));
    }
}
