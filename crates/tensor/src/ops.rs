//! Linear algebra and reduction kernels on [`Mat`].
//!
//! Matrix products are cache-blocked and parallelised over row blocks with
//! rayon. The blocking constant is tuned for L1-resident inner tiles on
//! typical x86 cores; correctness never depends on it.

use crate::mat::Mat;
use rayon::prelude::*;

/// Row-block size used to split work across rayon tasks.
const PAR_ROW_BLOCK: usize = 32;
/// Inner-dimension tile for the matmul micro-kernels.
const K_TILE: usize = 64;

/// Smallest matrix volume (`m * n * k`) worth parallelising; below this the
/// rayon fork/join overhead dominates.
const PAR_THRESHOLD: usize = 32 * 32 * 32;

impl Mat {
    /// `C = A · B` (`self` is A). Panics on inner-dimension mismatch.
    #[track_caller]
    pub fn matmul(&self, b: &Mat) -> Mat {
        assert_eq!(
            self.cols(),
            b.rows(),
            "matmul: inner dims {}x{} · {}x{}",
            self.rows(),
            self.cols(),
            b.rows(),
            b.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), b.cols());
        let mut out = Mat::zeros(m, n);
        let run = |rows: &mut [f32], r0: usize, len: usize| {
            matmul_nn_block(self, b, rows, r0, len, k, n);
        };
        run_blocked(&mut out, m, m * n * k, run);
        out
    }

    /// `C = A · Bᵀ` — the attention-score product `Q Kᵀ` without forming `Kᵀ`.
    #[track_caller]
    pub fn matmul_nt(&self, b: &Mat) -> Mat {
        assert_eq!(
            self.cols(),
            b.cols(),
            "matmul_nt: inner dims {}x{} · ({}x{})ᵀ",
            self.rows(),
            self.cols(),
            b.rows(),
            b.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), b.rows());
        let mut out = Mat::zeros(m, n);
        let run = |rows: &mut [f32], r0: usize, len: usize| {
            matmul_nt_block(self, b, rows, r0, len, k, n);
        };
        run_blocked(&mut out, m, m * n * k, run);
        out
    }

    /// `C = Aᵀ · B` — gradient products like `Pᵀ ∇O` without forming `Aᵀ`.
    #[track_caller]
    pub fn matmul_tn(&self, b: &Mat) -> Mat {
        assert_eq!(
            self.rows(),
            b.rows(),
            "matmul_tn: inner dims ({}x{})ᵀ · {}x{}",
            self.rows(),
            self.cols(),
            b.rows(),
            b.cols()
        );
        let (m, k, n) = (self.cols(), self.rows(), b.cols());
        // Aᵀ·B accumulates along rows of both: compute as sum_r a[r]ᵀ ⊗ b[r].
        // Parallelise over output row blocks (columns of A).
        let a = self;
        let mut out = Mat::zeros(m, n);
        if m * n * k >= PAR_THRESHOLD && m >= 2 {
            let blocks: Vec<(usize, usize)> = row_blocks(m);
            let cols_n = n;
            let parts: Vec<Mat> = blocks
                .par_iter()
                .map(|&(r0, len)| {
                    let mut part = Mat::zeros(len, cols_n);
                    matmul_tn_block(a, b, part.as_mut_slice(), r0, len, k, n);
                    part
                })
                .collect();
            for (&(r0, _), part) in blocks.iter().zip(&parts) {
                out.set_rows(r0, part);
            }
        } else {
            let (o, r0, len) = (out.as_mut_slice(), 0, m);
            matmul_tn_block(a, b, o, r0, len, k, n);
        }
        out
    }

    /// Element-wise (Hadamard) product.
    #[track_caller]
    pub fn hadamard(&self, b: &Mat) -> Mat {
        assert_eq!(self.shape(), b.shape(), "hadamard: shape mismatch");
        let mut out = self.clone();
        for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
            *o *= x;
        }
        out
    }

    /// `self += other`.
    #[track_caller]
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (o, x) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o += x;
        }
    }

    /// `self += alpha * other` (axpy).
    #[track_caller]
    pub fn axpy(&mut self, alpha: f32, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (o, x) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o += alpha * x;
        }
    }

    /// `self - other` as a new matrix.
    #[track_caller]
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let mut out = self.clone();
        for (o, x) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o -= x;
        }
        out
    }

    /// Multiply every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for v in self.as_mut_slice() {
            *v *= s;
        }
    }

    /// A scaled copy.
    pub fn scaled(&self, s: f32) -> Mat {
        let mut out = self.clone();
        out.scale(s);
        out
    }

    /// Row-wise sums.
    pub fn rowsum(&self) -> Vec<f32> {
        (0..self.rows()).map(|r| self.row(r).iter().sum()).collect()
    }

    /// `rowsum(self ∘ other)` without materialising the product — this is the
    /// `D = rowsum(∇O ∘ O)` reduction of Algorithms 1–2.
    #[track_caller]
    pub fn rowsum_hadamard(&self, other: &Mat) -> Vec<f32> {
        assert_eq!(self.shape(), other.shape(), "rowsum_hadamard: shape mismatch");
        (0..self.rows())
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(other.row(r))
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Numerically stable row-wise softmax.
    pub fn softmax_rows(&self) -> Mat {
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if !max.is_finite() {
                // All -inf (fully masked row): define softmax as all zeros.
                row.fill(0.0);
                continue;
            }
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }

    /// Numerically stable row-wise log-sum-exp: `lse[r] = log Σ_c exp(self[r,c])`.
    ///
    /// Fully masked rows (all `-inf`) produce `-inf`, which the online-softmax
    /// merge treats as "no mass yet".
    pub fn lse_rows(&self) -> Vec<f32> {
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                if !max.is_finite() {
                    return f32::NEG_INFINITY;
                }
                let sum: f32 = row.iter().map(|v| (v - max).exp()).sum();
                max + sum.ln()
            })
            .collect()
    }

    /// Subtract a per-row scalar and exponentiate: `exp(self[r,c] - s[r])`.
    /// This is the `P = exp(S - Lse)` step shared by Algorithms 1–3.
    #[track_caller]
    pub fn exp_sub_rowwise(&self, s: &[f32]) -> Mat {
        assert_eq!(self.rows(), s.len(), "exp_sub_rowwise: row count mismatch");
        let mut out = self.clone();
        for r in 0..out.rows() {
            let shift = s[r];
            for v in out.row_mut(r) {
                // exp(-inf - -inf) must be 0, not NaN: a masked row has no mass.
                *v = if v.is_finite() || shift.is_finite() {
                    (*v - shift).exp()
                } else {
                    0.0
                };
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Index of the maximum in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|r| {
                self.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

fn row_blocks(m: usize) -> Vec<(usize, usize)> {
    let mut blocks = Vec::new();
    let mut r = 0;
    while r < m {
        let len = PAR_ROW_BLOCK.min(m - r);
        blocks.push((r, len));
        r += len;
    }
    blocks
}

/// Dispatch a row-blocked kernel either serially or across rayon tasks.
fn run_blocked(
    out: &mut Mat,
    m: usize,
    volume: usize,
    kernel: impl Fn(&mut [f32], usize, usize) + Sync,
) {
    let n = out.cols();
    if volume >= PAR_THRESHOLD && m > PAR_ROW_BLOCK {
        out.as_mut_slice()
            .par_chunks_mut(PAR_ROW_BLOCK * n)
            .enumerate()
            .for_each(|(bi, chunk)| {
                let r0 = bi * PAR_ROW_BLOCK;
                kernel(chunk, r0, chunk.len() / n);
            });
    } else {
        let slice = out.as_mut_slice();
        kernel(slice, 0, m);
    }
}

/// `out[r0..r0+len] += A[r0..] · B`, tiled over k.
fn matmul_nn_block(a: &Mat, b: &Mat, out: &mut [f32], r0: usize, len: usize, k: usize, n: usize) {
    for kk in (0..k).step_by(K_TILE) {
        let kend = (kk + K_TILE).min(k);
        for r in 0..len {
            let arow = &a.row(r0 + r)[kk..kend];
            let orow = &mut out[r * n..(r + 1) * n];
            for (ki, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = b.row(kk + ki);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// `out[r0..r0+len] += A[r0..] · Bᵀ` — rows of B are contiguous, so each
/// output element is a dot product of two contiguous slices.
fn matmul_nt_block(a: &Mat, b: &Mat, out: &mut [f32], r0: usize, len: usize, k: usize, n: usize) {
    debug_assert_eq!(k, a.cols());
    for r in 0..len {
        let arow = a.row(r0 + r);
        let orow = &mut out[r * n..(r + 1) * n];
        for (c, o) in orow.iter_mut().enumerate() {
            let brow = b.row(c);
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

/// `out[r0..r0+len] += (Aᵀ · B)[r0..]` where `out` rows index columns of A.
fn matmul_tn_block(a: &Mat, b: &Mat, out: &mut [f32], c0: usize, len: usize, k: usize, n: usize) {
    debug_assert_eq!(k, a.rows());
    for r in 0..k {
        let arow = &a.row(r)[c0..c0 + len];
        let brow = b.row(r);
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::mat::Mat;
    use crate::testutil::assert_allclose;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(r, k) * b.get(k, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    fn arange(rows: usize, cols: usize, scale: f32) -> Mat {
        Mat::from_fn(rows, cols, |r, c| ((r * cols + c) as f32).sin() * scale)
    }

    #[test]
    fn matmul_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (17, 33, 9), (64, 64, 64)] {
            let a = arange(m, k, 0.7);
            let b = arange(k, n, 1.3);
            assert_allclose(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4, "matmul");
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Big enough to cross PAR_THRESHOLD and use multiple row blocks.
        let a = arange(96, 48, 0.9);
        let b = arange(48, 40, 1.1);
        assert_allclose(&a.matmul(&b), &naive_matmul(&a, &b), 1e-3, "matmul par");
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = arange(7, 11, 0.5);
        let b = arange(13, 11, 0.8);
        assert_allclose(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-4, "nt");
        let big_a = arange(80, 64, 0.5);
        let big_b = arange(72, 64, 0.8);
        assert_allclose(
            &big_a.matmul_nt(&big_b),
            &big_a.matmul(&big_b.transpose()),
            1e-3,
            "nt par",
        );
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = arange(11, 7, 0.5);
        let b = arange(11, 13, 0.8);
        assert_allclose(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4, "tn");
        let big_a = arange(64, 80, 0.5);
        let big_b = arange(64, 72, 0.8);
        assert_allclose(
            &big_a.matmul_tn(&big_b),
            &big_a.transpose().matmul(&big_b),
            1e-3,
            "tn par",
        );
    }

    #[test]
    fn softmax_rows_sum_to_one_and_is_shift_invariant() {
        let m = arange(5, 9, 3.0);
        let sm = m.softmax_rows();
        for r in 0..5 {
            let s: f32 = sm.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
        let mut shifted = m.clone();
        for r in 0..5 {
            for v in shifted.row_mut(r) {
                *v += 100.0;
            }
        }
        assert_allclose(&shifted.softmax_rows(), &sm, 1e-5, "shift invariance");
    }

    #[test]
    fn softmax_handles_fully_masked_row() {
        let m = Mat::from_vec(1, 3, vec![f32::NEG_INFINITY; 3]);
        let sm = m.softmax_rows();
        assert_eq!(sm.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.lse_rows()[0], f32::NEG_INFINITY);
    }

    #[test]
    fn lse_matches_log_of_sum() {
        let m = arange(4, 6, 2.0);
        let lse = m.lse_rows();
        for r in 0..4 {
            let direct: f32 = m.row(r).iter().map(|v| v.exp()).sum::<f32>().ln();
            assert!((lse[r] - direct).abs() < 1e-5);
        }
    }

    #[test]
    fn exp_sub_rowwise_reproduces_softmax() {
        let m = arange(4, 6, 2.0);
        let lse = m.lse_rows();
        let p = m.exp_sub_rowwise(&lse);
        assert_allclose(&p, &m.softmax_rows(), 1e-5, "exp_sub");
    }

    #[test]
    fn exp_sub_rowwise_masked_row_is_zero() {
        let m = Mat::from_vec(1, 2, vec![f32::NEG_INFINITY; 2]);
        let p = m.exp_sub_rowwise(&[f32::NEG_INFINITY]);
        assert_eq!(p.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn rowsum_hadamard_matches_composition() {
        let a = arange(6, 5, 1.0);
        let b = arange(6, 5, 0.4);
        let d = a.rowsum_hadamard(&b);
        let explicit = a.hadamard(&b).rowsum();
        for (x, y) in d.iter().zip(&explicit) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Mat::full(2, 2, 1.0);
        let b = Mat::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.row(0), &[2.0, 2.0]);
        a.scale(2.0);
        assert_eq!(a.row(1), &[4.0, 4.0]);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let m = Mat::from_vec(2, 3, vec![0.1, 0.9, 0.3, 5.0, -1.0, 2.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }
}
