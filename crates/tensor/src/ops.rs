//! Linear algebra and reduction kernels on [`Mat`].
//!
//! Matrix products go through one set of register-blocked micro-kernels
//! (see [`nt_micro`] and friends): 4×4 output blocks with sixteen
//! independent accumulators, K-tiled so the streamed operands stay
//! L1-resident, written so LLVM autovectorizes the inner loops. Dispatch is
//! cache-blocked over output row blocks and parallelised with rayon above a
//! volume threshold.
//!
//! Every product has two entry points: the owned `Mat` method
//! (`a.matmul(&b)`) and an `_into` free function
//! ([`matmul_into`], [`matmul_nt_into`], [`matmul_tn_into`]) that writes
//! into a caller-provided [`Mat`], reusing its allocation via
//! [`Mat::reshape_in_place`]. Both run the identical kernel, and each
//! output element accumulates its products in a fixed ascending-k order
//! regardless of how rows are grouped or which thread runs the block — so
//! results are bit-identical across thread counts and entry points.

use crate::mat::{Mat, MatRef};
use crate::simd;
use rayon::prelude::*;

/// Row-block size used to split work across rayon tasks. Must stay a
/// multiple of [`MR`] so serial and parallel dispatch group rows into the
/// same 4-row quads.
const PAR_ROW_BLOCK: usize = 32;
/// Register-block row edge: micro-kernels process `MR` output rows at once.
pub(crate) const MR: usize = 4;
/// Column width of the output-stationary register tile in [`nn_micro`] /
/// [`tn_micro`] (two 8-lane SIMD registers per output row).
pub(crate) const NR: usize = 16;
/// Emulated SIMD width: reduction accumulators in [`nt_micro`] are
/// `[f32; VL]` arrays whose element-wise update LLVM lowers to one FMA.
const VL: usize = 8;
/// Column edge of the `nt` register block. `MR × NTC` vector accumulators
/// must fit the 16 architectural SIMD registers with room for operands;
/// 4×4 spills.
pub(crate) const NTC: usize = 2;

/// Smallest matrix volume (`m * n * k`) worth parallelising; below this the
/// rayon fork/join overhead dominates.
const PAR_THRESHOLD: usize = 32 * 32 * 32;

impl Mat {
    /// `C = A · B` (`self` is A). Panics on inner-dimension mismatch.
    #[track_caller]
    pub fn matmul(&self, b: &Mat) -> Mat {
        let mut out = Mat::default();
        matmul_into(self.view(), b.view(), &mut out);
        out
    }

    /// `C = A · Bᵀ` — the attention-score product `Q Kᵀ` without forming `Kᵀ`.
    #[track_caller]
    pub fn matmul_nt(&self, b: &Mat) -> Mat {
        let mut out = Mat::default();
        matmul_nt_into(self.view(), b.view(), &mut out);
        out
    }

    /// `C = Aᵀ · B` — gradient products like `Pᵀ ∇O` without forming `Aᵀ`.
    #[track_caller]
    pub fn matmul_tn(&self, b: &Mat) -> Mat {
        let mut out = Mat::default();
        matmul_tn_into(self.view(), b.view(), &mut out);
        out
    }

    /// Element-wise (Hadamard) product.
    #[track_caller]
    pub fn hadamard(&self, b: &Mat) -> Mat {
        assert_eq!(self.shape(), b.shape(), "hadamard: shape mismatch");
        let mut out = self.clone();
        for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
            *o *= x;
        }
        out
    }

    /// `self += other`.
    #[track_caller]
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (o, x) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o += x;
        }
    }

    /// `self += alpha * other` (axpy).
    #[track_caller]
    pub fn axpy(&mut self, alpha: f32, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (o, x) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o += alpha * x;
        }
    }

    /// `self - other` as a new matrix.
    #[track_caller]
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let mut out = self.clone();
        for (o, x) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o -= x;
        }
        out
    }

    /// Multiply every element by `s` in place (vectorized; see [`simd`]).
    pub fn scale(&mut self, s: f32) {
        simd::scale_slice(self.as_mut_slice(), s);
    }

    /// A scaled copy.
    pub fn scaled(&self, s: f32) -> Mat {
        let mut out = self.clone();
        out.scale(s);
        out
    }

    /// Row-wise sums.
    pub fn rowsum(&self) -> Vec<f32> {
        (0..self.rows()).map(|r| self.row(r).iter().sum()).collect()
    }

    /// `rowsum(self ∘ other)` without materialising the product — this is the
    /// `D = rowsum(∇O ∘ O)` reduction of Algorithms 1–2.
    #[track_caller]
    pub fn rowsum_hadamard(&self, other: &Mat) -> Vec<f32> {
        assert_eq!(
            self.shape(),
            other.shape(),
            "rowsum_hadamard: shape mismatch"
        );
        (0..self.rows())
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(other.row(r))
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Numerically stable row-wise softmax.
    pub fn softmax_rows(&self) -> Mat {
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if !max.is_finite() {
                // All -inf (fully masked row): define softmax as all zeros.
                row.fill(0.0);
                continue;
            }
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }

    /// Numerically stable row-wise log-sum-exp: `lse[r] = log Σ_c exp(self[r,c])`.
    ///
    /// Fully masked rows (all `-inf`) produce `-inf`, which the online-softmax
    /// merge treats as "no mass yet".
    pub fn lse_rows(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.lse_rows_into(&mut out);
        out
    }

    /// [`Mat::lse_rows`] into a caller-provided vector, reusing its
    /// allocation (the per-tile LSE buffer of [`Scratch`](crate::Scratch)).
    pub fn lse_rows_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend((0..self.rows()).map(|r| {
            let row = self.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if !max.is_finite() {
                return f32::NEG_INFINITY;
            }
            let sum: f32 = row.iter().map(|v| (v - max).exp()).sum();
            max + sum.ln()
        }));
    }

    /// Subtract a per-row scalar and exponentiate: `exp(self[r,c] - s[r])`.
    /// This is the `P = exp(S - Lse)` step shared by Algorithms 1–3.
    #[track_caller]
    pub fn exp_sub_rowwise(&self, s: &[f32]) -> Mat {
        let mut out = self.clone();
        out.exp_sub_rowwise_inplace(s);
        out
    }

    /// In-place [`Mat::exp_sub_rowwise`]: overwrite `S` with
    /// `P = exp(S - Lse)` instead of allocating a probability matrix — the
    /// score tile doubles as the probability tile in the tiled kernels.
    #[track_caller]
    pub fn exp_sub_rowwise_inplace(&mut self, s: &[f32]) {
        assert_eq!(self.rows(), s.len(), "exp_sub_rowwise: row count mismatch");
        for (r, &shift) in s.iter().enumerate() {
            if shift.is_finite() {
                // Vectorized polynomial exp; -inf (masked) scores flush to 0.
                simd::exp_shift_inplace(self.row_mut(r), shift);
            } else {
                for v in self.row_mut(r) {
                    // exp(-inf - -inf) must be 0, not NaN: a masked row has
                    // no mass.
                    *v = if v.is_finite() {
                        (*v - shift).exp()
                    } else {
                        0.0
                    };
                }
            }
        }
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Index of the maximum in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|r| {
                self.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// `C = A · B` into a caller-provided matrix; `out` is reshaped to `m × n`
/// in place (zero heap traffic once its capacity has reached steady state).
#[track_caller]
pub fn matmul_into(a: MatRef<'_>, b: MatRef<'_>, out: &mut Mat) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    out.reshape_in_place(m, n);
    let use_simd = simd::avx2_active();
    let panel = simd::col_panel(n);
    run_blocked(out, m, m * n * k, |rows, r0, len| {
        matmul_nn_block(a, b, rows, r0, len, n, use_simd, panel);
    });
}

/// `C = A · Bᵀ` into a caller-provided matrix (see [`matmul_into`]).
#[track_caller]
pub fn matmul_nt_into(a: MatRef<'_>, b: MatRef<'_>, out: &mut Mat) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: inner dims {}x{} · ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    out.reshape_in_place(m, n);
    let use_simd = simd::avx2_active();
    run_blocked(out, m, m * n * k, |rows, r0, len| {
        matmul_nt_block(a, b, rows, r0, len, n, use_simd);
    });
}

/// `C = Aᵀ · B` into a caller-provided matrix (see [`matmul_into`]).
/// Output rows index columns of `A`, so row blocks are independent and the
/// same dispatch applies.
#[track_caller]
pub fn matmul_tn_into(a: MatRef<'_>, b: MatRef<'_>, out: &mut Mat) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: inner dims ({}x{})ᵀ · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    out.reshape_in_place(m, n);
    let use_simd = simd::avx2_active();
    run_blocked(out, m, m * n * k, |rows, c0, len| {
        matmul_tn_block(a, b, rows, c0, len, n, use_simd);
    });
}

/// `dst[row0..][..src.rows()] += alpha · src`, where `dst` is the raw
/// row-major storage of a matrix with `src.cols()` columns.
///
/// The tiled kernels accumulate per-tile products into gradient buffers
/// through this; it takes a raw slice (not [`Mat`]) so parallel passes can
/// hand each task a disjoint `split_at_mut` region of one output.
pub fn axpy_rows_slice(dst: &mut [f32], row0: usize, alpha: f32, src: &Mat) {
    let w = src.cols();
    let dst = &mut dst[row0 * w..(row0 + src.rows()) * w];
    for (d, s) in dst.iter_mut().zip(src.as_slice()) {
        *d += alpha * s;
    }
}

/// Deterministic pairwise (tree) reduction of a slice. The association is a
/// fixed balanced split, so the result depends only on the input — not on
/// chunking, thread count, or accumulation order of the producer.
pub fn tree_sum(xs: &[f32]) -> f32 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        2 => xs[0] + xs[1],
        len => {
            let (lo, hi) = xs.split_at(len / 2);
            tree_sum(lo) + tree_sum(hi)
        }
    }
}

/// Dispatch a row-blocked kernel either serially or across rayon tasks.
///
/// The parallel path hands each `PAR_ROW_BLOCK`-row chunk to a task; the
/// serial path runs one call covering all rows. Because every kernel
/// processes rows in [`MR`]-row quads *relative to the chunk start* and
/// `PAR_ROW_BLOCK % MR == 0`, both paths group the same global rows into
/// the same quads, and each output element sees the same ascending-k
/// accumulation either way — results are bit-identical across thread
/// counts.
fn run_blocked(
    out: &mut Mat,
    m: usize,
    volume: usize,
    kernel: impl Fn(&mut [f32], usize, usize) + Sync,
) {
    let n = out.cols();
    // A one-thread pool still pays rayon's producer-splitting and join
    // machinery per call — measurable when the tiled kernels issue
    // thousands of small products — so only fork when it can help.
    if volume >= PAR_THRESHOLD && m > PAR_ROW_BLOCK && rayon::current_num_threads() > 1 {
        out.as_mut_slice()
            .par_chunks_mut(PAR_ROW_BLOCK * n)
            .enumerate()
            .for_each(|(bi, chunk)| {
                let r0 = bi * PAR_ROW_BLOCK;
                kernel(chunk, r0, chunk.len() / n);
            });
    } else {
        let slice = out.as_mut_slice();
        kernel(slice, 0, m);
    }
}

/// Fixed-order pairwise reduction of one emulated vector register. The
/// association is baked into the code, so the value never depends on how
/// the caller was dispatched. Shared with the AVX2 kernels in
/// [`crate::simd`], which spill their 256-bit accumulators to `[f32; 8]`
/// and reduce through this exact association — that reduction is what
/// keeps the two paths bit-identical.
#[inline(always)]
pub(crate) fn hsum8(v: [f32; VL]) -> f32 {
    ((v[0] + v[1]) + (v[2] + v[3])) + ((v[4] + v[5]) + (v[6] + v[7]))
}

// ---------------------------------------------------------------------------
// Dispatch happens at the *block driver* level: each `matmul_*_block` below
// jumps to its AVX2+FMA twin in [`crate::simd`] when `use_simd` is set
// (decided once per `_into` call by `simd::avx2_active`), so the vector
// path pays one branch per block and the `#[target_feature]` microkernels
// inline into their drivers. Both branches contract every multiply-add into
// a single-rounding IEEE FMA (`f32::mul_add` ⟷ `_mm256_fmadd_ps`), so
// either yields the same bits. Column tails run the shared scalar tail
// kernels in both modes.
// ---------------------------------------------------------------------------

/// `R × C` register-blocked panel of `A · Bᵀ`: accumulate
/// `out[or0+p][c0+q] += Σ_k a[r0+p][k] · b[c0+q][k]`.
///
/// A plain dot product is one serial FP add chain, which LLVM cannot
/// vectorize (float addition is not associative). Each accumulator here is
/// an emulated 8-lane vector (`[f32; VL]`) updated element-wise over
/// `VL`-wide chunks of `k` — that's a single SIMD FMA per chunk — and the
/// `R*C` accumulators give the FPU independent chains to overlap. Lanes are
/// combined by the fixed-order [`hsum8`] at the end, and any `k % VL` tail
/// accumulates into lane 0, so the value for a given output element depends
/// only on this code path — never on `R`, `C`, or the dispatch that chose
/// them. This is where the scores (`Q Kᵀ`) and logits (`H Wᵀ`) products get
/// their speedup.
#[inline(always)]
fn nt_micro<const R: usize, const C: usize>(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    n: usize,
    r0: usize,
    or0: usize,
    c0: usize,
) {
    let k = a.cols();
    let arows: [&[f32]; R] = std::array::from_fn(|p| &a.row(r0 + p)[..k]);
    let brows: [&[f32]; C] = std::array::from_fn(|q| &b.row(c0 + q)[..k]);
    let mut acc = [[[0.0f32; VL]; C]; R];
    let whole = k - k % VL;
    let mut i = 0;
    while i < whole {
        for p in 0..R {
            for q in 0..C {
                let av = &arows[p][i..i + VL];
                let bv = &brows[q][i..i + VL];
                for l in 0..VL {
                    acc[p][q][l] = av[l].mul_add(bv[l], acc[p][q][l]);
                }
            }
        }
        i += VL;
    }
    while i < k {
        for p in 0..R {
            for q in 0..C {
                acc[p][q][0] = arows[p][i].mul_add(brows[q][i], acc[p][q][0]);
            }
        }
        i += 1;
    }
    for p in 0..R {
        for q in 0..C {
            out[(or0 + p) * n + c0 + q] += hsum8(acc[p][q]);
        }
    }
}

/// `R × NR` output-stationary panel of `A · B`: the `R`-row,
/// `NR`-column output tile lives in registers across the whole `k` loop;
/// each step broadcasts `a[r0+p][i]` against a contiguous `NR`-wide slice
/// of row `b[i]`. Output memory is touched exactly once per tile and each
/// streamed `B` slice is reused `R` times from registers.
// Index-form loops are deliberate here: the accumulation order is part of
// the determinism contract and the codegen is tuned around this exact shape.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn nn_micro<const R: usize>(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    n: usize,
    r0: usize,
    or0: usize,
    c0: usize,
) {
    let k = a.cols();
    let arows: [&[f32]; R] = std::array::from_fn(|p| &a.row(r0 + p)[..k]);
    let mut acc = [[0.0f32; NR]; R];
    for i in 0..k {
        let brow = &b.row(i)[c0..c0 + NR];
        for p in 0..R {
            let x = arows[p][i];
            for l in 0..NR {
                acc[p][l] = x.mul_add(brow[l], acc[p][l]);
            }
        }
    }
    for p in 0..R {
        let orow = &mut out[(or0 + p) * n + c0..(or0 + p) * n + c0 + NR];
        for l in 0..NR {
            orow[l] += acc[p][l];
        }
    }
}

/// Column remainder of [`nn_micro`] (`cn < NR` trailing columns):
/// accumulates straight into `out` in the same ascending-`k` order. Only
/// runs when `n % NR != 0`, so its throughput is irrelevant; it is shared
/// verbatim with the AVX2 drivers in [`crate::simd`].
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn nn_micro_tail<const R: usize>(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    n: usize,
    r0: usize,
    or0: usize,
    c0: usize,
    cn: usize,
) {
    let k = a.cols();
    let arows: [&[f32]; R] = std::array::from_fn(|p| &a.row(r0 + p)[..k]);
    for i in 0..k {
        let brow = &b.row(i)[c0..c0 + cn];
        for p in 0..R {
            let x = arows[p][i];
            let orow = &mut out[(or0 + p) * n + c0..(or0 + p) * n + c0 + cn];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = x.mul_add(bv, *o);
            }
        }
    }
}

/// `R × NR` output-stationary panel of `Aᵀ · B` (outer-product
/// accumulation): structure mirrors [`nn_micro`] with the broadcast taken
/// from a column of `A`; output rows `[i0, i0+R)` gather
/// `Σ_r a[r][ac0+i0+p] · b[r][c0..c0+NR]` in ascending-`r` order.
#[inline(always)]
fn tn_micro<const R: usize>(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    n: usize,
    ac0: usize,
    i0: usize,
    c0: usize,
) {
    let k = a.rows();
    let mut acc = [[0.0f32; NR]; R];
    for r in 0..k {
        let arow = a.row(r);
        let brow = &b.row(r)[c0..c0 + NR];
        for p in 0..R {
            let x = arow[ac0 + i0 + p];
            for l in 0..NR {
                acc[p][l] = x.mul_add(brow[l], acc[p][l]);
            }
        }
    }
    for p in 0..R {
        let orow = &mut out[(i0 + p) * n + c0..(i0 + p) * n + c0 + NR];
        for l in 0..NR {
            orow[l] += acc[p][l];
        }
    }
}

/// Column remainder of [`tn_micro`], analogous to [`nn_micro_tail`].
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn tn_micro_tail<const R: usize>(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    n: usize,
    ac0: usize,
    i0: usize,
    c0: usize,
    cn: usize,
) {
    let k = a.rows();
    for r in 0..k {
        let arow = a.row(r);
        let brow = &b.row(r)[c0..c0 + cn];
        for p in 0..R {
            let x = arow[ac0 + i0 + p];
            let orow = &mut out[(i0 + p) * n + c0..(i0 + p) * n + c0 + cn];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = x.mul_add(bv, *o);
            }
        }
    }
}

/// `out[0..len] += A[r0..r0+len] · B`, in `MR`-row quads relative to `r0`
/// and `NR`-column register tiles, visited one column panel at a time.
///
/// Panelling bounds how much of `B` each pass over the row quads streams,
/// so a panel of `B` stays cache-resident across all quads; `panel` comes
/// from the autotuner ([`simd::col_panel`], `usize::MAX` = no panelling).
/// Every output element still accumulates inside a single micro call in
/// ascending-`k` order, so the panel width never affects values — only the
/// order in which independent output tiles are visited.
#[allow(clippy::too_many_arguments)]
fn matmul_nn_block(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    r0: usize,
    len: usize,
    n: usize,
    use_simd: bool,
    panel: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        unsafe { simd::x86::nn_block_avx2(a, b, out, r0, len, n, panel) };
        return;
    }
    let _ = use_simd;
    let mut p0 = 0;
    while p0 < n {
        let pend = if panel == usize::MAX {
            n
        } else {
            n.min(p0 + panel)
        };
        let span = pend - p0;
        let cwhole = p0 + (span - span % NR);
        let mut r = 0;
        while r < len {
            let mut c = p0;
            if r + MR <= len {
                while c < cwhole {
                    nn_micro::<MR>(a, b, out, n, r0 + r, r, c);
                    c += NR;
                }
                if c < pend {
                    nn_micro_tail::<MR>(a, b, out, n, r0 + r, r, c, pend - c);
                }
                r += MR;
            } else {
                while c < cwhole {
                    nn_micro::<1>(a, b, out, n, r0 + r, r, c);
                    c += NR;
                }
                if c < pend {
                    nn_micro_tail::<1>(a, b, out, n, r0 + r, r, c, pend - c);
                }
                r += 1;
            }
        }
        p0 = pend;
    }
}

/// [`matmul_nn_block`] with an explicit panel width — the autotuner's probe
/// target (and the hook tests use to prove panel choice is value-neutral).
pub(crate) fn nn_block_with_panel(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    r0: usize,
    len: usize,
    n: usize,
    panel: usize,
) {
    matmul_nn_block(a, b, out, r0, len, n, simd::avx2_active(), panel);
}

/// `out[0..len] += A[r0..r0+len] · Bᵀ`, in `MR × NTC` register blocks
/// (eight 8-lane accumulators — small enough to stay in registers).
fn matmul_nt_block(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    r0: usize,
    len: usize,
    n: usize,
    use_simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        unsafe { simd::x86::nt_block_avx2(a, b, out, r0, len, n) };
        return;
    }
    let _ = use_simd;
    let mut r = 0;
    while r + MR <= len {
        let mut c = 0;
        while c + NTC <= n {
            nt_micro::<MR, NTC>(a, b, out, n, r0 + r, r, c);
            c += NTC;
        }
        while c < n {
            nt_micro::<MR, 1>(a, b, out, n, r0 + r, r, c);
            c += 1;
        }
        r += MR;
    }
    while r < len {
        let mut c = 0;
        while c + NTC <= n {
            nt_micro::<1, NTC>(a, b, out, n, r0 + r, r, c);
            c += NTC;
        }
        while c < n {
            nt_micro::<1, 1>(a, b, out, n, r0 + r, r, c);
            c += 1;
        }
        r += 1;
    }
}

/// `out[0..len] += (Aᵀ · B)[c0..c0+len]` where `out` rows index columns of A.
fn matmul_tn_block(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    c0: usize,
    len: usize,
    n: usize,
    use_simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        unsafe { simd::x86::tn_block_avx2(a, b, out, c0, len, n) };
        return;
    }
    let _ = use_simd;
    let cwhole = n - n % NR;
    let mut i = 0;
    while i < len {
        let mut c = 0;
        if i + MR <= len {
            while c < cwhole {
                tn_micro::<MR>(a, b, out, n, c0, i, c);
                c += NR;
            }
            if c < n {
                tn_micro_tail::<MR>(a, b, out, n, c0, i, c, n - c);
            }
            i += MR;
        } else {
            while c < cwhole {
                tn_micro::<1>(a, b, out, n, c0, i, c);
                c += NR;
            }
            if c < n {
                tn_micro_tail::<1>(a, b, out, n, c0, i, c, n - c);
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::mat::Mat;
    use crate::testutil::assert_allclose;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(r, k) * b.get(k, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    fn arange(rows: usize, cols: usize, scale: f32) -> Mat {
        Mat::from_fn(rows, cols, |r, c| ((r * cols + c) as f32).sin() * scale)
    }

    #[test]
    fn matmul_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (17, 33, 9), (64, 64, 64)] {
            let a = arange(m, k, 0.7);
            let b = arange(k, n, 1.3);
            assert_allclose(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4, "matmul");
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Big enough to cross PAR_THRESHOLD and use multiple row blocks.
        let a = arange(96, 48, 0.9);
        let b = arange(48, 40, 1.1);
        assert_allclose(&a.matmul(&b), &naive_matmul(&a, &b), 1e-3, "matmul par");
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = arange(7, 11, 0.5);
        let b = arange(13, 11, 0.8);
        assert_allclose(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-4, "nt");
        let big_a = arange(80, 64, 0.5);
        let big_b = arange(72, 64, 0.8);
        assert_allclose(
            &big_a.matmul_nt(&big_b),
            &big_a.matmul(&big_b.transpose()),
            1e-3,
            "nt par",
        );
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = arange(11, 7, 0.5);
        let b = arange(11, 13, 0.8);
        assert_allclose(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4, "tn");
        let big_a = arange(64, 80, 0.5);
        let big_b = arange(64, 72, 0.8);
        assert_allclose(
            &big_a.matmul_tn(&big_b),
            &big_a.transpose().matmul(&big_b),
            1e-3,
            "tn par",
        );
    }

    #[test]
    fn softmax_rows_sum_to_one_and_is_shift_invariant() {
        let m = arange(5, 9, 3.0);
        let sm = m.softmax_rows();
        for r in 0..5 {
            let s: f32 = sm.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
        let mut shifted = m.clone();
        for r in 0..5 {
            for v in shifted.row_mut(r) {
                *v += 100.0;
            }
        }
        assert_allclose(&shifted.softmax_rows(), &sm, 1e-5, "shift invariance");
    }

    #[test]
    fn softmax_handles_fully_masked_row() {
        let m = Mat::from_vec(1, 3, vec![f32::NEG_INFINITY; 3]);
        let sm = m.softmax_rows();
        assert_eq!(sm.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.lse_rows()[0], f32::NEG_INFINITY);
    }

    #[test]
    fn lse_matches_log_of_sum() {
        let m = arange(4, 6, 2.0);
        let lse = m.lse_rows();
        for (r, &l) in lse.iter().enumerate() {
            let direct: f32 = m.row(r).iter().map(|v| v.exp()).sum::<f32>().ln();
            assert!((l - direct).abs() < 1e-5);
        }
    }

    #[test]
    fn exp_sub_rowwise_reproduces_softmax() {
        let m = arange(4, 6, 2.0);
        let lse = m.lse_rows();
        let p = m.exp_sub_rowwise(&lse);
        assert_allclose(&p, &m.softmax_rows(), 1e-5, "exp_sub");
    }

    #[test]
    fn exp_sub_rowwise_masked_row_is_zero() {
        let m = Mat::from_vec(1, 2, vec![f32::NEG_INFINITY; 2]);
        let p = m.exp_sub_rowwise(&[f32::NEG_INFINITY]);
        assert_eq!(p.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn rowsum_hadamard_matches_composition() {
        let a = arange(6, 5, 1.0);
        let b = arange(6, 5, 0.4);
        let d = a.rowsum_hadamard(&b);
        let explicit = a.hadamard(&b).rowsum();
        for (x, y) in d.iter().zip(&explicit) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Mat::full(2, 2, 1.0);
        let b = Mat::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.row(0), &[2.0, 2.0]);
        a.scale(2.0);
        assert_eq!(a.row(1), &[4.0, 4.0]);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let m = Mat::from_vec(2, 3, vec![0.1, 0.9, 0.3, 5.0, -1.0, 2.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn into_variants_match_owned_bitwise_and_reuse_allocation() {
        use crate::ops::{matmul_into, matmul_nt_into, matmul_tn_into};
        let a = arange(37, 29, 0.7);
        let b = arange(29, 23, 1.1);
        let bt = arange(23, 29, 1.1);
        let at = arange(29, 37, 0.7);

        let mut out = Mat::zeros(64, 64); // larger than any result below
        let ptr = out.as_slice().as_ptr();

        matmul_into(a.view(), b.view(), &mut out);
        assert_eq!(out, a.matmul(&b));
        matmul_nt_into(a.view(), bt.view(), &mut out);
        assert_eq!(out, a.matmul_nt(&bt));
        matmul_tn_into(at.view(), b.view(), &mut out);
        assert_eq!(out, at.matmul_tn(&b));
        // Every product above fit in the original capacity: no reallocation.
        assert_eq!(out.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn into_variants_accept_row_views() {
        use crate::ops::matmul_nt_into;
        let a = arange(24, 16, 0.5);
        let b = arange(40, 16, 0.9);
        let mut out = Mat::default();
        matmul_nt_into(a.rows_view(8, 20), b.rows_view(4, 36), &mut out);
        assert_eq!(out, a.slice_rows(8, 20).matmul_nt(&b.slice_rows(4, 36)));
    }

    #[test]
    fn quad_grouping_is_consistent_across_block_splits() {
        // A 40-row product crosses the 32-row parallel block boundary, so
        // rows 32..40 land in a second chunk; results must still be
        // bit-identical to computing each row block separately, because
        // quads are aligned to multiples of MR from each chunk start and
        // PAR_ROW_BLOCK % MR == 0.
        let a = arange(40, 64, 0.6);
        let b = arange(48, 64, 0.9);
        let whole = a.matmul_nt(&b);
        for split in [4, 12, 32] {
            let top = a.slice_rows(0, split).matmul_nt(&b);
            let bot = a.slice_rows(split, 40).matmul_nt(&b);
            let mut glued = Mat::zeros(40, 48);
            glued.set_rows(0, &top);
            glued.set_rows(split, &bot);
            assert_eq!(glued, whole, "split at {split}");
        }
    }

    #[test]
    fn tree_sum_matches_sequential_within_tolerance() {
        use crate::ops::tree_sum;
        assert_eq!(tree_sum(&[]), 0.0);
        assert_eq!(tree_sum(&[2.5]), 2.5);
        assert_eq!(tree_sum(&[1.0, 2.0]), 3.0);
        let xs: Vec<f32> = (0..1000)
            .map(|i| ((i * 37) % 101) as f32 * 0.01 - 0.5)
            .collect();
        let seq: f32 = xs.iter().sum();
        let tree = tree_sum(&xs);
        assert!((seq - tree).abs() < 1e-3, "seq {seq} vs tree {tree}");
        // Determinism: identical association every call.
        assert_eq!(tree.to_bits(), tree_sum(&xs).to_bits());
    }

    #[test]
    fn exp_sub_rowwise_inplace_matches_allocating_variant() {
        let m = arange(6, 9, 2.0);
        let lse = m.lse_rows();
        let mut inplace = m.clone();
        inplace.exp_sub_rowwise_inplace(&lse);
        assert_eq!(inplace, m.exp_sub_rowwise(&lse));
    }

    #[test]
    fn lse_rows_into_reuses_buffer() {
        let m = arange(8, 5, 1.5);
        let mut buf = Vec::with_capacity(16);
        let ptr = buf.as_ptr();
        m.lse_rows_into(&mut buf);
        assert_eq!(buf, m.lse_rows());
        assert_eq!(buf.as_ptr(), ptr);
    }
}
