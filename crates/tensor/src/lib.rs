//! # burst-tensor
//!
//! Dense `f32` tensor substrate underlying the BurstEngine reproduction.
//!
//! The crate deliberately implements only what the attention / transformer
//! kernels need, but implements it well:
//!
//! * [`Mat`] — an owned, row-major 2-D matrix with cache-blocked,
//!   rayon-parallel matrix products in all transpose variants
//!   ([`Mat::matmul`], [`Mat::matmul_nt`], [`Mat::matmul_tn`]),
//! * numerically robust row-wise softmax and log-sum-exp ([`Mat::softmax_rows`],
//!   [`Mat::lse_rows`]) used by the online-softmax machinery,
//! * deterministic random initialisation ([`random`]),
//! * test utilities: [`testutil::allclose`] and a central-difference
//!   numerical gradient checker ([`testutil::numerical_grad`]).
//!
//! Shape mismatches are programming errors and panic with a precise message
//! (the same contract `ndarray` and BLAS wrappers use); the hot paths carry
//! no `Result` overhead.

pub mod bf16;
pub mod mat;
pub mod ops;
pub mod random;
pub mod testutil;

pub use bf16::round_bf16;
pub use mat::Mat;
pub use random::{randn_mat, uniform_mat, SeedStream};
