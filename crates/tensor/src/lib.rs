//! # burst-tensor
//!
//! Dense `f32` tensor substrate underlying the BurstEngine reproduction.
//!
//! The crate deliberately implements only what the attention / transformer
//! kernels need, but implements it well:
//!
//! * [`Mat`] — an owned, row-major 2-D matrix with register-blocked,
//!   cache-tiled, rayon-parallel matrix products in all transpose variants
//!   ([`Mat::matmul`], [`Mat::matmul_nt`], [`Mat::matmul_tn`]), plus
//!   allocation-free `_into` variants ([`matmul_into`], [`matmul_nt_into`],
//!   [`matmul_tn_into`]) over borrowed [`MatRef`] views,
//! * [`Scratch`] — a reusable workspace the tiled kernels thread through
//!   their tile loops so steady-state iterations (ring rounds in
//!   particular) perform zero heap allocations,
//! * numerically robust row-wise softmax and log-sum-exp ([`Mat::softmax_rows`],
//!   [`Mat::lse_rows`]) used by the online-softmax machinery,
//! * deterministic random initialisation ([`random`]),
//! * test utilities: [`testutil::allclose`] and a central-difference
//!   numerical gradient checker ([`testutil::numerical_grad`]).
//!
//! Shape mismatches are programming errors and panic with a precise message
//! (the same contract `ndarray` and BLAS wrappers use); the hot paths carry
//! no `Result` overhead.

pub mod bf16;
pub mod mat;
pub mod ops;
pub mod random;
pub mod scratch;
pub mod simd;
pub mod testutil;

pub use bf16::{decode_bf16, encode_bf16, round_bf16, Bf16Mat};
pub use mat::{Mat, MatRef};
pub use ops::{axpy_rows_slice, matmul_into, matmul_nt_into, matmul_tn_into, tree_sum};
pub use random::{randn_mat, uniform_mat, SeedStream};
pub use scratch::Scratch;
