//! The [`Mat`] type: an owned, row-major, dense `f32` matrix, and the
//! borrowed row-block view [`MatRef`] that lets kernels slice operands
//! without copying.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A borrowed, row-major, dense `f32` matrix view.
///
/// `MatRef` is what the tiled kernels consume: a row block of a [`Mat`]
/// (`q.rows_view(r0, r1)`) is a `MatRef` borrowing the parent's storage, so
/// tiling never copies operands — the allocation the old
/// [`Mat::slice_rows`]-based tile loops paid on every tile.
#[derive(Clone, Copy, Debug)]
pub struct MatRef<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f32],
}

impl<'a> MatRef<'a> {
    /// View over raw row-major storage. Panics if the slice length is not
    /// `rows * cols`.
    #[track_caller]
    pub fn from_slice(rows: usize, cols: usize, data: &'a [f32]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "MatRef::from_slice: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        MatRef { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    #[track_caller]
    pub fn row(&self, r: usize) -> &'a [f32] {
        debug_assert!(r < self.rows, "MatRef::row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sub-view of rows `[start, end)` (no copy).
    #[inline]
    #[track_caller]
    pub fn rows_view(&self, start: usize, end: usize) -> MatRef<'a> {
        assert!(
            start <= end && end <= self.rows,
            "MatRef::rows_view: invalid range {start}..{end} of {} rows",
            self.rows
        );
        MatRef {
            rows: end - start,
            cols: self.cols,
            data: &self.data[start * self.cols..end * self.cols],
        }
    }

    /// An owning copy.
    pub fn to_mat(&self) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.to_vec(),
        }
    }
}

impl<'a> From<&'a Mat> for MatRef<'a> {
    fn from(m: &'a Mat) -> Self {
        m.view()
    }
}

/// An owned, row-major, dense `f32` matrix.
///
/// `Mat` is the workhorse of the whole reproduction: query/key/value
/// partitions, attention probabilities, gradients and parameter shards are
/// all `Mat`s. Element `(r, c)` lives at `data[r * cols + c]`.
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Mat {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Mat {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major vector. Panics if `data.len() != rows * cols`.
    #[track_caller]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Build a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes of payload (`4 * len`), used by the memory trackers.
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume and return the backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    #[track_caller]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols, "Mat::get out of bounds");
        self.data[r * self.cols + c]
    }

    #[inline]
    #[track_caller]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols, "Mat::set out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    #[track_caller]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "Mat::row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    #[track_caller]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "Mat::row_mut out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrowed view of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatRef<'_> {
        MatRef {
            rows: self.rows,
            cols: self.cols,
            data: &self.data,
        }
    }

    /// Borrowed view of rows `[start, end)` — the no-copy counterpart of
    /// [`Mat::slice_rows`].
    #[inline]
    #[track_caller]
    pub fn rows_view(&self, start: usize, end: usize) -> MatRef<'_> {
        assert!(
            start <= end && end <= self.rows,
            "Mat::rows_view: invalid range {start}..{end} of {} rows",
            self.rows
        );
        MatRef {
            rows: end - start,
            cols: self.cols,
            data: &self.data[start * self.cols..end * self.cols],
        }
    }

    /// Resize to `rows × cols` zeros, reusing the backing allocation when
    /// its capacity suffices. This is the primitive behind
    /// [`Scratch`](crate::Scratch): after a warm-up round, scratch matrices
    /// cycle through shapes without touching the heap.
    pub fn reshape_in_place(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `self[row0 + r] += alpha * src[r]` for every row of `src` — in-place
    /// accumulation of a row block scaled by `alpha`, without materialising
    /// the scaled operand.
    #[track_caller]
    pub fn axpy_rows(&mut self, row0: usize, alpha: f32, src: &Mat) {
        assert_eq!(self.cols, src.cols, "Mat::axpy_rows: col mismatch");
        assert!(
            row0 + src.rows <= self.rows,
            "Mat::axpy_rows: rows {}..{} out of {}",
            row0,
            row0 + src.rows,
            self.rows
        );
        let dst = &mut self.data[row0 * self.cols..(row0 + src.rows) * self.cols];
        for (d, s) in dst.iter_mut().zip(&src.data) {
            *d += alpha * s;
        }
    }

    /// Copy of rows `[start, end)` as a new matrix.
    #[track_caller]
    pub fn slice_rows(&self, start: usize, end: usize) -> Mat {
        assert!(
            start <= end && end <= self.rows,
            "Mat::slice_rows: invalid range {start}..{end} of {} rows",
            self.rows
        );
        Mat {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gather an arbitrary set of rows into a new matrix.
    #[track_caller]
    pub fn gather_rows(&self, idx: &[usize]) -> Mat {
        let mut out = Mat::zeros(idx.len(), self.cols);
        for (dst, &src) in idx.iter().enumerate() {
            assert!(
                src < self.rows,
                "Mat::gather_rows: index {src} out of bounds"
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Scatter-add `src`'s rows into `self` at positions `idx`
    /// (`self[idx[k]] += src[k]`). The inverse of [`Mat::gather_rows`] for
    /// gradient accumulation.
    #[track_caller]
    pub fn scatter_add_rows(&mut self, idx: &[usize], src: &Mat) {
        assert_eq!(idx.len(), src.rows, "scatter_add_rows: index/src mismatch");
        assert_eq!(self.cols, src.cols, "scatter_add_rows: col mismatch");
        for (k, &dst) in idx.iter().enumerate() {
            assert!(
                dst < self.rows,
                "scatter_add_rows: index {dst} out of bounds"
            );
            let row = src.row(k);
            let out = self.row_mut(dst);
            for (o, s) in out.iter_mut().zip(row) {
                *o += s;
            }
        }
    }

    /// Overwrite rows `[start, start + src.rows)` with `src`.
    #[track_caller]
    pub fn set_rows(&mut self, start: usize, src: &Mat) {
        assert_eq!(self.cols, src.cols, "Mat::set_rows: col mismatch");
        assert!(
            start + src.rows <= self.rows,
            "Mat::set_rows: rows {}..{} out of {}",
            start,
            start + src.rows,
            self.rows
        );
        self.data[start * self.cols..(start + src.rows) * self.cols].copy_from_slice(&src.data);
    }

    /// Stack matrices vertically (all must share `cols`).
    #[track_caller]
    pub fn vstack(parts: &[Mat]) -> Mat {
        assert!(!parts.is_empty(), "Mat::vstack: empty input");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "Mat::vstack: col mismatch");
            data.extend_from_slice(&p.data);
        }
        Mat { rows, cols, data }
    }

    /// Stack matrices horizontally (all must share `rows`).
    #[track_caller]
    pub fn hstack(parts: &[Mat]) -> Mat {
        assert!(!parts.is_empty(), "Mat::hstack: empty input");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Mat::zeros(rows, cols);
        let mut off = 0;
        for p in parts {
            assert_eq!(p.rows, rows, "Mat::hstack: row mismatch");
            for r in 0..rows {
                out.data[r * cols + off..r * cols + off + p.cols].copy_from_slice(p.row(r));
            }
            off += p.cols;
        }
        out
    }

    /// Copy of columns `[start, end)` as a new matrix.
    #[track_caller]
    pub fn slice_cols(&self, start: usize, end: usize) -> Mat {
        assert!(
            start <= end && end <= self.cols,
            "Mat::slice_cols: invalid range {start}..{end} of {} cols",
            self.cols
        );
        let mut out = Mat::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Split into `parts` equal row blocks. Panics unless `rows % parts == 0`.
    #[track_caller]
    pub fn chunk_rows(&self, parts: usize) -> Vec<Mat> {
        assert!(parts > 0, "chunk_rows: parts must be > 0");
        assert_eq!(
            self.rows % parts,
            0,
            "chunk_rows: {} rows not divisible by {} parts",
            self.rows,
            parts
        );
        let step = self.rows / parts;
        (0..parts)
            .map(|i| self.slice_rows(i * step, (i + 1) * step))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Mat::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(m.nbytes(), 48);
    }

    #[test]
    fn eye_is_identity() {
        let i = Mat::eye(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_checks_len() {
        let _ = Mat::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn slice_and_stack_roundtrip() {
        let m = Mat::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        let parts = m.chunk_rows(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[1].row(0), m.row(2));
        let back = Mat::vstack(&parts);
        assert_eq!(back, m);
    }

    #[test]
    fn hstack_and_slice_cols_roundtrip() {
        let m = Mat::from_fn(4, 6, |r, c| (r * 6 + c) as f32);
        let a = m.slice_cols(0, 2);
        let b = m.slice_cols(2, 6);
        assert_eq!(Mat::hstack(&[a, b]), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(3, 5, |r, c| (r * 5 + c) as f32 * 0.5);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn gather_scatter_are_inverse_on_disjoint_indices() {
        let m = Mat::from_fn(5, 2, |r, c| (r * 2 + c) as f32);
        let idx = [4usize, 0, 2];
        let g = m.gather_rows(&idx);
        assert_eq!(g.row(0), m.row(4));
        let mut acc = Mat::zeros(5, 2);
        acc.scatter_add_rows(&idx, &g);
        for &i in &idx {
            assert_eq!(acc.row(i), m.row(i));
        }
        assert_eq!(acc.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn views_borrow_without_copying() {
        let m = Mat::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        let v = m.view();
        assert_eq!((v.rows(), v.cols()), m.shape());
        let blk = m.rows_view(2, 5);
        assert_eq!(blk.rows(), 3);
        assert_eq!(blk.row(0), m.row(2));
        assert_eq!(blk.rows_view(1, 3).row(0), m.row(3));
        assert_eq!(blk.to_mat(), m.slice_rows(2, 5));
        // Views alias the parent storage.
        assert_eq!(v.as_slice().as_ptr(), m.as_slice().as_ptr());
    }

    #[test]
    fn reshape_in_place_reuses_capacity() {
        let mut m = Mat::from_fn(8, 8, |_, _| 1.0);
        let cap = m.data.capacity();
        let ptr = m.data.as_ptr();
        m.reshape_in_place(4, 6);
        assert_eq!(m.shape(), (4, 6));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.data.capacity(), cap);
        assert_eq!(m.data.as_ptr(), ptr);
        // Growing past capacity still works (may reallocate).
        m.reshape_in_place(16, 16);
        assert_eq!(m.shape(), (16, 16));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn axpy_rows_accumulates_scaled_block() {
        let mut acc = Mat::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let src = Mat::from_fn(2, 2, |r, c| (r + c) as f32 + 1.0);
        acc.axpy_rows(1, 2.0, &src);
        assert_eq!(acc.row(0), &[0.0, 1.0]);
        assert_eq!(acc.row(1), &[2.0 + 2.0, 3.0 + 4.0]);
        assert_eq!(acc.row(2), &[4.0 + 4.0, 5.0 + 6.0]);
        assert_eq!(acc.row(3), &[6.0, 7.0]);
    }

    #[test]
    fn set_rows_writes_block() {
        let mut m = Mat::zeros(4, 2);
        let blk = Mat::from_fn(2, 2, |r, c| (r + c) as f32 + 1.0);
        m.set_rows(1, &blk);
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        assert_eq!(m.row(2), &[2.0, 3.0]);
        assert_eq!(m.row(3), &[0.0, 0.0]);
    }
}
