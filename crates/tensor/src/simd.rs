//! Runtime-dispatched AVX2+FMA kernels with a bit-identical scalar
//! fallback, plus the cache-blocking autotuner and the shared polynomial
//! `exp` used by the softmax tile loops.
//!
//! ## Dispatch contract
//!
//! The scalar microkernels in [`crate::ops`] emulate fixed-width SIMD:
//! reduction accumulators are `[f32; 8]` arrays combined by a fixed-order
//! pairwise `hsum8`, and output-stationary tiles are `[f32; 16]` arrays
//! updated lane-wise. The AVX2 kernels here map those lanes 1:1 onto
//! 256-bit registers. Both paths contract every multiply-accumulate into a
//! **single-rounding IEEE fused multiply-add** — `f32::mul_add` on the
//! scalar side, `_mm256_fmadd_ps` on the vector side — which are the same
//! operation bit-for-bit, so every lane performs the exact op sequence of
//! its scalar counterpart and the two paths are bit-identical. That is what
//! lets one CI matrix cover both, and keeps every oracle bound and
//! cross-schedule equivalence gate valid regardless of which branch ran.
//!
//! Dispatch is decided once per process from
//! `is_x86_feature_detected!("avx2")` + `("fma")` and the `BURST_NO_SIMD`
//! environment knob (any non-empty value other than `0` forces the scalar
//! fallback), cached in an atomic. Tests that toggle the knob mid-process
//! call [`refresh`]. The dispatch point is the *block driver*, not the
//! microkernel: the AVX2 drivers in this module mirror the scalar drivers'
//! loop structure exactly and their `#[target_feature]` microkernels inline
//! into them, so the vector path pays one branch per matmul block, not one
//! opaque call per register tile. Column tails run the shared scalar tail
//! kernels in both modes.
//!
//! ## The shared `exp`
//!
//! `libm`'s `expf` cannot be vectorized bit-compatibly, so the softmax/LSE
//! tile loops route through [`exp_shift_inplace`]: a degree-5 polynomial
//! (Cephes `expf` coefficients, FMA-contracted, round-to-nearest-even
//! argument reduction via the 1.5·2²³ magic-constant trick) evaluated with
//! the identical elementwise operation sequence on both paths. Relative
//! error is a few ulp — far inside every oracle tolerance. Domain
//! contract: inputs are `x − rowmax ≤ 0` or `-∞` (masked); `-∞` and
//! anything below `ln(2⁻¹²⁶)` flush to exactly `0.0`. NaN inputs are
//! outside the contract (masking produces `-∞`, never NaN).
//!
//! ## Autotuner
//!
//! The output-stationary `nn` driver streams the whole `B` panel per 4-row
//! quad; once `B` outgrows L2 that stream thrashes. [`col_panel`] probes a
//! few candidate column-panel widths on a synthetic product at first use
//! (per host, once per process) and caches the fastest. Panel choice only
//! reorders *which output tiles* are visited — each output element still
//! accumulates in the same ascending-`k` order inside a single microkernel
//! call — so the tuned value never changes results, only cache behaviour.
//! `BURST_COL_PANEL=<n>` (0 = no panelling) overrides the probe.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// 0 = undecided, 1 = AVX2+FMA, 2 = scalar fallback.
static DISPATCH: AtomicU8 = AtomicU8::new(0);

fn detect() -> u8 {
    let forced_off = std::env::var_os("BURST_NO_SIMD")
        .is_some_and(|v| !v.is_empty() && v != std::ffi::OsStr::new("0"));
    #[cfg(target_arch = "x86_64")]
    {
        if !forced_off
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return 1;
        }
    }
    let _ = forced_off;
    2
}

/// Re-read `BURST_NO_SIMD` and the CPU features (for tests that flip the
/// knob mid-process; normal code never needs this).
pub fn refresh() {
    DISPATCH.store(detect(), Ordering::Relaxed);
}

/// Whether the AVX2+FMA kernels are active for this process.
#[inline]
pub fn avx2_active() -> bool {
    match DISPATCH.load(Ordering::Relaxed) {
        0 => {
            let d = detect();
            DISPATCH.store(d, Ordering::Relaxed);
            d == 1
        }
        d => d == 1,
    }
}

/// Human-readable dispatch decision (for bench/report provenance).
pub fn dispatch_label() -> &'static str {
    if avx2_active() {
        "avx2+fma"
    } else {
        "scalar"
    }
}

// ---------------------------------------------------------------------------
// Cache-blocking autotuner
// ---------------------------------------------------------------------------

/// 0 = unprobed, `usize::MAX` = no panelling, otherwise the panel width.
static COL_PANEL: AtomicUsize = AtomicUsize::new(0);

/// Column widths the probe races (multiples of the register tile).
const PANEL_CANDIDATES: [usize; 4] = [64, 128, 256, usize::MAX];

/// The tuned output-column panel width for the `nn` driver. Products
/// narrower than the smallest candidate never panel, so tiny matmuls
/// (unit tests) skip the probe entirely.
pub fn col_panel(n: usize) -> usize {
    if n <= PANEL_CANDIDATES[0] {
        return usize::MAX;
    }
    match COL_PANEL.load(Ordering::Relaxed) {
        0 => {
            let p = probe_col_panel();
            COL_PANEL.store(p, Ordering::Relaxed);
            p
        }
        p => p,
    }
}

fn probe_col_panel() -> usize {
    if let Some(v) = std::env::var_os("BURST_COL_PANEL") {
        if let Ok(p) = v.to_string_lossy().parse::<usize>() {
            return if p == 0 { usize::MAX } else { p.max(16) };
        }
    }
    // Race the candidates on a synthetic product wide enough that the B
    // panel (k × n) spills L1: ~1 ms total, once per process.
    let (m, k, n) = (32usize, 64usize, 512usize);
    let a = crate::Mat::from_fn(m, k, |r, c| ((r * 31 + c) % 17) as f32 * 0.25 - 2.0);
    let b = crate::Mat::from_fn(k, n, |r, c| ((r + c * 13) % 23) as f32 * 0.125 - 1.0);
    let mut out = vec![0.0f32; m * n];
    let mut best = (f64::INFINITY, usize::MAX);
    for &panel in &PANEL_CANDIDATES {
        let mut fastest = f64::INFINITY;
        for _ in 0..2 {
            out.fill(0.0);
            let t0 = std::time::Instant::now();
            crate::ops::nn_block_with_panel(a.view(), b.view(), &mut out, 0, m, n, panel);
            fastest = fastest.min(t0.elapsed().as_secs_f64());
        }
        if fastest < best.0 {
            best = (fastest, panel);
        }
    }
    std::hint::black_box(&out);
    best.1
}

// ---------------------------------------------------------------------------
// Shared polynomial exp
// ---------------------------------------------------------------------------

/// Cephes `expf` constants. `C1 + C2 = ln 2` split for exact reduction;
/// `P0..=P5` is the degree-5 minimax polynomial on `[-ln2/2, ln2/2]`.
/// The literals are written at the exact stored `f32` values (clippy would
/// truncate digits that document the exactness, e.g. `C1 = 710/1024`).
#[allow(clippy::excessive_precision)]
mod expc {
    pub const EXP_LOG2E: f32 = std::f32::consts::LOG2_E;
    pub const EXP_C1: f32 = 0.693_359_375; // ln2 high part
    pub const EXP_C2: f32 = -2.121_944_4e-4; // ln2 low part
    pub const EXP_P0: f32 = 1.987_569_15e-4;
    pub const EXP_P1: f32 = 1.398_199_95e-3;
    pub const EXP_P2: f32 = 8.333_451_9e-3;
    pub const EXP_P3: f32 = 4.166_579_6e-2;
    pub const EXP_P4: f32 = 1.666_666_55e-1;
    pub const EXP_P5: f32 = 5.000_000_1e-1;
    /// Below `ln(2⁻¹²⁶)` the true result is subnormal; flush to exactly 0.
    pub const EXP_LO: f32 = -87.336_54;
    /// Above this `2ⁿ` would overflow the exponent field; clamp (the
    /// softmax domain is `≤ 0`, so this is defensive only).
    pub const EXP_HI: f32 = 88.376_26;
    /// `1.5 · 2²³`: adding then subtracting snaps to the nearest integer
    /// under round-to-nearest-even.
    pub const EXP_MAGIC: f32 = 12_582_912.0;
}
use expc::*;

/// One element of the shared polynomial exp. The AVX2 path performs this
/// exact operation sequence lane-wise; keep the two in lockstep.
#[inline(always)]
fn exp_scalar(x: f32) -> f32 {
    let under = x < EXP_LO;
    let xc = x.clamp(EXP_LO, EXP_HI);
    let t = xc.mul_add(EXP_LOG2E, EXP_MAGIC);
    let n = t - EXP_MAGIC;
    let f = n.mul_add(-EXP_C1, xc);
    let f = n.mul_add(-EXP_C2, f);
    let mut p = EXP_P0;
    p = p.mul_add(f, EXP_P1);
    p = p.mul_add(f, EXP_P2);
    p = p.mul_add(f, EXP_P3);
    p = p.mul_add(f, EXP_P4);
    p = p.mul_add(f, EXP_P5);
    let z = p.mul_add(f * f, f) + 1.0;
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    if under {
        0.0
    } else {
        z * scale
    }
}

/// `xs[i] = exp(xs[i] - shift)` — the `P̃ = exp(S − rowmax)` /
/// `P = exp(S − Lse)` tile transform. `shift` must be finite; elements may
/// be `-∞` (masked) and produce exactly `0.0`.
pub fn exp_shift_inplace(xs: &mut [f32], shift: f32) {
    debug_assert!(shift.is_finite(), "exp_shift_inplace: non-finite shift");
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        unsafe { x86::exp_shift_avx2(xs, shift) };
        return;
    }
    for x in xs.iter_mut() {
        *x = exp_scalar(*x - shift);
    }
}

/// [`exp_shift_inplace`] fused with the row sum `Σ exp(xs[i] - shift)`.
///
/// The sum uses an 8-lane accumulator reduced by the fixed-order
/// `hsum8` tree (tail elements fold into lane 0), with the identical
/// lane-wise op sequence on both dispatch paths — a serial left-fold
/// would be a single 4-cycle-latency add chain and dominate the softmax
/// row transform at long sequence lengths.
pub fn exp_shift_sum_inplace(xs: &mut [f32], shift: f32) -> f32 {
    debug_assert!(shift.is_finite(), "exp_shift_sum_inplace: non-finite shift");
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        return unsafe { x86::exp_shift_sum_avx2(xs, shift) };
    }
    let mut lanes = [0.0f32; 8];
    let len = xs.len();
    let whole = len - len % 8;
    for chunk in xs[..whole].chunks_exact_mut(8) {
        for (l, x) in chunk.iter_mut().enumerate() {
            *x = exp_scalar(*x - shift);
            lanes[l] += *x;
        }
    }
    for x in &mut xs[whole..] {
        *x = exp_scalar(*x - shift);
        lanes[0] += *x;
    }
    crate::ops::hsum8(lanes)
}

// ---------------------------------------------------------------------------
// Elementwise kernels (tile loops around the exponentials)
// ---------------------------------------------------------------------------

/// `xs[i] *= s` — the tile rescale (`S ← scale·S`).
pub fn scale_slice(xs: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        unsafe { x86::scale_slice_avx2(xs, s) };
        return;
    }
    for x in xs.iter_mut() {
        *x *= s;
    }
}

/// `dst[i] *= src[i] - c` — one row of `∇S = P ∘ (∇P − D)`.
pub fn mul_by_diff(dst: &mut [f32], src: &[f32], c: f32) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        unsafe { x86::mul_by_diff_avx2(dst, src, c) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d *= s - c;
    }
}

/// `o[i] = wt·t[i] + wa·o[i]` (FMA) — the online-softmax output merge.
pub fn weighted_merge(o: &mut [f32], t: &[f32], wa: f32, wt: f32) {
    debug_assert_eq!(o.len(), t.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        unsafe { x86::weighted_merge_avx2(o, t, wa, wt) };
        return;
    }
    for (x, &y) in o.iter_mut().zip(t) {
        *x = wt.mul_add(y, wa * *x);
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use super::*;
    use crate::mat::MatRef;
    use crate::ops::{hsum8, nn_micro_tail, tn_micro_tail, MR, NR, NTC};
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn scale_slice_avx2(xs: &mut [f32], s: f32) {
        let sv = _mm256_set1_ps(s);
        let len = xs.len();
        let ptr = xs.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= len {
            let v = _mm256_loadu_ps(ptr.add(i));
            _mm256_storeu_ps(ptr.add(i), _mm256_mul_ps(v, sv));
            i += 8;
        }
        while i < len {
            *ptr.add(i) *= s;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn mul_by_diff_avx2(dst: &mut [f32], src: &[f32], c: f32) {
        let cv = _mm256_set1_ps(c);
        let len = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i + 8 <= len {
            let d = _mm256_loadu_ps(dp.add(i));
            let s = _mm256_loadu_ps(sp.add(i));
            _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(d, _mm256_sub_ps(s, cv)));
            i += 8;
        }
        while i < len {
            *dp.add(i) *= *sp.add(i) - c;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn weighted_merge_avx2(o: &mut [f32], t: &[f32], wa: f32, wt: f32) {
        let wav = _mm256_set1_ps(wa);
        let wtv = _mm256_set1_ps(wt);
        let len = o.len();
        let op = o.as_mut_ptr();
        let tp = t.as_ptr();
        let mut i = 0;
        while i + 8 <= len {
            let ov = _mm256_loadu_ps(op.add(i));
            let tv = _mm256_loadu_ps(tp.add(i));
            // wt·t fused with + wa·o: same fma(mul) shape as the scalar loop.
            let r = _mm256_fmadd_ps(wtv, tv, _mm256_mul_ps(wav, ov));
            _mm256_storeu_ps(op.add(i), r);
            i += 8;
        }
        while i < len {
            *op.add(i) = wt.mul_add(*tp.add(i), wa * *op.add(i));
            i += 1;
        }
    }

    /// Vector twin of [`exp_scalar`] — identical op sequence per lane.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp8(x: __m256) -> __m256 {
        let under = _mm256_cmp_ps::<_CMP_LT_OQ>(x, _mm256_set1_ps(EXP_LO));
        let xc = _mm256_min_ps(
            _mm256_max_ps(x, _mm256_set1_ps(EXP_LO)),
            _mm256_set1_ps(EXP_HI),
        );
        let t = _mm256_fmadd_ps(xc, _mm256_set1_ps(EXP_LOG2E), _mm256_set1_ps(EXP_MAGIC));
        let n = _mm256_sub_ps(t, _mm256_set1_ps(EXP_MAGIC));
        let f = _mm256_fmadd_ps(n, _mm256_set1_ps(-EXP_C1), xc);
        let f = _mm256_fmadd_ps(n, _mm256_set1_ps(-EXP_C2), f);
        let mut p = _mm256_set1_ps(EXP_P0);
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(EXP_P1));
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(EXP_P2));
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(EXP_P3));
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(EXP_P4));
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(EXP_P5));
        let z = _mm256_add_ps(
            _mm256_fmadd_ps(p, _mm256_mul_ps(f, f), f),
            _mm256_set1_ps(1.0),
        );
        let ni = _mm256_cvtps_epi32(n);
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            ni,
            _mm256_set1_epi32(127),
        )));
        _mm256_andnot_ps(under, _mm256_mul_ps(z, scale))
    }

    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn exp_shift_avx2(xs: &mut [f32], shift: f32) {
        let sv = _mm256_set1_ps(shift);
        let len = xs.len();
        let ptr = xs.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= len {
            let v = _mm256_sub_ps(_mm256_loadu_ps(ptr.add(i)), sv);
            _mm256_storeu_ps(ptr.add(i), exp8(v));
            i += 8;
        }
        while i < len {
            *ptr.add(i) = exp_scalar(*ptr.add(i) - shift);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn exp_shift_sum_avx2(xs: &mut [f32], shift: f32) -> f32 {
        let sv = _mm256_set1_ps(shift);
        let len = xs.len();
        let ptr = xs.as_mut_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= len {
            let v = _mm256_sub_ps(_mm256_loadu_ps(ptr.add(i)), sv);
            let e = exp8(v);
            _mm256_storeu_ps(ptr.add(i), e);
            acc = _mm256_add_ps(acc, e);
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        while i < len {
            let e = exp_scalar(*ptr.add(i) - shift);
            *ptr.add(i) = e;
            lanes[0] += e;
            i += 1;
        }
        hsum8(lanes)
    }

    // -----------------------------------------------------------------------
    // Matmul microkernels — AVX2+FMA twins of `ops::{nt,nn,tn}_micro`.
    //
    // Each maps the scalar kernel's emulated-SIMD accumulators onto real
    // 256-bit registers: `[f32; 8]` → one `__m256`, `[f32; 16]` → two.
    // `#[inline]` + matching target features lets them inline into the
    // block drivers below, so the vector path has no per-tile call cost.
    // -----------------------------------------------------------------------

    /// AVX2 `nt_micro`: `R × C` panel of `A · Bᵀ` with one vector
    /// accumulator per output element, spilled to an array and reduced by
    /// the scalar kernel's fixed-order [`hsum8`] (same bits; the `k % 8`
    /// tail lands in lane 0 exactly as in the scalar path).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn nt_micro_avx2<const R: usize, const C: usize>(
        a: MatRef<'_>,
        b: MatRef<'_>,
        out: &mut [f32],
        n: usize,
        r0: usize,
        or0: usize,
        c0: usize,
    ) {
        let k = a.cols();
        let arows: [&[f32]; R] = std::array::from_fn(|p| &a.row(r0 + p)[..k]);
        let brows: [&[f32]; C] = std::array::from_fn(|q| &b.row(c0 + q)[..k]);
        let mut acc = [[_mm256_setzero_ps(); C]; R];
        let whole = k - k % 8;
        let mut i = 0;
        while i < whole {
            let bv: [__m256; C] =
                std::array::from_fn(|q| _mm256_loadu_ps(brows[q].as_ptr().add(i)));
            for (p, arow) in arows.iter().enumerate() {
                let av = _mm256_loadu_ps(arow.as_ptr().add(i));
                for q in 0..C {
                    acc[p][q] = _mm256_fmadd_ps(av, bv[q], acc[p][q]);
                }
            }
            i += 8;
        }
        if R == 4 && whole == k {
            // Reduce four accumulators (one output column, all four rows)
            // at once with a horizontal-add tree. The association is
            // exactly `hsum8`'s — hadd pairs adjacent lanes, the second
            // hadd pairs the pairs, and the 128-bit fold adds the two
            // quad-sums — so the bits match the lane-spill path below.
            for q in 0..C {
                let h1 = _mm256_hadd_ps(acc[0][q], acc[1][q]);
                let h2 = _mm256_hadd_ps(acc[2][q], acc[3][q]);
                let t = _mm256_hadd_ps(h1, h2);
                let s4 = _mm_add_ps(_mm256_castps256_ps128(t), _mm256_extractf128_ps::<1>(t));
                let mut s = [0.0f32; 4];
                _mm_storeu_ps(s.as_mut_ptr(), s4);
                for (p, &sum) in s.iter().enumerate() {
                    out[(or0 + p) * n + c0 + q] += sum;
                }
            }
            return;
        }
        for p in 0..R {
            for q in 0..C {
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), acc[p][q]);
                let mut t = whole;
                while t < k {
                    lanes[0] = arows[p][t].mul_add(brows[q][t], lanes[0]);
                    t += 1;
                }
                out[(or0 + p) * n + c0 + q] += hsum8(lanes);
            }
        }
    }

    /// AVX2 `nn_micro`: `R × 16` output-stationary panel of `A · B`; each
    /// 16-wide accumulator row lives in two `__m256`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn nn_micro_avx2<const R: usize>(
        a: MatRef<'_>,
        b: MatRef<'_>,
        out: &mut [f32],
        n: usize,
        r0: usize,
        or0: usize,
        c0: usize,
    ) {
        let k = a.cols();
        let arows: [&[f32]; R] = std::array::from_fn(|p| &a.row(r0 + p)[..k]);
        let mut lo = [_mm256_setzero_ps(); R];
        let mut hi = [_mm256_setzero_ps(); R];
        #[allow(clippy::needless_range_loop)] // `i` also indexes `b.row(i)`
        for i in 0..k {
            let bp = b.row(i).as_ptr().add(c0);
            let blo = _mm256_loadu_ps(bp);
            let bhi = _mm256_loadu_ps(bp.add(8));
            for p in 0..R {
                let x = _mm256_set1_ps(arows[p][i]);
                lo[p] = _mm256_fmadd_ps(x, blo, lo[p]);
                hi[p] = _mm256_fmadd_ps(x, bhi, hi[p]);
            }
        }
        for p in 0..R {
            let op = out.as_mut_ptr().add((or0 + p) * n + c0);
            _mm256_storeu_ps(op, _mm256_add_ps(_mm256_loadu_ps(op), lo[p]));
            _mm256_storeu_ps(op.add(8), _mm256_add_ps(_mm256_loadu_ps(op.add(8)), hi[p]));
        }
    }

    /// AVX2 `tn_micro`: `R × 16` outer-product panel of `Aᵀ · B`, the
    /// broadcast taken from a column of `A`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tn_micro_avx2<const R: usize>(
        a: MatRef<'_>,
        b: MatRef<'_>,
        out: &mut [f32],
        n: usize,
        ac0: usize,
        i0: usize,
        c0: usize,
    ) {
        let k = a.rows();
        let mut lo = [_mm256_setzero_ps(); R];
        let mut hi = [_mm256_setzero_ps(); R];
        for r in 0..k {
            let arow = a.row(r);
            let bp = b.row(r).as_ptr().add(c0);
            let blo = _mm256_loadu_ps(bp);
            let bhi = _mm256_loadu_ps(bp.add(8));
            for p in 0..R {
                let x = _mm256_set1_ps(arow[ac0 + i0 + p]);
                lo[p] = _mm256_fmadd_ps(x, blo, lo[p]);
                hi[p] = _mm256_fmadd_ps(x, bhi, hi[p]);
            }
        }
        for p in 0..R {
            let op = out.as_mut_ptr().add((i0 + p) * n + c0);
            _mm256_storeu_ps(op, _mm256_add_ps(_mm256_loadu_ps(op), lo[p]));
            _mm256_storeu_ps(op.add(8), _mm256_add_ps(_mm256_loadu_ps(op.add(8)), hi[p]));
        }
    }

    // -----------------------------------------------------------------------
    // Block drivers — loop structure mirrors ops::matmul_{nn,nt,tn}_block
    // exactly (same quad grouping, same tails), with the microkernels
    // inlined. ops dispatches here once per block when AVX2+FMA is active.
    // -----------------------------------------------------------------------

    /// AVX2 twin of `ops::matmul_nn_block` (including the column-panel
    /// loop; see [`super::col_panel`]).
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn nn_block_avx2(
        a: MatRef<'_>,
        b: MatRef<'_>,
        out: &mut [f32],
        r0: usize,
        len: usize,
        n: usize,
        panel: usize,
    ) {
        let mut p0 = 0;
        while p0 < n {
            let pend = if panel == usize::MAX {
                n
            } else {
                n.min(p0 + panel)
            };
            let span = pend - p0;
            let cwhole = p0 + (span - span % NR);
            let mut r = 0;
            while r < len {
                let mut c = p0;
                if r + MR <= len {
                    while c < cwhole {
                        nn_micro_avx2::<MR>(a, b, out, n, r0 + r, r, c);
                        c += NR;
                    }
                    if c < pend {
                        nn_micro_tail::<MR>(a, b, out, n, r0 + r, r, c, pend - c);
                    }
                    r += MR;
                } else {
                    while c < cwhole {
                        nn_micro_avx2::<1>(a, b, out, n, r0 + r, r, c);
                        c += NR;
                    }
                    if c < pend {
                        nn_micro_tail::<1>(a, b, out, n, r0 + r, r, c, pend - c);
                    }
                    r += 1;
                }
            }
            p0 = pend;
        }
    }

    /// AVX2 twin of `ops::matmul_nt_block`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn nt_block_avx2(
        a: MatRef<'_>,
        b: MatRef<'_>,
        out: &mut [f32],
        r0: usize,
        len: usize,
        n: usize,
    ) {
        let mut r = 0;
        while r + MR <= len {
            let mut c = 0;
            while c + NTC <= n {
                nt_micro_avx2::<MR, NTC>(a, b, out, n, r0 + r, r, c);
                c += NTC;
            }
            while c < n {
                nt_micro_avx2::<MR, 1>(a, b, out, n, r0 + r, r, c);
                c += 1;
            }
            r += MR;
        }
        while r < len {
            let mut c = 0;
            while c + NTC <= n {
                nt_micro_avx2::<1, NTC>(a, b, out, n, r0 + r, r, c);
                c += NTC;
            }
            while c < n {
                nt_micro_avx2::<1, 1>(a, b, out, n, r0 + r, r, c);
                c += 1;
            }
            r += 1;
        }
    }

    /// AVX2 twin of `ops::matmul_tn_block`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn tn_block_avx2(
        a: MatRef<'_>,
        b: MatRef<'_>,
        out: &mut [f32],
        c0: usize,
        len: usize,
        n: usize,
    ) {
        let cwhole = n - n % NR;
        let mut i = 0;
        while i < len {
            let mut c = 0;
            if i + MR <= len {
                while c < cwhole {
                    tn_micro_avx2::<MR>(a, b, out, n, c0, i, c);
                    c += NR;
                }
                if c < n {
                    tn_micro_tail::<MR>(a, b, out, n, c0, i, c, n - c);
                }
                i += MR;
            } else {
                while c < cwhole {
                    tn_micro_avx2::<1>(a, b, out, n, c0, i, c);
                    c += NR;
                }
                if c < n {
                    tn_micro_tail::<1>(a, b, out, n, c0, i, c, n - c);
                }
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matmul_into, matmul_nt_into, matmul_tn_into, randn_mat, Mat};

    /// Run `f` with the scalar fallback forced, restoring dispatch after.
    fn with_scalar<R>(f: impl FnOnce() -> R) -> R {
        std::env::set_var("BURST_NO_SIMD", "1");
        refresh();
        let r = f();
        std::env::remove_var("BURST_NO_SIMD");
        refresh();
        r
    }

    fn assert_bits(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn env_knob_forces_scalar() {
        with_scalar(|| assert!(!avx2_active(), "BURST_NO_SIMD must force the fallback"));
    }

    #[test]
    fn matmul_paths_bit_identical() {
        // Ragged shapes exercise every remainder path (row quads, NR/NTC
        // column tails, k % 8 tails). On hosts without AVX2+FMA both runs
        // take the scalar path and the assertion is trivially true.
        for (m, k, n) in [(4, 8, 16), (7, 13, 19), (33, 40, 50), (64, 64, 64)] {
            let a = randn_mat(m, k, 0.8, 100 + m as u64);
            let b = randn_mat(k, n, 0.8, 200 + n as u64);
            let bt = randn_mat(n, k, 0.8, 300 + n as u64);
            let at = randn_mat(k, m, 0.8, 400 + m as u64);
            let mut simd = (Mat::default(), Mat::default(), Mat::default());
            matmul_into(a.view(), b.view(), &mut simd.0);
            matmul_nt_into(a.view(), bt.view(), &mut simd.1);
            matmul_tn_into(at.view(), b.view(), &mut simd.2);
            let scalar = with_scalar(|| {
                let mut out = (Mat::default(), Mat::default(), Mat::default());
                matmul_into(a.view(), b.view(), &mut out.0);
                matmul_nt_into(a.view(), bt.view(), &mut out.1);
                matmul_tn_into(at.view(), b.view(), &mut out.2);
                out
            });
            assert_bits(simd.0.as_slice(), scalar.0.as_slice(), "nn");
            assert_bits(simd.1.as_slice(), scalar.1.as_slice(), "nt");
            assert_bits(simd.2.as_slice(), scalar.2.as_slice(), "tn");
        }
    }

    #[test]
    fn elementwise_paths_bit_identical() {
        let src = randn_mat(1, 37, 1.3, 7);
        let base = randn_mat(1, 37, 0.9, 8);
        let tile = randn_mat(1, 37, 0.7, 9);
        let mut simd = (
            base.as_slice().to_vec(),
            base.as_slice().to_vec(),
            base.as_slice().to_vec(),
            base.as_slice().to_vec(),
        );
        scale_slice(&mut simd.0, 0.37);
        mul_by_diff(&mut simd.1, src.as_slice(), 0.21);
        weighted_merge(&mut simd.2, tile.as_slice(), 0.6, 0.4);
        exp_shift_inplace(&mut simd.3, 1.75);
        let scalar = with_scalar(|| {
            let mut out = (
                base.as_slice().to_vec(),
                base.as_slice().to_vec(),
                base.as_slice().to_vec(),
                base.as_slice().to_vec(),
            );
            scale_slice(&mut out.0, 0.37);
            mul_by_diff(&mut out.1, src.as_slice(), 0.21);
            weighted_merge(&mut out.2, tile.as_slice(), 0.6, 0.4);
            exp_shift_inplace(&mut out.3, 1.75);
            out
        });
        assert_bits(&simd.0, &scalar.0, "scale_slice");
        assert_bits(&simd.1, &scalar.1, "mul_by_diff");
        assert_bits(&simd.2, &scalar.2, "weighted_merge");
        assert_bits(&simd.3, &scalar.3, "exp_shift_inplace");
    }

    #[test]
    fn poly_exp_is_accurate_and_handles_masking() {
        // Accuracy vs libm over the softmax domain (x − max ≤ 0).
        let mut worst = 0.0f64;
        for i in 0..10_000 {
            let x = -(i as f32) * 0.008; // 0 .. -80
            let mut v = [x];
            exp_shift_inplace(&mut v, 0.0);
            let want = (x as f64).exp();
            let rel = ((v[0] as f64) - want).abs() / want;
            worst = worst.max(rel);
        }
        assert!(worst < 1e-6, "poly exp rel err {worst}");
        // Masked (-∞) scores flush to exactly zero; exp(0) is exactly 1.
        let mut v = [f32::NEG_INFINITY, 0.0, -100.0];
        exp_shift_inplace(&mut v, 0.0);
        assert_eq!(v[0].to_bits(), 0.0f32.to_bits());
        assert_eq!(v[1], 1.0);
        assert_eq!(v[2], 0.0, "deep underflow flushes to zero");
    }

    #[test]
    fn panel_choice_never_changes_values() {
        let a = randn_mat(24, 32, 0.8, 11);
        let b = randn_mat(32, 200, 0.8, 12);
        let reference = a.matmul(&b);
        for panel in [16, 64, 128, usize::MAX] {
            let mut out = vec![0.0f32; 24 * 200];
            crate::ops::nn_block_with_panel(a.view(), b.view(), &mut out, 0, 24, 200, panel);
            assert_bits(&out, reference.as_slice(), &format!("panel {panel}"));
        }
    }

    #[test]
    fn col_panel_is_probed_once_and_valid() {
        let p = col_panel(512);
        assert!(p >= 16, "panel too narrow: {p}");
        assert_eq!(col_panel(512), p, "probe must be cached");
        // Narrow products never panel.
        assert_eq!(col_panel(32), usize::MAX);
    }
}
