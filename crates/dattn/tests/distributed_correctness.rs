//! End-to-end correctness of every distributed attention implementation
//! against the single-device blocked kernel, across topologies, layouts,
//! masks and overlap modes. Real tensors move between rank threads, so
//! these are exact (up to f32 accumulation-order noise) equivalences.

use burst_comm::{Topology, World};
use burst_dattn::{
    burst_backward, double_ring, ring_backward, ring_forward, run_attention, Algo, AttnShard,
    BackwardInputs, CostModel, Layout, OverlapMode, Ring,
};
use burst_kernels::{flash_backward, flash_forward, AttnMask, BlockSparseMask};
use burst_tensor::testutil::assert_allclose;
use burst_tensor::{randn_mat, Mat};

const TOL: f32 = 2e-3;

struct Reference {
    o: Mat,
    dq: Mat,
    dk: Mat,
    dv: Mat,
}

fn reference(q: &Mat, k: &Mat, v: &Mat, grad_o: &Mat, scale: f32, mask: &AttnMask) -> Reference {
    let n = q.rows();
    let idx: Vec<usize> = (0..n).collect();
    let fwd = flash_forward(q, k, v, scale, mask, &idx, &idx);
    let (dq, dk, dv, _) =
        flash_backward(q, k, v, &fwd.o, grad_o, &fwd.lse, scale, mask, &idx, &idx);
    Reference {
        o: fwd.o,
        dq,
        dk,
        dv,
    }
}

fn problem(n: usize, d: usize) -> (Mat, Mat, Mat, Mat, f32) {
    let q = randn_mat(n, d, 0.7, 1);
    let k = randn_mat(n, d, 0.7, 2);
    let v = randn_mat(n, d, 0.7, 3);
    let grad_o = randn_mat(n, d, 0.8, 4);
    let scale = 1.0 / (d as f32).sqrt();
    (q, k, v, grad_o, scale)
}

/// Run `algo` on `topo` and compare every rank's outputs and gradients to
/// the single-device reference.
fn check_algo(algo: Algo, topo: Topology, layout: Layout, mask: AttnMask, n: usize, d: usize) {
    let g = topo.world_size();
    let (q, k, v, grad_o, scale) = problem(n, d);
    let r = reference(&q, &k, &v, &grad_o, scale, &mask);
    let world = World::new(topo);
    let outs = world.run_results(|comm| {
        let idx = layout.indices(n, g, comm.rank());
        let ql = q.gather_rows(&idx);
        let kl = k.gather_rows(&idx);
        let vl = v.gather_rows(&idx);
        let dol = grad_o.gather_rows(&idx);
        run_attention(
            algo,
            comm,
            &ql,
            &kl,
            &vl,
            &dol,
            scale,
            &mask,
            layout,
            n,
            &CostModel::free(),
        )
    });
    for (rank, (o, _lse, dq, dk, dv)) in outs.iter().enumerate() {
        let idx = layout.indices(n, g, rank);
        let ctx = format!("{algo:?}/{layout:?} rank {rank}");
        assert_allclose(o, &r.o.gather_rows(&idx), TOL, &format!("{ctx} O"));
        assert_allclose(dq, &r.dq.gather_rows(&idx), TOL, &format!("{ctx} dQ"));
        assert_allclose(dk, &r.dk.gather_rows(&idx), TOL, &format!("{ctx} dK"));
        assert_allclose(dv, &r.dv.gather_rows(&idx), TOL, &format!("{ctx} dV"));
    }
}

#[test]
fn ring_flat_matches_reference_all_layouts() {
    for layout in [Layout::Contiguous, Layout::Zigzag, Layout::Striped] {
        check_algo(
            Algo::RingFlat,
            Topology::single_node(4),
            layout,
            AttnMask::Causal,
            32,
            6,
        );
    }
}

#[test]
fn burst_flat_matches_reference_all_layouts() {
    for layout in [Layout::Contiguous, Layout::Zigzag, Layout::Striped] {
        check_algo(
            Algo::BurstFlat,
            Topology::single_node(4),
            layout,
            AttnMask::Causal,
            32,
            6,
        );
    }
}

#[test]
fn double_ring_matches_reference_multi_node() {
    // 2×2, 2×4 and 3×2 exercise different completion-hop counts
    // (nodes mod gpn = 0, 2 and 1).
    for topo in [
        Topology::a800(2, 2),
        Topology::a800(2, 4),
        Topology::a800(3, 2),
    ] {
        check_algo(
            Algo::DoubleRing,
            topo,
            Layout::Zigzag,
            AttnMask::Causal,
            48,
            5,
        );
    }
}

#[test]
fn burst_topo_matches_reference_multi_node() {
    for topo in [
        Topology::a800(2, 2),
        Topology::a800(2, 4),
        Topology::a800(3, 2),
    ] {
        check_algo(
            Algo::BurstTopo,
            topo,
            Layout::Zigzag,
            AttnMask::Causal,
            48,
            5,
        );
    }
}

#[test]
fn topo_algorithms_handle_single_gpu_nodes_and_single_node() {
    // Degenerate shapes: 4 nodes × 1 GPU (pure inter ring) and 1 node × 4
    // GPUs (pure intra ring).
    for topo in [Topology::a800(4, 1), Topology::a800(1, 4)] {
        check_algo(
            Algo::DoubleRing,
            topo.clone(),
            Layout::Contiguous,
            AttnMask::Causal,
            32,
            4,
        );
        check_algo(
            Algo::BurstTopo,
            topo,
            Layout::Contiguous,
            AttnMask::Causal,
            32,
            4,
        );
    }
}

#[test]
fn full_and_sliding_window_masks_work_distributed() {
    for mask in [
        AttnMask::Full,
        AttnMask::SlidingWindow { window: 12 },
        AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(8, 6, 2)),
    ] {
        check_algo(
            Algo::BurstTopo,
            Topology::a800(2, 2),
            Layout::Striped,
            mask.clone(),
            48,
            4,
        );
        check_algo(
            Algo::RingFlat,
            Topology::single_node(4),
            Layout::Striped,
            mask,
            48,
            4,
        );
    }
}

#[test]
fn overlap_modes_agree_numerically() {
    // Fine vs None overlap must be a pure scheduling change.
    let n = 32;
    let d = 4;
    let (q, k, v, grad_o, scale) = problem(n, d);
    let mask = AttnMask::Causal;
    let run = |overlap: OverlapMode, burst: bool| {
        let world = World::new(Topology::single_node(4));
        world.run_results(|comm| {
            let layout = Layout::Zigzag;
            let idx = layout.indices(n, 4, comm.rank());
            let ql = q.gather_rows(&idx);
            let kl = k.gather_rows(&idx);
            let vl = v.gather_rows(&idx);
            let dol = grad_o.gather_rows(&idx);
            let shard = AttnShard {
                q: &ql,
                k: &kl,
                v: &vl,
                scale,
                mask: &mask,
                layout,
                seq_len: n,
                cost: CostModel::free(),
                max_token: None,
                skip: false,
            };
            let ring = Ring::global(comm);
            let fwd = ring_forward(comm, &ring, &shard);
            let back = BackwardInputs {
                o: &fwd.o,
                lse: &fwd.lse,
                grad_o: &dol,
            };
            if burst {
                burst_backward(comm, &ring, &shard, &back, overlap)
            } else {
                ring_backward(comm, &ring, &shard, &back, overlap)
            }
        })
    };
    for burst in [false, true] {
        let fine = run(OverlapMode::Fine, burst);
        let none = run(OverlapMode::None, burst);
        for (rank, (f, s)) in fine.iter().zip(&none).enumerate() {
            let ctx = format!("burst={burst} rank {rank}");
            assert_allclose(&f.0, &s.0, 1e-5, &format!("{ctx} dQ"));
            assert_allclose(&f.1, &s.1, 1e-5, &format!("{ctx} dK"));
            assert_allclose(&f.2, &s.2, 1e-5, &format!("{ctx} dV"));
        }
    }
}

#[test]
fn double_ring_forward_standalone_matches_flat_ring() {
    let n = 32;
    let d = 4;
    let (q, k, v, _, scale) = problem(n, d);
    let mask = AttnMask::Causal;
    let layout = Layout::Zigzag;
    let world = World::new(Topology::a800(2, 2));
    let outs = world.run_results(|comm| {
        let idx = layout.indices(n, 4, comm.rank());
        let shard = AttnShard {
            q: &q.gather_rows(&idx),
            k: &k.gather_rows(&idx),
            v: &v.gather_rows(&idx),
            scale,
            mask: &mask,
            layout,
            seq_len: n,
            cost: CostModel::free(),
            max_token: None,
            skip: false,
        };
        let flat = ring_forward(comm, &Ring::global(comm), &shard);
        let topo = double_ring::double_ring_forward(comm, &shard);
        (flat.o, topo.o, flat.lse, topo.lse)
    });
    for (rank, (fo, to, flse, tlse)) in outs.iter().enumerate() {
        assert_allclose(fo, to, 1e-5, &format!("rank {rank} O"));
        for (a, b) in flse.iter().zip(tlse) {
            assert!((a - b).abs() < 1e-5, "rank {rank} lse");
        }
    }
}
