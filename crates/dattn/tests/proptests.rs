//! Property-based tests: distributed attention ≡ single-device flash under
//! randomised shapes, topologies, layouts, masks and algorithms.

use burst_comm::{Topology, World};
use burst_dattn::{run_attention, Algo, CostModel, Layout};
use burst_kernels::{flash_backward, flash_forward, AttnMask};
use burst_tensor::randn_mat;
use burst_tensor::testutil::allclose;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (1usize..5).prop_map(Topology::single_node),
        ((2usize..4), (1usize..4)).prop_map(|(n, g)| Topology::a800(n, g)),
    ]
}

fn arb_layout() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::Contiguous),
        Just(Layout::Zigzag),
        Just(Layout::Striped),
    ]
}

fn arb_algo() -> impl Strategy<Value = Algo> {
    prop_oneof![
        Just(Algo::RingFlat),
        Just(Algo::BurstFlat),
        Just(Algo::DoubleRing),
        Just(Algo::BurstTopo),
    ]
}

fn arb_mask() -> impl Strategy<Value = AttnMask> {
    prop_oneof![
        Just(AttnMask::Full),
        Just(AttnMask::Causal),
        (2usize..24).prop_map(|w| AttnMask::SlidingWindow { window: w }),
        ((2usize..24), (1usize..3)).prop_map(|(w, s)| AttnMask::Dilated { window: w, step: s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn distributed_equals_single_device(
        topo in arb_topology(),
        layout in arb_layout(),
        algo in arb_algo(),
        mask in arb_mask(),
        chunks in 1usize..4,
        d in 2usize..6,
        seed in 0u64..200,
    ) {
        let g = topo.world_size();
        let n = 2 * g * chunks; // divisible by 2G for zigzag
        let q = randn_mat(n, d, 0.7, seed);
        let k = randn_mat(n, d, 0.7, seed + 1);
        let v = randn_mat(n, d, 0.7, seed + 2);
        let go = randn_mat(n, d, 0.8, seed + 3);
        let scale = 1.0 / (d as f32).sqrt();

        let idx: Vec<usize> = (0..n).collect();
        let fwd = flash_forward(&q, &k, &v, scale, &mask, &idx, &idx);
        let (dq_ref, dk_ref, dv_ref, _) =
            flash_backward(&q, &k, &v, &fwd.o, &go, &fwd.lse, scale, &mask, &idx, &idx);

        let world = World::new(topo);
        let mask2 = mask.clone();
        let outs = world.run_results(move |comm| {
            let my = layout.indices(n, g, comm.rank());
            run_attention(
                algo,
                comm,
                &q.gather_rows(&my),
                &k.gather_rows(&my),
                &v.gather_rows(&my),
                &go.gather_rows(&my),
                scale,
                &mask2,
                layout,
                n,
                &CostModel::free(),
            )
        });
        for (rank, (o, _, dq, dk, dv)) in outs.iter().enumerate() {
            let my = layout.indices(n, g, rank);
            prop_assert!(
                allclose(o, &fwd.o.gather_rows(&my), 2e-3, 2e-3),
                "O rank {rank} ({algo:?}, {layout:?}, {mask:?})"
            );
            prop_assert!(allclose(dq, &dq_ref.gather_rows(&my), 2e-3, 2e-3), "dQ rank {rank}");
            prop_assert!(allclose(dk, &dk_ref.gather_rows(&my), 2e-3, 2e-3), "dK rank {rank}");
            prop_assert!(allclose(dv, &dv_ref.gather_rows(&my), 2e-3, 2e-3), "dV rank {rank}");
        }
    }

    #[test]
    fn layouts_always_partition(
        layout in arb_layout(),
        g in 1usize..9,
        chunks in 1usize..6,
    ) {
        let n = 2 * g * chunks;
        let mut seen = vec![false; n];
        for r in 0..g {
            for i in layout.indices(n, g, r) {
                prop_assert!(!seen[i], "{layout:?}: token {i} double-owned");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "{layout:?}: coverage");
    }

    #[test]
    fn backward_volume_formulas_hold_for_any_world(
        g in 2usize..7,
        chunks in 1usize..4,
        d in 2usize..8,
    ) {
        use burst_dattn::{
            burst_backward, ring_backward, ring_forward, AttnShard, BackwardInputs,
            OverlapMode, Ring,
        };
        let n = 2 * g * chunks;
        let q = randn_mat(n, d, 0.7, 5);
        let k = randn_mat(n, d, 0.7, 6);
        let v = randn_mat(n, d, 0.7, 7);
        let go = randn_mat(n, d, 0.8, 8);
        let mask = AttnMask::Full;
        let world = World::new(Topology::single_node(g));
        let outs = world.run_results(move |comm| {
            let layout = Layout::Contiguous;
            let my = layout.indices(n, g, comm.rank());
            let ql = q.gather_rows(&my);
            let kl = k.gather_rows(&my);
            let vl = v.gather_rows(&my);
            let shard = AttnShard {
                q: &ql,
                k: &kl,
                v: &vl,
                scale: 1.0,
                mask: &mask,
                layout,
                seq_len: n,
                cost: CostModel::free(),
                max_token: None,
                skip: false,
            };
            let ring = Ring::global(comm);
            let fwd = ring_forward(comm, &ring, &shard);
            let after_fwd = comm.stats().total_elems();
            let back = BackwardInputs { o: &fwd.o, lse: &fwd.lse, grad_o: &go.gather_rows(&my) };
            ring_backward(comm, &ring, &shard, &back, OverlapMode::Fine);
            let after_ring = comm.stats().total_elems();
            burst_backward(comm, &ring, &shard, &back, OverlapMode::Fine);
            let after_burst = comm.stats().total_elems();
            (after_fwd, after_ring - after_fwd, after_burst - after_ring)
        });
        let p = n / g;
        for (fwd, ring_b, burst_b) in outs {
            prop_assert_eq!(fwd, ((g - 1) * 2 * p * d) as u64);
            prop_assert_eq!(ring_b, (4 * n * d) as u64);
            prop_assert_eq!(burst_b, ((g - 1) * (2 * p * d + 2 * p) + g * p * d) as u64);
        }
    }
}
