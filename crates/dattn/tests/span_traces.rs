//! Observability contracts of the distributed attention algorithms:
//!
//! * every algorithm emits structurally valid span timelines (nesting,
//!   containment, monotone wire departures) on healthy runs, with nothing
//!   left open;
//! * turning tracing on is bit-identical — same outputs, same virtual
//!   clock — because spans only observe the clock, never advance it;
//! * the span sink allocates nothing in the steady state: repeated rounds
//!   reuse the pre-sized buffer (checked via the buffer fingerprint);
//! * a crashed rank's open spans are force-closed at crash time with
//!   warnings, and the resulting timeline still validates;
//! * elastic recovery marks retry attempts with `Replay` spans and
//!   evictions with `Eviction` spans.

use burst_comm::obs::{self, SpanKind};
use burst_comm::{FaultPlan, Membership, RetryPolicy, Topology, World};
use burst_dattn::{
    run_attention, try_elastic_attention, try_run_attention, Algo, CostModel, Layout, ShardData,
};
use burst_kernels::AttnMask;
use burst_tensor::{randn_mat, Mat};

const ALGOS: [Algo; 4] = [
    Algo::RingFlat,
    Algo::BurstFlat,
    Algo::DoubleRing,
    Algo::BurstTopo,
];

fn problem(n: usize, d: usize) -> (Mat, Mat, Mat, Mat, f32) {
    (
        randn_mat(n, d, 0.7, 21),
        randn_mat(n, d, 0.7, 22),
        randn_mat(n, d, 0.7, 23),
        randn_mat(n, d, 0.8, 24),
        1.0 / (d as f32).sqrt(),
    )
}

fn shard_of(layout: Layout, n: usize, g: usize, rank: usize, full: &Mat) -> Mat {
    full.gather_rows(&layout.indices(n, g, rank))
}

#[test]
fn all_algorithms_emit_valid_nested_traces() {
    let (n, d) = (64usize, 8usize);
    let topo = Topology::a800(2, 2);
    let g = topo.world_size();
    let (q, k, v, grad_o, scale) = problem(n, d);
    let layout = Layout::Zigzag;
    for algo in ALGOS {
        let world = World::new(topo.clone());
        let outs = world.run(|comm| {
            let r = comm.rank();
            let (ql, kl, vl, dol) = (
                shard_of(layout, n, g, r, &q),
                shard_of(layout, n, g, r, &k),
                shard_of(layout, n, g, r, &v),
                shard_of(layout, n, g, r, &grad_o),
            );
            comm.start_trace();
            run_attention(
                algo,
                comm,
                &ql,
                &kl,
                &vl,
                &dol,
                scale,
                &AttnMask::Causal,
                layout,
                n,
                &CostModel::a800(),
            );
        });
        for o in outs {
            let t = o.trace.expect("tracing was on");
            obs::validate(&t).unwrap_or_else(|e| panic!("{algo:?} rank {}: {e}", o.rank));
            assert!(
                t.warnings.is_empty(),
                "{algo:?} rank {} warned on a healthy run: {:?}",
                o.rank,
                t.warnings
            );
            assert!(t.spans.iter().all(|s| !s.is_open()));
            assert!(t.count(SpanKind::AttnRound) > 0, "{algo:?}: no rounds");
            assert!(t.count(SpanKind::Send) > 0, "{algo:?}: no sends");
            assert!(t.count(SpanKind::Recv) > 0, "{algo:?}: no recvs");
            // Two-level schedules must actually use the NIC.
            if matches!(algo, Algo::DoubleRing | Algo::BurstTopo) {
                assert!(
                    t.spans.iter().any(|s| s.kind == SpanKind::Send && s.inter),
                    "{algo:?}: no inter-node sends"
                );
            }
        }
    }
}

#[test]
fn tracing_is_bit_identical() {
    let (n, d) = (64usize, 8usize);
    let topo = Topology::a800(2, 2);
    let g = topo.world_size();
    let (q, k, v, grad_o, scale) = problem(n, d);
    let layout = Layout::Zigzag;
    for algo in ALGOS {
        let run = |trace: bool| {
            let world = World::new(topo.clone());
            world.run(|comm| {
                let r = comm.rank();
                let (ql, kl, vl, dol) = (
                    shard_of(layout, n, g, r, &q),
                    shard_of(layout, n, g, r, &k),
                    shard_of(layout, n, g, r, &v),
                    shard_of(layout, n, g, r, &grad_o),
                );
                if trace {
                    comm.start_trace();
                }
                run_attention(
                    algo,
                    comm,
                    &ql,
                    &kl,
                    &vl,
                    &dol,
                    scale,
                    &AttnMask::Causal,
                    layout,
                    n,
                    &CostModel::a800(),
                )
            })
        };
        let plain = run(false);
        let traced = run(true);
        for (p, t) in plain.iter().zip(&traced) {
            assert_eq!(p.result, t.result, "{algo:?}: outputs differ under tracing");
            assert_eq!(
                p.time.to_bits(),
                t.time.to_bits(),
                "{algo:?}: virtual clock differs under tracing"
            );
            assert_eq!(p.stats, t.stats, "{algo:?}: stats differ under tracing");
        }
    }
}

#[test]
fn steady_state_rounds_allocate_no_trace_memory() {
    let (n, d) = (64usize, 8usize);
    let topo = Topology::a800(1, 4);
    let g = topo.world_size();
    let (q, k, v, grad_o, scale) = problem(n, d);
    let layout = Layout::Zigzag;
    let world = World::new(topo);
    let ok = world.run_results(|comm| {
        let r = comm.rank();
        let (ql, kl, vl, dol) = (
            shard_of(layout, n, g, r, &q),
            shard_of(layout, n, g, r, &k),
            shard_of(layout, n, g, r, &v),
            shard_of(layout, n, g, r, &grad_o),
        );
        comm.start_trace();
        let go = |comm: &mut burst_comm::Communicator| {
            run_attention(
                Algo::BurstTopo,
                comm,
                &ql,
                &kl,
                &vl,
                &dol,
                scale,
                &AttnMask::Causal,
                layout,
                n,
                &CostModel::a800(),
            );
        };
        // Warm-up pass, then assert the sink's buffer never moves or grows
        // across three more full fwd+bwd passes.
        go(comm);
        let fp = comm.trace_fingerprint();
        for _ in 0..3 {
            go(comm);
        }
        comm.trace_fingerprint() == fp
    });
    assert!(
        ok.iter().all(|&b| b),
        "span sink reallocated in steady state"
    );
}

#[test]
fn crash_force_closes_open_spans_with_warnings() {
    let (n, d) = (64usize, 8usize);
    let topo = Topology::a800(2, 2);
    let g = topo.world_size();
    let (q, k, v, grad_o, scale) = problem(n, d);
    let layout = Layout::Zigzag;
    let world = World::with_faults(topo, FaultPlan::new(3).crash_at_op(1, 6));
    let outs = world.run_faulty(|comm| {
        let r = comm.rank();
        let (ql, kl, vl, dol) = (
            shard_of(layout, n, g, r, &q),
            shard_of(layout, n, g, r, &k),
            shard_of(layout, n, g, r, &v),
            shard_of(layout, n, g, r, &grad_o),
        );
        comm.start_trace();
        try_run_attention(
            Algo::BurstTopo,
            comm,
            &ql,
            &kl,
            &vl,
            &dol,
            scale,
            &AttnMask::Causal,
            layout,
            n,
            &CostModel::a800(),
        )
        .map(|_| ())
    });
    assert!(outs.iter().any(|o| o.result.is_err()), "nobody failed");
    let mut warned = 0usize;
    for o in &outs {
        let t = o.trace.as_ref().expect("trace survives the crash");
        obs::validate(t).unwrap_or_else(|e| panic!("rank {}: {e}", o.rank));
        assert!(t.spans.iter().all(|s| !s.is_open()), "open span survived");
        warned += t.warnings.len();
    }
    assert!(warned > 0, "a mid-ring crash must force-close open spans");
}

#[test]
fn elastic_replay_and_eviction_are_traced() {
    // 48 splits into 2G zigzag chunks both before (G=4) and after (G=3)
    // the eviction.
    let (n, d) = (48usize, 8usize);
    let topo = Topology::a800(1, 4);
    let g = topo.world_size();
    let (q, k, v, grad_o, scale) = problem(n, d);
    let layout = Layout::Zigzag;
    let victim = 2usize;
    let world = World::with_faults(topo, FaultPlan::new(5).crash_at_op(victim, 8));
    let outs = world.run_faulty(|comm| {
        let r = comm.rank();
        let (ql, kl, vl, dol) = (
            shard_of(layout, n, g, r, &q),
            shard_of(layout, n, g, r, &k),
            shard_of(layout, n, g, r, &v),
            shard_of(layout, n, g, r, &grad_o),
        );
        comm.start_trace();
        let mut membership = Membership::new(g);
        let mut load = |rank: usize| -> ShardData {
            (
                shard_of(layout, n, g, rank, &q),
                shard_of(layout, n, g, rank, &k),
                shard_of(layout, n, g, rank, &v),
                shard_of(layout, n, g, rank, &grad_o),
            )
        };
        try_elastic_attention(
            comm,
            &mut membership,
            &ql,
            &kl,
            &vl,
            &dol,
            scale,
            &AttnMask::Causal,
            layout,
            n,
            &CostModel::a800(),
            &mut load,
            &RetryPolicy::default(),
        )
        .map(|out| out.attempts)
    });
    let mut replayed = 0usize;
    for o in &outs {
        let t = o.trace.as_ref().expect("trace survives elastic recovery");
        obs::validate(t).unwrap_or_else(|e| panic!("rank {}: {e}", o.rank));
        if o.rank == victim {
            assert!(o.result.is_err(), "the victim must report its own crash");
            continue;
        }
        let attempts = *o.result.as_ref().expect("survivors recover");
        assert!(attempts > 1, "rank {} never retried", o.rank);
        assert!(
            t.count(SpanKind::Eviction) > 0,
            "rank {}: eviction untraced",
            o.rank
        );
        replayed += t.count(SpanKind::Replay);
    }
    assert!(replayed > 0, "no survivor recorded a replay span");
}
