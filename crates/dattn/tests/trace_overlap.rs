//! Trace-level verification of the Fig. 5 overlap schedules: the event
//! timelines must show BurstAttention's read-only payloads departing before
//! the compute that hides them, and its blocked time shrinking relative to
//! the flat ring.

use burst_comm::{summarize, Topology, TraceEvent, World};
use burst_dattn::{run_attention, Algo, CostModel, Layout};
use burst_kernels::AttnMask;
use burst_tensor::randn_mat;

fn traced_run(algo: Algo) -> Vec<(Vec<TraceEvent>, f64)> {
    let n = 128;
    let d = 32;
    let topo = Topology::a800(2, 4);
    let g = topo.world_size();
    let q = randn_mat(n, d, 0.7, 61);
    let k = randn_mat(n, d, 0.7, 62);
    let v = randn_mat(n, d, 0.7, 63);
    let go = randn_mat(n, d, 0.8, 64);
    let cost = CostModel {
        peak_flops: 5e9,
        efficiency: 1.0,
    };
    let world = World::new(topo);
    world.run_results(move |comm| {
        comm.start_trace();
        let idx = Layout::Zigzag.indices(n, g, comm.rank());
        run_attention(
            algo,
            comm,
            &q.gather_rows(&idx),
            &k.gather_rows(&idx),
            &v.gather_rows(&idx),
            &go.gather_rows(&idx),
            1.0 / (d as f32).sqrt(),
            &AttnMask::Causal,
            Layout::Zigzag,
            n,
            &cost,
        );
        (comm.take_trace(), comm.time())
    })
}

fn blocked_fraction(traces: &[(Vec<TraceEvent>, f64)]) -> f64 {
    let (mut wait, mut compute) = (0.0, 0.0);
    for (t, _) in traces {
        let s = summarize(t);
        wait += s.wait_secs;
        compute += s.compute_secs;
    }
    wait / compute
}

#[test]
fn burst_blocks_far_less_than_flat_ring() {
    let flat = blocked_fraction(&traced_run(Algo::RingFlat));
    let double = blocked_fraction(&traced_run(Algo::DoubleRing));
    let burst = blocked_fraction(&traced_run(Algo::BurstTopo));
    assert!(
        burst < 0.5 * flat,
        "burst blocked fraction {burst} vs flat ring {flat}"
    );
    assert!(burst < double, "burst {burst} vs double ring {double}");
}

#[test]
fn burst_posts_read_only_payloads_before_computing() {
    // In the trace, the first send must precede the end of the first
    // compute span (early posting), for every rank.
    for (trace, _) in traced_run(Algo::BurstTopo) {
        let first_send = trace.iter().find_map(|e| match e {
            TraceEvent::Send { depart, .. } => Some(*depart),
            _ => None,
        });
        let first_compute_end = trace.iter().find_map(|e| match e {
            TraceEvent::Compute { end, .. } => Some(*end),
            _ => None,
        });
        let (s, c) = (first_send.unwrap(), first_compute_end.unwrap());
        assert!(
            s < c,
            "first send at {s} must precede first compute end {c}"
        );
    }
}

#[test]
fn trace_events_are_monotone_and_complete() {
    for (trace, t_end) in traced_run(Algo::BurstTopo) {
        assert!(!trace.is_empty());
        for e in &trace {
            let (a, b) = e.interval();
            assert!(a <= b + 1e-12, "inverted interval {a}..{b}");
            assert!(b <= t_end + 1e-9, "event past the final clock");
        }
        // Compute spans never overlap each other (one device, one stream).
        let mut computes: Vec<(f64, f64)> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Compute { start, end } => Some((*start, *end)),
                _ => None,
            })
            .collect();
        computes.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in computes.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-12, "overlapping compute spans");
        }
    }
}
