//! Measured workload balance (the mechanism behind the paper's Table 3):
//! with a causal or sliding-window mask, the naive contiguous partition
//! leaves most ranks idle while the last rank computes the bulk of the
//! triangle; zigzag/striped partitions equalise per-rank work and cut the
//! virtual-time makespan.

use burst_comm::{Topology, World};
use burst_dattn::{run_attention, Algo, CostModel, Layout};
use burst_kernels::{AttnMask, BlockSparseMask};
use burst_tensor::randn_mat;

/// Run one fwd+bwd and return (makespan, per-rank compute seconds).
fn measure(layout: Layout, mask: &AttnMask, n: usize, g: usize) -> (f64, Vec<f64>) {
    let d = 8;
    let q = randn_mat(n, d, 0.7, 21);
    let k = randn_mat(n, d, 0.7, 22);
    let v = randn_mat(n, d, 0.7, 23);
    let grad_o = randn_mat(n, d, 0.8, 24);
    let scale = 1.0 / (d as f32).sqrt();
    // Slow simulated device so compute dominates communication.
    let cost = CostModel {
        peak_flops: 1e8,
        efficiency: 1.0,
    };
    let world = World::new(Topology::single_node(g));
    let outs = world.run(|comm| {
        let idx = layout.indices(n, g, comm.rank());
        run_attention(
            Algo::BurstFlat,
            comm,
            &q.gather_rows(&idx),
            &k.gather_rows(&idx),
            &v.gather_rows(&idx),
            &grad_o.gather_rows(&idx),
            scale,
            mask,
            layout,
            n,
            &cost,
        );
    });
    let makespan = outs.iter().map(|o| o.time).fold(0.0, f64::max);
    let compute: Vec<f64> = outs.iter().map(|o| o.stats.compute_time).collect();
    (makespan, compute)
}

#[test]
fn zigzag_and_striped_cut_causal_makespan() {
    let (n, g) = (64usize, 8usize);
    let mask = AttnMask::Causal;
    let (t_naive, c_naive) = measure(Layout::Contiguous, &mask, n, g);
    let (t_zig, c_zig) = measure(Layout::Zigzag, &mask, n, g);
    let (t_str, _) = measure(Layout::Striped, &mask, n, g);
    // Contiguous: the last rank computes ~2G/(G+1)× the average → makespan
    // approaches 2× the balanced one at large G (paper reports 1.72× at
    // G=32 end-to-end).
    let speedup_zig = t_naive / t_zig;
    let speedup_str = t_naive / t_str;
    assert!(
        speedup_zig > 1.4,
        "zigzag speedup {speedup_zig} (naive {t_naive}, zigzag {t_zig})"
    );
    assert!(speedup_str > 1.4, "striped speedup {speedup_str}");
    // Per-rank compute seconds: wildly skewed for contiguous, flat for zigzag.
    let spread = |c: &[f64]| {
        let max = c.iter().cloned().fold(0.0, f64::max);
        let min = c.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min) / max
    };
    assert!(spread(&c_naive) > 0.5, "contiguous spread {:?}", c_naive);
    assert!(spread(&c_zig) < 0.15, "zigzag spread {:?}", c_zig);
}

#[test]
fn striped_balances_sliding_window_attention() {
    // Table 3's SWA row: block-sparse balance via the striped-style layout.
    let (n, g) = (64usize, 4usize);
    let window_mask = AttnMask::SlidingWindow { window: 16 };
    let (t_naive, _) = measure(Layout::Contiguous, &window_mask, n, g);
    let (t_str, c_str) = measure(Layout::Striped, &window_mask, n, g);
    // Contiguous + SWA is only mildly imbalanced (just the first rank's
    // warm-up triangle is light), so the balanced layout wins ~1.1–1.2×;
    // the headline Table 3 gain comes from skipping masked tiles at all,
    // benchmarked in the harness.
    assert!(
        t_naive / t_str > 1.1,
        "striped SWA speedup {} (naive {t_naive}, striped {t_str})",
        t_naive / t_str
    );
    let max = c_str.iter().cloned().fold(0.0, f64::max);
    let min = c_str.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!((max - min) / max < 0.2, "striped SWA spread {c_str:?}");
}

#[test]
fn block_sparse_balance_requires_striped_layout() {
    let (n, g) = (64usize, 4usize);
    // Block size 16 = multiple of G = 4, per the paper's requirement.
    let mask = AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(16, 4, 2));
    let (t_naive, _) = measure(Layout::Contiguous, &mask, n, g);
    let (t_str, _) = measure(Layout::Striped, &mask, n, g);
    assert!(
        t_str < t_naive,
        "striped block-sparse {t_str} should beat contiguous {t_naive}"
    );
}

#[test]
fn sliding_window_work_is_far_below_causal() {
    // The raw FLOP saving SWA offers (Table 3's 3.68× comes from this saving
    // being actually realisable once balanced).
    let n = 1 << 14;
    let causal = AttnMask::Causal.allowed_pairs(n);
    let swa = AttnMask::SlidingWindow { window: 1 << 10 }.allowed_pairs(n);
    let ratio = causal as f64 / swa as f64;
    assert!(ratio > 7.0, "causal/SWA work ratio {ratio}");
}
