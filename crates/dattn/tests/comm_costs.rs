//! Quantitative communication claims of the paper, asserted from the
//! simulator's byte counters and virtual clock:
//!
//! * forward ring: `2Nd·(G−1)/G` words per rank;
//! * Algorithm 1 backward: exactly `4Nd` words per rank;
//! * Algorithm 2 backward: `(2Nd + 2N)(G−1)/G + Nd` words per rank —
//!   ~25 % less at large `G` and `d ≫ 1`;
//! * topology-aware rings move almost all volume onto NVLink;
//! * in virtual time: BurstTopo < DoubleRing < flat ring on multi-node
//!   clusters, and fine-grained overlap beats no overlap.

use burst_comm::{CommStats, Topology, World};
use burst_dattn::{
    burst_backward, ring_backward, ring_forward, run_attention, Algo, AttnShard, BackwardInputs,
    CostModel, Layout, OverlapMode, Ring,
};
use burst_kernels::AttnMask;
use burst_tensor::{randn_mat, Mat};

fn problem(n: usize, d: usize) -> (Mat, Mat, Mat, Mat, f32) {
    (
        randn_mat(n, d, 0.7, 11),
        randn_mat(n, d, 0.7, 12),
        randn_mat(n, d, 0.7, 13),
        randn_mat(n, d, 0.8, 14),
        1.0 / (d as f32).sqrt(),
    )
}

/// Per-rank elements sent during forward and backward of one flat-ring
/// algorithm, measured separately.
fn measure_flat(n: usize, d: usize, g: usize, burst: bool, overlap: OverlapMode) -> (u64, u64) {
    let (q, k, v, grad_o, scale) = problem(n, d);
    let mask = AttnMask::Full;
    let world = World::new(Topology::single_node(g));
    let outs = world.run_results(|comm| {
        let layout = Layout::Contiguous;
        let idx = layout.indices(n, g, comm.rank());
        let ql = q.gather_rows(&idx);
        let kl = k.gather_rows(&idx);
        let vl = v.gather_rows(&idx);
        let dol = grad_o.gather_rows(&idx);
        let shard = AttnShard {
            q: &ql,
            k: &kl,
            v: &vl,
            scale,
            mask: &mask,
            layout,
            seq_len: n,
            cost: CostModel::free(),
            max_token: None,
            skip: false,
        };
        let ring = Ring::global(comm);
        let fwd = ring_forward(comm, &ring, &shard);
        let fwd_elems = comm.stats().total_elems();
        let back = BackwardInputs {
            o: &fwd.o,
            lse: &fwd.lse,
            grad_o: &dol,
        };
        if burst {
            burst_backward(comm, &ring, &shard, &back, overlap);
        } else {
            ring_backward(comm, &ring, &shard, &back, overlap);
        }
        (fwd_elems, comm.stats().total_elems() - fwd_elems)
    });
    // All ranks send the same volume; return rank 0's.
    assert!(
        outs.iter().all(|&o| o == outs[0]),
        "asymmetric volumes {outs:?}"
    );
    outs[0]
}

#[test]
fn forward_communication_is_2nd() {
    let (n, d, g) = (32usize, 8usize, 4usize);
    let (fwd, _) = measure_flat(n, d, g, false, OverlapMode::Fine);
    let expect = ((g - 1) * 2 * (n / g) * d) as u64;
    assert_eq!(fwd, expect, "forward ring volume");
}

#[test]
fn algorithm1_backward_is_exactly_4nd() {
    let (n, d, g) = (32usize, 8usize, 4usize);
    let (_, bwd) = measure_flat(n, d, g, false, OverlapMode::Fine);
    assert_eq!(bwd, (4 * n * d) as u64, "Algorithm 1 backward volume");
    // Identical volume regardless of overlap mode.
    let (_, bwd_none) = measure_flat(n, d, g, false, OverlapMode::None);
    assert_eq!(bwd, bwd_none);
}

#[test]
fn algorithm2_backward_is_3nd_plus_2n() {
    let (n, d, g) = (32usize, 8usize, 4usize);
    let (_, bwd) = measure_flat(n, d, g, true, OverlapMode::Fine);
    // (G−1) hops of (Q, ∇O, Lse, D) + G hops of ∇Q.
    let p = n / g;
    let expect = ((g - 1) * (2 * p * d + 2 * p) + g * p * d) as u64;
    assert_eq!(bwd, expect, "Algorithm 2 backward volume");
    let (_, bwd_none) = measure_flat(n, d, g, true, OverlapMode::None);
    assert_eq!(bwd, bwd_none);
}

#[test]
fn burst_backward_saves_about_25_percent() {
    // At large d the 2N term vanishes: ratio → (3 − 3/G + 1) /4 … compare
    // against the paper's ≈ 25 % claim with a generous band.
    let (n, d, g) = (64usize, 32usize, 8usize);
    let (_, ring) = measure_flat(n, d, g, false, OverlapMode::Fine);
    let (_, burst) = measure_flat(n, d, g, true, OverlapMode::Fine);
    let ratio = burst as f64 / ring as f64;
    assert!(
        (0.70..0.82).contains(&ratio),
        "burst/ring backward volume ratio {ratio}"
    );
}

fn run_algo_timed(algo: Algo, topo: Topology, n: usize, d: usize) -> (f64, CommStats) {
    let g = topo.world_size();
    let (q, k, v, grad_o, scale) = problem(n, d);
    let mask = AttnMask::Causal;
    let world = World::new(topo);
    let (_, makespan, stats) = world.run_timed(|comm| {
        let layout = Layout::Zigzag;
        let idx = layout.indices(n, g, comm.rank());
        run_attention(
            algo,
            comm,
            &q.gather_rows(&idx),
            &k.gather_rows(&idx),
            &v.gather_rows(&idx),
            &grad_o.gather_rows(&idx),
            scale,
            &mask,
            layout,
            n,
            &CostModel::free(),
        );
    });
    (makespan, stats)
}

#[test]
fn topology_aware_rings_keep_volume_on_nvlink() {
    let topo = Topology::a800(2, 4);
    let (_, flat) = run_algo_timed(Algo::RingFlat, topo.clone(), 64, 8);
    let (_, burst) = run_algo_timed(Algo::BurstTopo, topo, 64, 8);
    let flat_inter_share = flat.inter_elems as f64 / flat.total_elems() as f64;
    let topo_inter_share = burst.inter_elems as f64 / burst.total_elems() as f64;
    // Flat ring: 2 of 8 hops cross nodes → 25 % inter volume. Topology-aware
    // rings exchange inter-node once per full intra sweep (plus the backward
    // completion hops) → ~17 %. The bigger win — NIC parallelism — shows up
    // in virtual time, asserted below.
    assert!(
        topo_inter_share < 0.8 * flat_inter_share,
        "topo-aware inter share {topo_inter_share} vs flat {flat_inter_share}"
    );
    assert!(topo_inter_share < 0.2, "inter share {topo_inter_share}");
}

#[test]
fn multi_node_virtual_time_ordering_matches_paper() {
    // Communication-bound regime (free compute): BurstTopo < DoubleRing <
    // flat ring, the ordering of the paper's Fig. 14.
    let topo = Topology::a800(2, 4);
    let (t_flat, _) = run_algo_timed(Algo::RingFlat, topo.clone(), 64, 16);
    let (t_double, _) = run_algo_timed(Algo::DoubleRing, topo.clone(), 64, 16);
    let (t_burst, _) = run_algo_timed(Algo::BurstTopo, topo, 64, 16);
    assert!(
        t_burst < t_double && t_double < t_flat,
        "expected burst {t_burst} < double {t_double} < flat {t_flat}"
    );
}

#[test]
fn fine_overlap_beats_no_overlap_in_virtual_time() {
    // Balance compute against communication so overlap matters: pick a cost
    // model whose per-step compute is comparable to the per-step transfer.
    let (n, d, g) = (64usize, 16usize, 4usize);
    let (q, k, v, grad_o, scale) = problem(n, d);
    let mask = AttnMask::Full;
    let run = |overlap: OverlapMode| {
        let world = World::new(Topology::single_node(g));
        let (_, makespan, _) = world.run_timed(|comm| {
            let layout = Layout::Contiguous;
            let idx = layout.indices(n, g, comm.rank());
            let shard = AttnShard {
                q: &q.gather_rows(&idx),
                k: &k.gather_rows(&idx),
                v: &v.gather_rows(&idx),
                scale,
                mask: &mask,
                layout,
                seq_len: n,
                // Tiny simulated device so compute time ~ transfer time.
                cost: CostModel {
                    peak_flops: 2e9,
                    efficiency: 1.0,
                },
                max_token: None,
                skip: false,
            };
            let ring = Ring::global(comm);
            let fwd = ring_forward(comm, &ring, &shard);
            let back = BackwardInputs {
                o: &fwd.o,
                lse: &fwd.lse,
                grad_o: &grad_o.gather_rows(&idx),
            };
            burst_backward(comm, &ring, &shard, &back, overlap);
        });
        makespan
    };
    let fine = run(OverlapMode::Fine);
    let none = run(OverlapMode::None);
    assert!(
        fine < none,
        "fine-grained overlap ({fine}) must beat serialized comm ({none})"
    );
}

#[test]
fn virtual_time_is_deterministic() {
    let topo = Topology::a800(2, 2);
    let (t1, s1) = run_algo_timed(Algo::BurstTopo, topo.clone(), 32, 8);
    let (t2, s2) = run_algo_timed(Algo::BurstTopo, topo, 32, 8);
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);
}
