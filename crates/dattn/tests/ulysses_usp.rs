//! Correctness of DeepSpeed-Ulysses head parallelism and the USP hybrid,
//! validated per head against the single-device blocked kernel, plus the
//! head-divisibility failure mode the paper exploits (40 heads on 32 GPUs).

use burst_comm::{Topology, World};
use burst_dattn::ulysses::{ulysses_backward, ulysses_forward, UlyssesError};
use burst_dattn::usp::{usp_backward, usp_forward, UspTopo};
use burst_dattn::{CostModel, Layout};
use burst_kernels::{flash_backward, flash_forward, AttnMask};
use burst_tensor::testutil::assert_allclose;
use burst_tensor::{randn_mat, Mat};

const TOL: f32 = 2e-3;

/// Per-head global tensors.
struct HeadProblem {
    q: Vec<Mat>,
    k: Vec<Mat>,
    v: Vec<Mat>,
    grad_o: Vec<Mat>,
    scale: f32,
}

fn head_problem(n: usize, heads: usize, dh: usize) -> HeadProblem {
    HeadProblem {
        q: (0..heads)
            .map(|h| randn_mat(n, dh, 0.7, 100 + h as u64))
            .collect(),
        k: (0..heads)
            .map(|h| randn_mat(n, dh, 0.7, 200 + h as u64))
            .collect(),
        v: (0..heads)
            .map(|h| randn_mat(n, dh, 0.7, 300 + h as u64))
            .collect(),
        grad_o: (0..heads)
            .map(|h| randn_mat(n, dh, 0.8, 400 + h as u64))
            .collect(),
        scale: 1.0 / (dh as f32).sqrt(),
    }
}

struct HeadRef {
    o: Vec<Mat>,
    dq: Vec<Mat>,
    dk: Vec<Mat>,
    dv: Vec<Mat>,
}

fn head_reference(p: &HeadProblem, mask: &AttnMask, n: usize) -> HeadRef {
    let idx: Vec<usize> = (0..n).collect();
    let mut r = HeadRef {
        o: vec![],
        dq: vec![],
        dk: vec![],
        dv: vec![],
    };
    for h in 0..p.q.len() {
        let fwd = flash_forward(&p.q[h], &p.k[h], &p.v[h], p.scale, mask, &idx, &idx);
        let (dq, dk, dv, _) = flash_backward(
            &p.q[h],
            &p.k[h],
            &p.v[h],
            &fwd.o,
            &p.grad_o[h],
            &fwd.lse,
            p.scale,
            mask,
            &idx,
            &idx,
        );
        r.o.push(fwd.o);
        r.dq.push(dq);
        r.dk.push(dk);
        r.dv.push(dv);
    }
    r
}

#[test]
fn ulysses_matches_reference_per_head() {
    let (n, heads, dh, g) = (24usize, 4usize, 5usize, 2usize);
    let p = head_problem(n, heads, dh);
    let mask = AttnMask::Causal;
    let r = head_reference(&p, &mask, n);
    let world = World::new(Topology::single_node(g));
    let outs = world.run_results(|comm| {
        let members: Vec<usize> = (0..g).collect();
        let member_idx: Vec<Vec<usize>> = (0..g)
            .map(|m| Layout::Contiguous.indices(n, g, m))
            .collect();
        let my_idx = &member_idx[comm.rank()];
        let ql: Vec<Mat> = p.q.iter().map(|m| m.gather_rows(my_idx)).collect();
        let kl: Vec<Mat> = p.k.iter().map(|m| m.gather_rows(my_idx)).collect();
        let vl: Vec<Mat> = p.v.iter().map(|m| m.gather_rows(my_idx)).collect();
        let dol: Vec<Mat> = p.grad_o.iter().map(|m| m.gather_rows(my_idx)).collect();
        let (o, saved) = ulysses_forward(
            comm,
            &members,
            &member_idx,
            &ql,
            &kl,
            &vl,
            p.scale,
            &mask,
            &CostModel::free(),
        )
        .expect("ulysses forward");
        let (dq, dk, dv) = ulysses_backward(
            comm,
            &members,
            &member_idx,
            &saved,
            &dol,
            p.scale,
            &mask,
            &CostModel::free(),
        )
        .expect("ulysses backward");
        (o, dq, dk, dv)
    });
    for (rank, (o, dq, dk, dv)) in outs.iter().enumerate() {
        let idx = Layout::Contiguous.indices(n, g, rank);
        for h in 0..heads {
            let ctx = format!("rank {rank} head {h}");
            assert_allclose(&o[h], &r.o[h].gather_rows(&idx), TOL, &format!("{ctx} O"));
            assert_allclose(
                &dq[h],
                &r.dq[h].gather_rows(&idx),
                TOL,
                &format!("{ctx} dQ"),
            );
            assert_allclose(
                &dk[h],
                &r.dk[h].gather_rows(&idx),
                TOL,
                &format!("{ctx} dK"),
            );
            assert_allclose(
                &dv[h],
                &r.dv[h].gather_rows(&idx),
                TOL,
                &format!("{ctx} dV"),
            );
        }
    }
}

#[test]
fn ulysses_rejects_indivisible_heads() {
    // The paper's 14B setting: 40 heads cannot be head-parallelised over 32
    // GPUs; here 3 heads over 2 ranks.
    let (n, heads, dh, g) = (8usize, 3usize, 4usize, 2usize);
    let p = head_problem(n, heads, dh);
    let world = World::new(Topology::single_node(g));
    let outs = world.run_results(|comm| {
        let members: Vec<usize> = (0..g).collect();
        let member_idx: Vec<Vec<usize>> = (0..g)
            .map(|m| Layout::Contiguous.indices(n, g, m))
            .collect();
        let my_idx = &member_idx[comm.rank()];
        let ql: Vec<Mat> = p.q.iter().map(|m| m.gather_rows(my_idx)).collect();
        ulysses_forward(
            comm,
            &members,
            &member_idx,
            &ql,
            &ql,
            &ql,
            p.scale,
            &AttnMask::Causal,
            &CostModel::free(),
        )
        .err()
    });
    for out in outs {
        assert_eq!(
            out,
            Some(UlyssesError::HeadsNotDivisible { heads: 3, group: 2 })
        );
    }
}

#[test]
fn ulysses_communication_scales_inversely_with_group() {
    // Per-rank all-to-all volume shrinks as the group grows — the property
    // that makes Ulysses cheap (until head count caps it).
    let (n, heads, dh) = (32usize, 8usize, 4usize);
    let p = head_problem(n, heads, dh);
    let measure = |g: usize| {
        let world = World::new(Topology::single_node(g));
        let outs = world.run(|comm| {
            let members: Vec<usize> = (0..g).collect();
            let member_idx: Vec<Vec<usize>> = (0..g)
                .map(|m| Layout::Contiguous.indices(n, g, m))
                .collect();
            let my_idx = &member_idx[comm.rank()];
            let ql: Vec<Mat> = p.q.iter().map(|m| m.gather_rows(my_idx)).collect();
            let kl: Vec<Mat> = p.k.iter().map(|m| m.gather_rows(my_idx)).collect();
            let vl: Vec<Mat> = p.v.iter().map(|m| m.gather_rows(my_idx)).collect();
            ulysses_forward(
                comm,
                &members,
                &member_idx,
                &ql,
                &kl,
                &vl,
                p.scale,
                &AttnMask::Causal,
                &CostModel::free(),
            )
            .expect("fwd");
        });
        outs[0].stats.total_elems()
    };
    let v2 = measure(2);
    let v4 = measure(4);
    // Volume per rank ≈ 4·(N/G)·d·(G−1)/G: strictly decreasing in G.
    assert!(
        v4 < v2,
        "per-rank Ulysses volume should shrink with G: G=2 → {v2}, G=4 → {v4}"
    );
}

#[test]
fn usp_matches_reference_per_head() {
    // G = 4 ranks as U=2 Ulysses groups × R=2 ring groups.
    let (n, heads, dh, g, u) = (32usize, 4usize, 5usize, 4usize, 2usize);
    let p = head_problem(n, heads, dh);
    let mask = AttnMask::Causal;
    let r = head_reference(&p, &mask, n);
    let world = World::new(Topology::a800(2, 2));
    let outs = world.run_results(|comm| {
        let topo = UspTopo::new(comm, u);
        let my_idx = topo.local_idx(n);
        let ql: Vec<Mat> = p.q.iter().map(|m| m.gather_rows(&my_idx)).collect();
        let kl: Vec<Mat> = p.k.iter().map(|m| m.gather_rows(&my_idx)).collect();
        let vl: Vec<Mat> = p.v.iter().map(|m| m.gather_rows(&my_idx)).collect();
        let dol: Vec<Mat> = p.grad_o.iter().map(|m| m.gather_rows(&my_idx)).collect();
        let (o, saved) = usp_forward(
            comm,
            &topo,
            &ql,
            &kl,
            &vl,
            p.scale,
            &mask,
            n,
            &CostModel::free(),
        )
        .expect("usp forward");
        let (dq, dk, dv) = usp_backward(
            comm,
            &topo,
            &saved,
            &dol,
            p.scale,
            &mask,
            n,
            &CostModel::free(),
        )
        .expect("usp backward");
        (my_idx, o, dq, dk, dv)
    });
    assert_eq!(outs.len(), g);
    for (rank, (idx, o, dq, dk, dv)) in outs.iter().enumerate() {
        for h in 0..heads {
            let ctx = format!("rank {rank} head {h}");
            assert_allclose(&o[h], &r.o[h].gather_rows(idx), TOL, &format!("{ctx} O"));
            assert_allclose(&dq[h], &r.dq[h].gather_rows(idx), TOL, &format!("{ctx} dQ"));
            assert_allclose(&dk[h], &r.dk[h].gather_rows(idx), TOL, &format!("{ctx} dK"));
            assert_allclose(&dv[h], &r.dv[h].gather_rows(idx), TOL, &format!("{ctx} dV"));
        }
    }
}

#[test]
fn usp_with_u_equal_world_degenerates_to_ulysses_shape() {
    // U = G: the ring group is a singleton — pure head parallelism.
    let (n, heads, dh, g) = (16usize, 4usize, 4usize, 4usize);
    let p = head_problem(n, heads, dh);
    let mask = AttnMask::Causal;
    let r = head_reference(&p, &mask, n);
    let world = World::new(Topology::single_node(g));
    let outs = world.run_results(|comm| {
        let topo = UspTopo::new(comm, g);
        assert_eq!(topo.ring, 1);
        let my_idx = topo.local_idx(n);
        let ql: Vec<Mat> = p.q.iter().map(|m| m.gather_rows(&my_idx)).collect();
        let kl: Vec<Mat> = p.k.iter().map(|m| m.gather_rows(&my_idx)).collect();
        let vl: Vec<Mat> = p.v.iter().map(|m| m.gather_rows(&my_idx)).collect();
        let (o, _) = usp_forward(
            comm,
            &topo,
            &ql,
            &kl,
            &vl,
            p.scale,
            &mask,
            n,
            &CostModel::free(),
        )
        .expect("usp forward");
        (my_idx, o)
    });
    for (idx, o) in &outs {
        for (h, oh) in o.iter().enumerate().take(heads) {
            assert_allclose(oh, &r.o[h].gather_rows(idx), TOL, "U=G output");
        }
    }
}

#[test]
fn usp_rejects_indivisible_heads() {
    let (n, heads, dh, g, u) = (16usize, 3usize, 4usize, 4usize, 2usize);
    let p = head_problem(n, heads, dh);
    let world = World::new(Topology::single_node(g));
    let outs = world.run_results(|comm| {
        let topo = UspTopo::new(comm, u);
        let my_idx = topo.local_idx(n);
        let ql: Vec<Mat> = p.q.iter().map(|m| m.gather_rows(&my_idx)).collect();
        usp_forward(
            comm,
            &topo,
            &ql,
            &ql,
            &ql,
            p.scale,
            &AttnMask::Causal,
            n,
            &CostModel::free(),
        )
        .err()
    });
    for out in outs {
        assert_eq!(
            out,
            Some(UlyssesError::HeadsNotDivisible { heads: 3, group: 2 })
        );
    }
}
