//! Sequence partitions across ranks and the causal workload-balance
//! schemes of paper §3.4.
//!
//! A layout maps global token indices to ranks. The attention kernels take
//! the owned global indices directly, apply masks on them and skip
//! fully-masked tiles — so a layout choice alone determines each rank's
//! causal workload. Zigzag (Eq. 11) and striped (Eq. 13) make that workload
//! identical across ranks; contiguous does not (rank 0 holds the triangle's
//! thin end).

use burst_kernels::AttnMask;

/// How the global sequence is split across `G` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Rank `i` owns tokens `[i·N/G, (i+1)·N/G)`.
    Contiguous,
    /// The sequence is cut into `2G` chunks; rank `i` owns chunks `i` and
    /// `2G−1−i` (Eq. 11) — one early chunk, one late chunk.
    Zigzag,
    /// Rank `i` owns tokens `≡ i (mod G)` (Eq. 13).
    Striped,
}

impl Layout {
    /// Global indices owned by `rank`, in the local storage order.
    #[track_caller]
    pub fn indices(&self, n: usize, g: usize, rank: usize) -> Vec<usize> {
        assert!(g > 0 && rank < g, "layout: rank {rank} of {g}");
        assert_eq!(n % g, 0, "layout: sequence {n} not divisible by {g} ranks");
        let p = n / g;
        match self {
            Layout::Contiguous => (rank * p..(rank + 1) * p).collect(),
            Layout::Zigzag => {
                assert_eq!(
                    n % (2 * g),
                    0,
                    "zigzag: sequence {n} must divide into 2G = {} chunks",
                    2 * g
                );
                let half = p / 2;
                let front = rank * half..(rank + 1) * half;
                let back_chunk = 2 * g - 1 - rank;
                let back = back_chunk * half..(back_chunk + 1) * half;
                front.chain(back).collect()
            }
            Layout::Striped => (0..p).map(|m| rank + g * m).collect(),
        }
    }

    /// The number of local rows each rank holds (`N/G` for every layout).
    pub fn shard_len(&self, n: usize, g: usize) -> usize {
        n / g
    }

    /// Scatter a global matrix into the shard owned by `rank`.
    pub fn shard_of(&self, global: &burst_tensor::Mat, g: usize, rank: usize) -> burst_tensor::Mat {
        let idx = self.indices(global.rows(), g, rank);
        global.gather_rows(&idx)
    }

    /// Reassemble per-rank shards into the global row order.
    #[track_caller]
    pub fn unshard(&self, shards: &[burst_tensor::Mat], n: usize) -> burst_tensor::Mat {
        let g = shards.len();
        assert!(g > 0, "unshard: no shards");
        let cols = shards[0].cols();
        let mut out = burst_tensor::Mat::zeros(n, cols);
        for (rank, shard) in shards.iter().enumerate() {
            let idx = self.indices(n, g, rank);
            assert_eq!(idx.len(), shard.rows(), "unshard: shard size mismatch");
            for (local, &global) in idx.iter().enumerate() {
                out.row_mut(global).copy_from_slice(shard.row(local));
            }
        }
        out
    }

    /// The causal workload (allowed query–key pairs against the *whole*
    /// sequence) of `rank` under this layout — the quantity the balance
    /// schemes equalise.
    pub fn rank_workload(&self, mask: &AttnMask, n: usize, g: usize, rank: usize) -> u128 {
        self.indices(n, g, rank)
            .iter()
            .map(|&i| (0..n).filter(|&j| mask.allowed(i, j)).count() as u128)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::Mat;

    fn check_partition(layout: Layout, n: usize, g: usize) {
        let mut seen = vec![false; n];
        for rank in 0..g {
            let idx = layout.indices(n, g, rank);
            assert_eq!(idx.len(), n / g, "{layout:?}: rank {rank} size");
            for &i in &idx {
                assert!(!seen[i], "{layout:?}: token {i} owned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "{layout:?}: tokens unowned");
    }

    #[test]
    fn all_layouts_partition_the_sequence() {
        for layout in [Layout::Contiguous, Layout::Zigzag, Layout::Striped] {
            check_partition(layout, 32, 4);
            check_partition(layout, 48, 8);
            check_partition(layout, 16, 1);
        }
    }

    #[test]
    fn zigzag_matches_equation_11() {
        // N = 16, G = 4 → 8 chunks of 2; rank 1 owns chunks 1 and 6.
        let idx = Layout::Zigzag.indices(16, 4, 1);
        assert_eq!(idx, vec![2, 3, 12, 13]);
        // Rank 0 gets the first and last chunks.
        let idx0 = Layout::Zigzag.indices(16, 4, 0);
        assert_eq!(idx0, vec![0, 1, 14, 15]);
    }

    #[test]
    fn striped_matches_equation_13() {
        let idx = Layout::Striped.indices(12, 4, 2);
        assert_eq!(idx, vec![2, 6, 10]);
    }

    #[test]
    fn zigzag_and_striped_balance_causal_workload() {
        let n = 64;
        let g = 8;
        let mask = AttnMask::Causal;
        for layout in [Layout::Zigzag, Layout::Striped] {
            let loads: Vec<u128> = (0..g)
                .map(|r| layout.rank_workload(&mask, n, g, r))
                .collect();
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            // Zigzag is exactly balanced; striped is balanced up to the
            // (G−1)·N/G diagonal remainder (Eq. 14's Q'/K' trick), which is
            // O(N) against an O(N²/G) workload.
            assert!(max - min <= n as u128, "{layout:?}: imbalance {loads:?}");
        }
        // Contiguous is badly imbalanced: last rank ~ (2G−1)× the first.
        let loads: Vec<u128> = (0..g)
            .map(|r| Layout::Contiguous.rank_workload(&mask, n, g, r))
            .collect();
        assert!(loads[g - 1] > 10 * loads[0], "contiguous loads {loads:?}");
    }

    #[test]
    fn striped_balances_block_sparse_workload() {
        // Block size a multiple of G (the paper's stated requirement).
        let n = 64;
        let g = 4;
        let mask = AttnMask::BlockSparse(burst_kernels::BlockSparseMask::sliding_window_blocks(
            16, 4, 2,
        ));
        let loads: Vec<u128> = (0..g)
            .map(|r| Layout::Striped.rank_workload(&mask, n, g, r))
            .collect();
        assert!(
            loads.iter().all(|&l| l == loads[0]),
            "striped block-sparse loads must be exactly equal: {loads:?}"
        );
    }

    #[test]
    fn shard_unshard_roundtrip() {
        let global = Mat::from_fn(24, 3, |r, c| (r * 3 + c) as f32);
        for layout in [Layout::Contiguous, Layout::Zigzag, Layout::Striped] {
            let shards: Vec<Mat> = (0..4).map(|r| layout.shard_of(&global, 4, r)).collect();
            let back = layout.unshard(&shards, 24);
            assert_eq!(back, global, "{layout:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_sequence() {
        let _ = Layout::Contiguous.indices(10, 4, 0);
    }
}
