//! Topology-aware two-level ring attention (paper §3.1, Fig. 4–5).
//!
//! The global ring is split into intra-node NVLink sub-rings nested inside
//! an inter-node NIC ring. One outer iteration = one full intra-node sweep
//! (`gpus_per_node` compute steps) + one inter-node exchange. Because every
//! GPU exchanges with its same-local-rank peer on the neighbouring node,
//! all NICs move data simultaneously — the bandwidth win over the flat
//! ring, where the single node-boundary link serialises everything.
//!
//! Three schedules are provided:
//!
//! * [`double_ring_forward`] — shared by DoubleRingAttention and
//!   BurstAttention: `K, V` are read-only, so the inter-node transfer is
//!   posted at the *start* of each outer iteration and hides behind the
//!   whole intra-node sweep;
//! * [`double_ring_backward_alg1`] — the LoongTrain DoubleRing baseline:
//!   Algorithm 1's `(K, V, ∇K, ∇V)` bundle circulates through every rank.
//!   Gradients ride in the same buffers as activations, so *nothing* can be
//!   posted early: each transfer waits for the compute that updated it
//!   (the paper's "fails to overlap gradient communication" critique);
//! * [`double_ring_backward_alg2`] — full BurstAttention: Algorithm 2's
//!   read-only bundle `(Q, ∇O, Lse, D)` flows exactly like the forward
//!   (early posts), while `∇Q` follows one compute step behind on a
//!   delayed stream (warm-up-round schedule, Fig. 5 bottom), so gradient
//!   communication also hides under compute.
//!
//! All three schedules use the `_acc` tile kernels with persistent
//! accumulators and one reused [`Scratch`], and read the local shard (and
//! each sweep's start bundle) by reference — steady-state rounds perform no
//! heap allocations in the tile-compute path.

use crate::ring::{
    escalate_attn, AttnFailure, AttnShard, BackwardInputs, DistAttnOut, KvHold, Phase,
};
use burst_comm::{Communicator, MemCategory, SpanKind, Topology};
use burst_kernels::{attn_tile_backward, attn_tile_backward_acc, flash_forward_acc, KernelWork};
use burst_tensor::{Mat, Scratch};

/// What a rank holds of a circulating read-only `(Q, ∇O, Lse, D)` bundle.
/// `Absent` only arises with skipping on; gate monotonicity guarantees an
/// absent bundle is never read.
enum RoHold {
    Local,
    Owned(Mat, Mat, Vec<f32>, Vec<f32>),
    Absent,
}

impl RoHold {
    fn view<'a>(
        &'a self,
        q: &'a Mat,
        grad_o: &'a Mat,
        lse: &'a [f32],
        d: &'a [f32],
    ) -> (&'a Mat, &'a Mat, &'a [f32], &'a [f32]) {
        match self {
            RoHold::Local => (q, grad_o, lse, d),
            RoHold::Owned(oq, oo, ol, od) => (oq, oo, ol, od),
            RoHold::Absent => unreachable!("skip gates never read an absent bundle"),
        }
    }
}

/// Resolve the two-level `cur`-over-`start` K/V hold without touching
/// `start` unless `cur` actually defers to it — with skipping on, a rank
/// can own the current shard while the sweep's start shard was gated off
/// and is legitimately absent.
fn kv_pair<'a>(cur: &'a KvHold, start: &'a KvHold, k: &'a Mat, v: &'a Mat) -> (&'a Mat, &'a Mat) {
    match cur {
        KvHold::Local => start.view(k, v),
        held => held.view(k, v),
    }
}

/// The logical geometry of a two-level ring over an arbitrary member set.
///
/// All schedule arithmetic in this module runs on **slots** — dense logical
/// positions `slot = outer · gpus_per_node + inner`, node-major like fresh
/// physical ranks — and `slots[slot]` maps each one back to the physical
/// rank occupying it. A full world is the identity mapping; after an
/// eviction, [`DoubleRingSpec::from_members`] rebuilds the split from the
/// survivors **iff node locality survived** (every remaining node
/// contributes the same number of ranks), so inner hops stay on NVLink and
/// outer hops stay on the NICs. Because slot arithmetic is exactly the
/// rank arithmetic of a fresh `(nodes, gpus_per_node)` world, a shrunken
/// double-ring schedule is bit-identical to a fresh world of that shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoubleRingSpec {
    nodes: usize,
    gpn: usize,
    /// `slots[outer * gpn + inner]` = physical rank at that slot.
    slots: Vec<usize>,
}

impl DoubleRingSpec {
    /// The identity spec over the full topology.
    pub fn full(topo: &Topology) -> Self {
        DoubleRingSpec {
            nodes: topo.nodes,
            gpn: topo.gpus_per_node,
            slots: (0..topo.nodes * topo.gpus_per_node).collect(),
        }
    }

    /// Rebuild the two-level split over a surviving member set, preserving
    /// node locality. Returns `None` when the survivors are *ragged* — the
    /// non-empty nodes hold unequal rank counts, so no valid inner/outer
    /// split exists and the caller must fall back to a flat ring.
    pub fn from_members(topo: &Topology, members: &[usize]) -> Option<Self> {
        let mut members = members.to_vec();
        members.sort_unstable();
        members.dedup();
        if members.is_empty() || *members.last().unwrap() >= topo.world_size() {
            return None;
        }
        let mut per_node = vec![0usize; topo.nodes];
        for &r in &members {
            per_node[topo.node_of(r)] += 1;
        }
        let counts: Vec<usize> = per_node.iter().copied().filter(|&c| c > 0).collect();
        let gpn = counts[0];
        if counts.iter().any(|&c| c != gpn) {
            return None;
        }
        // Ranks are node-major, so ascending survivors are already grouped
        // by (retained) node: the sorted list *is* the slot map.
        Some(DoubleRingSpec {
            nodes: counts.len(),
            gpn,
            slots: members,
        })
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn gpus_per_node(&self) -> usize {
        self.gpn
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The physical rank occupying `slot`.
    pub fn rank_at(&self, slot: usize) -> usize {
        self.slots[slot]
    }

    /// The slot occupied by physical `rank`, if it is a member.
    pub fn slot_of(&self, rank: usize) -> Option<usize> {
        self.slots.iter().position(|&r| r == rank)
    }

    /// Next slot on the same (logical) node's NVLink sub-ring.
    pub fn next_in_node(&self, slot: usize) -> usize {
        let (outer, inner) = (slot / self.gpn, slot % self.gpn);
        outer * self.gpn + (inner + 1) % self.gpn
    }

    /// Previous slot on the same (logical) node's NVLink sub-ring.
    pub fn prev_in_node(&self, slot: usize) -> usize {
        let (outer, inner) = (slot / self.gpn, slot % self.gpn);
        outer * self.gpn + (inner + self.gpn - 1) % self.gpn
    }

    /// Same-inner-position slot on the next (logical) node.
    pub fn peer_next_node(&self, slot: usize) -> usize {
        let (outer, inner) = (slot / self.gpn, slot % self.gpn);
        ((outer + 1) % self.nodes) * self.gpn + inner
    }

    /// Same-inner-position slot on the previous (logical) node.
    pub fn peer_prev_node(&self, slot: usize) -> usize {
        let (outer, inner) = (slot / self.gpn, slot % self.gpn);
        ((outer + self.nodes - 1) % self.nodes) * self.gpn + inner
    }
}

/// Forward pass over the two-level ring.
pub fn double_ring_forward(comm: &mut Communicator, shard: &AttnShard) -> DistAttnOut {
    match try_double_ring_forward(comm, shard) {
        Ok(out) => out,
        Err(e) => escalate_attn(comm, e),
    }
}

/// Fallible [`double_ring_forward`]: failures at slot `(outer, inner)` are
/// reported with global round `outer · gpus_per_node + inner`.
pub fn try_double_ring_forward(
    comm: &mut Communicator,
    shard: &AttnShard,
) -> Result<DistAttnOut, AttnFailure> {
    let spec = DoubleRingSpec::full(comm.topology());
    try_double_ring_forward_on(comm, shard, &spec)
}

/// [`try_double_ring_forward`] over an explicit [`DoubleRingSpec`] — the
/// elastic entry point: the caller's `Q/K/V` must hold the tokens of its
/// *slot* in the spec's `len()`-way partition (`AttnShard::idx_at`).
pub fn try_double_ring_forward_on(
    comm: &mut Communicator,
    shard: &AttnShard,
    spec: &DoubleRingSpec,
) -> Result<DistAttnOut, AttnFailure> {
    let (nodes, gpn) = (spec.nodes(), spec.gpus_per_node());
    let g = spec.len();
    let me = spec
        .slot_of(comm.rank())
        .expect("double-ring caller must be a spec member");
    let intra_next = spec.rank_at(spec.next_in_node(me));
    let intra_prev = spec.rank_at(spec.prev_in_node(me));
    let peer_next = spec.rank_at(spec.peer_next_node(me));
    let peer_prev = spec.rank_at(spec.peer_prev_node(me));
    let d = shard.q.cols();
    let qi = shard.idx_at(g, me);
    let kidx_all: Vec<Vec<usize>> = (0..g).map(|s| shard.idx_at(g, s)).collect();
    let mut acc_o = Mat::zeros(shard.q.rows(), shard.v.cols());
    let mut acc_lse = vec![f32::NEG_INFINITY; shard.q.rows()];
    let mut scratch = Scratch::new();
    let mut work = KernelWork::default();
    // Pass-scoped accountant entries: the persistent accumulators plus one
    // steady-state (K, V) slot per active ring level — the inter-node start
    // bundle and the intra-node current bundle circulate concurrently.
    let mem_acc = comm.mem_alloc(
        "dr_fwd_acc",
        MemCategory::Activations,
        (acc_o.nbytes() + 4 * acc_lse.len()) as u64,
    );
    let plan = shard.skip_plan(&kidx_all);
    let (buf_start, buf_cur) = plan.dr_fwd_bufs(me, nodes, gpn);
    let kv_wire = comm.mem_wire_bytes(shard.k.len() + shard.v.len());
    let mem_start = if nodes > 1 && buf_start {
        comm.mem_alloc("dr_fwd_start_kv", MemCategory::CommBuffers, kv_wire)
    } else {
        None
    };
    let mem_cur = if gpn > 1 && buf_cur {
        comm.mem_alloc("dr_fwd_cur_kv", MemCategory::CommBuffers, kv_wire)
    } else {
        None
    };

    // `Local` start bundle = outer round 0, read the local shard in place;
    // `Local` current bundle = inner step 0, read the start bundle in place.
    let mut start_held = KvHold::Local;
    let mut start_src = me;
    for outer in 0..nodes {
        let op = plan.dr_fwd_outer(me, outer, nodes, gpn);
        debug_assert_eq!(op.start_shard, start_src);
        if outer < nodes - 1 {
            if op.send_inter {
                // Early inter-node post: hides behind the whole intra sweep.
                let at = AttnFailure::at(Phase::Forward, outer * gpn);
                let (start_k, start_v) = start_held.view(shard.k, shard.v);
                comm.try_send_mat(peer_next, start_k).map_err(&at)?;
                comm.try_send_mat(peer_next, start_v).map_err(&at)?;
            } else {
                comm.note_skipped_mat(kidx_all[start_src].len() * shard.k.cols());
                comm.note_skipped_mat(kidx_all[start_src].len() * shard.v.cols());
            }
        }
        let mut cur_held = KvHold::Local;
        let mut src = start_src;
        for inner in 0..gpn {
            let s = plan.dr_fwd_slot(me, outer, inner, nodes, gpn);
            debug_assert_eq!(s.shard, src);
            let k_elems = kidx_all[src].len() * shard.k.cols();
            let v_elems = kidx_all[src].len() * shard.v.cols();
            if s.idle() {
                // Fully-masked slot: no span, no clock, no wire.
                comm.note_round_skipped();
                if inner < gpn - 1 {
                    comm.note_skipped_mat(k_elems);
                    comm.note_skipped_mat(v_elems);
                    cur_held = KvHold::Absent;
                    src = spec.prev_in_node(src);
                }
                continue;
            }
            let at = AttnFailure::at(Phase::Forward, outer * gpn + inner);
            comm.span_begin(SpanKind::AttnRound, "dr_fwd_slot");
            if inner < gpn - 1 {
                if s.send {
                    let (cur_k, cur_v) = kv_pair(&cur_held, &start_held, shard.k, shard.v);
                    comm.try_send_mat(intra_next, cur_k).map_err(&at)?;
                    comm.try_send_mat(intra_next, cur_v).map_err(&at)?;
                } else {
                    comm.note_skipped_mat(k_elems);
                    comm.note_skipped_mat(v_elems);
                }
            }
            if s.compute {
                let (cur_k, cur_v) = kv_pair(&cur_held, &start_held, shard.k, shard.v);
                let w = flash_forward_acc(
                    shard.q,
                    cur_k,
                    cur_v,
                    shard.scale,
                    shard.mask,
                    &qi,
                    &kidx_all[src],
                    &mut acc_o,
                    &mut acc_lse,
                    &mut scratch,
                );
                comm.advance_compute(shard.cost.attn_fwd_secs(w.pairs, d));
                work.merge(w);
            }
            if inner < gpn - 1 {
                cur_held = if s.recv {
                    KvHold::Owned(
                        comm.try_recv_mat(intra_prev).map_err(&at)?,
                        comm.try_recv_mat(intra_prev).map_err(&at)?,
                    )
                } else {
                    KvHold::Absent
                };
                src = spec.prev_in_node(src);
            }
            comm.span_end();
        }
        if outer < nodes - 1 {
            start_held = if op.recv_inter {
                let at = AttnFailure::at(Phase::Forward, (outer + 1) * gpn - 1);
                KvHold::Owned(
                    comm.try_recv_mat(peer_prev).map_err(&at)?,
                    comm.try_recv_mat(peer_prev).map_err(&at)?,
                )
            } else {
                KvHold::Absent
            };
            start_src = spec.peer_prev_node(start_src);
        }
    }
    comm.mem_note_workspace(scratch.resident_bytes());
    comm.mem_free(mem_cur);
    comm.mem_free(mem_start);
    comm.mem_free(mem_acc);
    Ok(DistAttnOut {
        o: acc_o,
        lse: acc_lse,
        work,
    })
}

/// DoubleRingAttention backward (Algorithm 1 over the two-level ring).
///
/// The `(K, V, ∇K, ∇V)` bundle physically accumulates gradients at every
/// rank, so every hop — intra and inter — departs only after the compute
/// that updated it: communication serialises with compute. After the sweep,
/// the bundle is one node and `nodes mod gpn` local hops away from home;
/// the completion hops deliver `(∇K, ∇V)` back to their owner.
pub fn double_ring_backward_alg1(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
) -> (Mat, Mat, Mat) {
    match try_double_ring_backward_alg1(comm, shard, back) {
        Ok(out) => out,
        Err(e) => escalate_attn(comm, e),
    }
}

/// Fallible [`double_ring_backward_alg1`].
pub fn try_double_ring_backward_alg1(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
) -> Result<(Mat, Mat, Mat), AttnFailure> {
    let spec = DoubleRingSpec::full(comm.topology());
    try_double_ring_backward_alg1_on(comm, shard, back, &spec)
}

/// [`try_double_ring_backward_alg1`] over an explicit [`DoubleRingSpec`].
pub fn try_double_ring_backward_alg1_on(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
    spec: &DoubleRingSpec,
) -> Result<(Mat, Mat, Mat), AttnFailure> {
    let (nodes, gpn) = (spec.nodes(), spec.gpus_per_node());
    let g = spec.len();
    let me = spec
        .slot_of(comm.rank())
        .expect("double-ring caller must be a spec member");
    let intra_next = spec.rank_at(spec.next_in_node(me));
    let intra_prev = spec.rank_at(spec.prev_in_node(me));
    let peer_next = spec.rank_at(spec.peer_next_node(me));
    let peer_prev = spec.rank_at(spec.peer_prev_node(me));
    let d = shard.q.cols();
    let qi = shard.idx_at(g, me);
    let kidx_all: Vec<Vec<usize>> = (0..g).map(|s| shard.idx_at(g, s)).collect();
    let d_vec = back.grad_o.rowsum_hadamard(back.o);
    let d_recompute = shard.cost.gemm_secs(shard.q.rows(), d, 1);
    let mut grad_q = Mat::zeros(shard.q.rows(), shard.q.cols());
    let mut held = KvHold::Local;
    // The (∇K, ∇V) half of the circulating bundle, materialized lazily at
    // the first contribution (dense zeros plus identical adds — bit-equal
    // to the always-materialized dense path).
    let mut dkv: Option<(Mat, Mat)> = None;
    let mut scratch = Scratch::new();
    let mut src = me;
    let plan = shard.skip_plan(&kidx_all);
    // Pass-scoped accountant entries: the ∇Q accumulator and — when the
    // ring circulates — Algorithm 1's fused (K, V, ∇K, ∇V) bundle. No early
    // posts here, so a single slot covers both ring levels; with skipping
    // on, a rank gated out of a half never holds it.
    let mem_dq = comm.mem_alloc(
        "dr_bwd_dq",
        MemCategory::Activations,
        grad_q.nbytes() as u64,
    );
    let (buf_kv, buf_dkv) = plan.dr_alg1_bufs(me, nodes, gpn);
    let halves = buf_kv as u64 + buf_dkv as u64;
    let half_wire = comm.mem_wire_bytes(shard.k.len() + shard.v.len());
    let mem_bundle = if g > 1 && halves > 0 {
        comm.mem_alloc(
            "dr_bwd_kv_grads",
            MemCategory::CommBuffers,
            halves * half_wire,
        )
    } else {
        None
    };

    for outer in 0..nodes {
        for inner in 0..gpn {
            let t = outer * gpn + inner;
            let s = plan.dr_alg1_slot(me, t, nodes, gpn);
            debug_assert_eq!(s.shard, src);
            let last = t + 1 == g;
            let last_inner = inner == gpn - 1;
            let k_elems = kidx_all[src].len() * shard.k.cols();
            let v_elems = kidx_all[src].len() * shard.v.cols();
            if s.idle() {
                comm.note_round_skipped();
                if !last {
                    comm.note_skipped_mat(k_elems);
                    comm.note_skipped_mat(v_elems);
                    comm.note_skipped_mat(k_elems);
                    comm.note_skipped_mat(v_elems);
                    held = KvHold::Absent;
                    dkv = None;
                    src = if last_inner {
                        spec.peer_prev_node(src)
                    } else {
                        spec.prev_in_node(src)
                    };
                }
                continue;
            }
            let at = AttnFailure::at(Phase::Backward, t);
            comm.span_begin(SpanKind::AttnRound, "dr_bwd_slot");
            if s.compute {
                let (cur_k, cur_v) = held.view(shard.k, shard.v);
                if dkv.is_none() {
                    dkv = Some((
                        Mat::zeros(kidx_all[src].len(), shard.k.cols()),
                        Mat::zeros(kidx_all[src].len(), shard.v.cols()),
                    ));
                }
                let (cur_dk, cur_dv) = dkv.as_mut().expect("just materialized");
                let w = attn_tile_backward_acc(
                    shard.q,
                    cur_k,
                    cur_v,
                    back.grad_o,
                    back.lse,
                    &d_vec,
                    shard.scale,
                    shard.mask,
                    &qi,
                    &kidx_all[src],
                    &mut grad_q,
                    cur_dk,
                    cur_dv,
                    &mut scratch,
                );
                // Algorithm 1 recomputes D every round.
                comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d) + d_recompute);
            }
            if last {
                comm.span_end();
                break; // sweep done; completion hops below
            }
            let dst = if last_inner { peer_next } else { intra_next };
            let src_peer = if last_inner { peer_prev } else { intra_prev };
            if s.send_kv {
                let (cur_k, cur_v) = held.view(shard.k, shard.v);
                comm.try_send_mat(dst, cur_k).map_err(&at)?;
                comm.try_send_mat(dst, cur_v).map_err(&at)?;
            } else {
                comm.note_skipped_mat(k_elems);
                comm.note_skipped_mat(v_elems);
            }
            if s.send_dkv {
                let (cur_dk, cur_dv) = dkv.as_ref().expect("∇K/∇V gate implies a contribution");
                comm.try_send_mat(dst, cur_dk).map_err(&at)?;
                comm.try_send_mat(dst, cur_dv).map_err(&at)?;
            } else {
                comm.note_skipped_mat(k_elems);
                comm.note_skipped_mat(v_elems);
            }
            held = if s.recv_kv {
                KvHold::Owned(
                    comm.try_recv_mat(src_peer).map_err(&at)?,
                    comm.try_recv_mat(src_peer).map_err(&at)?,
                )
            } else {
                KvHold::Absent
            };
            dkv = if s.recv_dkv {
                Some((
                    comm.try_recv_mat(src_peer).map_err(&at)?,
                    comm.try_recv_mat(src_peer).map_err(&at)?,
                ))
            } else {
                None
            };
            src = if last_inner {
                spec.peer_prev_node(src)
            } else {
                spec.prev_in_node(src)
            };
            comm.span_end();
        }
    }
    // Completion: deliver (∇K, ∇V) home — one inter hop (the sweep ends one
    // node early) plus `nodes mod gpn` intra hops (local drift of the
    // nested rotation). Each hop's gate is `col_any` of the shard it moves;
    // a completion with hops but no live gate anywhere on this rank is one
    // skipped round.
    let hops = plan.dr_alg1_completion(me, nodes, gpn);
    if hops.is_empty() || hops.iter().any(|h| h.send || h.recv) {
        let at = AttnFailure::at(Phase::Backward, nodes * gpn - 1);
        comm.span_begin(SpanKind::AttnRound, "dr_bwd_completion");
        for h in &hops {
            let (dst, src_peer) = if h.inter {
                (peer_next, peer_prev)
            } else {
                (intra_next, intra_prev)
            };
            if h.send {
                let (dk, dv) = dkv
                    .as_ref()
                    .expect("completion gate implies a contribution");
                comm.try_send_mat(dst, dk).map_err(&at)?;
                comm.try_send_mat(dst, dv).map_err(&at)?;
            } else {
                comm.note_skipped_mat(kidx_all[h.send_shard].len() * shard.k.cols());
                comm.note_skipped_mat(kidx_all[h.send_shard].len() * shard.v.cols());
            }
            dkv = if h.recv {
                Some((
                    comm.try_recv_mat(src_peer).map_err(&at)?,
                    comm.try_recv_mat(src_peer).map_err(&at)?,
                ))
            } else {
                None
            };
        }
        comm.span_end();
    } else {
        comm.note_round_skipped();
        for h in &hops {
            comm.note_skipped_mat(kidx_all[h.send_shard].len() * shard.k.cols());
            comm.note_skipped_mat(kidx_all[h.send_shard].len() * shard.v.cols());
        }
        dkv = None;
    }
    comm.mem_note_workspace(scratch.resident_bytes());
    comm.mem_free(mem_bundle);
    comm.mem_free(mem_dq);
    let (grad_k, grad_v) = match dkv {
        Some(pair) => pair,
        // No live consumer anywhere for our shard: the dense gradients are
        // identically (+0.0) zero.
        None => (
            Mat::zeros(shard.k.rows(), shard.k.cols()),
            Mat::zeros(shard.v.rows(), shard.v.cols()),
        ),
    };
    Ok((grad_q, grad_k, grad_v))
}

/// Full BurstAttention backward: Algorithm 2 over the two-level ring with
/// fine-grained gradient overlap.
///
/// The read-only bundle `(Q_j, ∇O_j, Lse_j, D_j)` takes the forward's
/// traversal (early inter posts, intra posts before compute). `∇Q_j`
/// follows one compute step behind: after rank `r` computes its
/// contribution at slot `(o, t)`, it forwards `∇Q_j` to the rank that
/// processes bundle `j` at the next slot — `next_in_node(r)` within a
/// sweep, and the *diagonal* peer `peer_next(next_in(r))` across sweeps.
pub fn double_ring_backward_alg2(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
) -> (Mat, Mat, Mat) {
    match try_double_ring_backward_alg2(comm, shard, back) {
        Ok(out) => out,
        Err(e) => escalate_attn(comm, e),
    }
}

/// Fallible [`double_ring_backward_alg2`].
pub fn try_double_ring_backward_alg2(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
) -> Result<(Mat, Mat, Mat), AttnFailure> {
    let spec = DoubleRingSpec::full(comm.topology());
    try_double_ring_backward_alg2_on(comm, shard, back, &spec)
}

/// [`try_double_ring_backward_alg2`] over an explicit [`DoubleRingSpec`].
pub fn try_double_ring_backward_alg2_on(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
    spec: &DoubleRingSpec,
) -> Result<(Mat, Mat, Mat), AttnFailure> {
    let (nodes, gpn) = (spec.nodes(), spec.gpus_per_node());
    let g = spec.len();
    let me = spec
        .slot_of(comm.rank())
        .expect("double-ring caller must be a spec member");
    let intra_next = spec.rank_at(spec.next_in_node(me));
    let intra_prev = spec.rank_at(spec.prev_in_node(me));
    let peer_next = spec.rank_at(spec.peer_next_node(me));
    let peer_prev = spec.rank_at(spec.peer_prev_node(me));
    let d = shard.q.cols();
    let ki = shard.idx_at(g, me);
    let qidx_all: Vec<Vec<usize>> = (0..g).map(|s| shard.idx_at(g, s)).collect();
    let d_vec = back.grad_o.rowsum_hadamard(back.o);
    comm.advance_compute(shard.cost.gemm_secs(shard.q.rows(), d, 1));
    let mut grad_k = Mat::zeros(shard.k.rows(), shard.k.cols());
    let mut grad_v = Mat::zeros(shard.v.rows(), shard.v.cols());
    let mut scratch = Scratch::new();
    let mut dq_buf = Mat::default();

    if g == 1 {
        let (dq, dk, dv, w) = attn_tile_backward(
            shard.q,
            shard.k,
            shard.v,
            back.grad_o,
            back.lse,
            &d_vec,
            shard.scale,
            shard.mask,
            &ki,
            &ki,
        );
        comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d));
        return Ok((dq, dk, dv));
    }

    let plan = shard.skip_plan(&qidx_all);
    let (buf_start, buf_cur, buf_dq_ring, buf_dq_buf) = plan.dr_alg2_bufs(me, nodes, gpn);
    // Pass-scoped accountant entries: ∇K/∇V accumulators and the per-round
    // ∇Q staging buffer, plus one read-only-bundle slot per active ring
    // level and one slot for the ∇Q partial riding one step behind.
    let mem_dkv = comm.mem_alloc(
        "dr_bwd_dkv",
        MemCategory::Activations,
        (grad_k.nbytes() + grad_v.nbytes()) as u64,
    );
    let mem_dq_buf = if buf_dq_buf {
        comm.mem_alloc(
            "dr_bwd_dq_buf",
            MemCategory::Activations,
            shard.q.nbytes() as u64,
        )
    } else {
        None
    };
    let ro_wire = comm.mem_wire_bytes(shard.q.len() + back.grad_o.len())
        + 4 * (back.lse.len() + d_vec.len()) as u64;
    let mem_start = if nodes > 1 && buf_start {
        comm.mem_alloc("dr_bwd_start_bundle", MemCategory::CommBuffers, ro_wire)
    } else {
        None
    };
    let mem_cur = if gpn > 1 && buf_cur {
        comm.mem_alloc("dr_bwd_cur_bundle", MemCategory::CommBuffers, ro_wire)
    } else {
        None
    };
    let dq_wire = comm.mem_wire_bytes(shard.q.len());
    let mem_dq_ring = if buf_dq_ring {
        comm.mem_alloc("dr_dq_ring", MemCategory::CommBuffers, dq_wire)
    } else {
        None
    };

    // The rank that processes a bundle right after us when crossing nodes,
    // and the one that processed it right before us.
    let diag_next = spec.rank_at(spec.peer_next_node(spec.next_in_node(me)));
    let diag_prev = spec.rank_at(spec.peer_prev_node(spec.prev_in_node(me)));

    let mut start_held = RoHold::Local;
    let mut start_src = me;

    for outer in 0..nodes {
        let op = plan.dr_alg2_outer(me, outer, nodes, gpn);
        debug_assert_eq!(op.start_bundle, start_src);
        if outer < nodes - 1 {
            if op.send_inter {
                // Early inter-node post of the read-only bundle.
                let at = AttnFailure::at(Phase::Backward, outer * gpn);
                let (start_q, start_do, start_lse, start_d) =
                    start_held.view(shard.q, back.grad_o, back.lse, &d_vec);
                let p = peer_next;
                comm.try_send_mat(p, start_q).map_err(&at)?;
                comm.try_send_mat(p, start_do).map_err(&at)?;
                comm.try_send_vec(p, start_lse).map_err(&at)?;
                comm.try_send_vec(p, start_d).map_err(&at)?;
            } else {
                let rows = qidx_all[start_src].len();
                comm.note_skipped_mat(rows * (shard.q.cols() + back.grad_o.cols()));
                comm.note_skipped_vec(2 * rows);
            }
        }
        let mut cur_held = RoHold::Local;
        let mut src = start_src;
        for inner in 0..gpn {
            let t = outer * gpn + inner;
            let s = plan.dr_alg2_slot(me, outer, inner, nodes, gpn);
            debug_assert_eq!(s.bundle, src);
            let rows_j = qidx_all[src].len();
            let ro_mat_elems = rows_j * (shard.q.cols() + back.grad_o.cols());
            let dq_elems = rows_j * shard.q.cols();
            if s.idle() {
                comm.note_round_skipped();
                if inner < gpn - 1 {
                    comm.note_skipped_mat(ro_mat_elems);
                    comm.note_skipped_vec(2 * rows_j);
                    cur_held = RoHold::Absent;
                    src = spec.prev_in_node(src);
                }
                comm.note_skipped_mat(dq_elems);
                continue;
            }
            let at = AttnFailure::at(Phase::Backward, t);
            comm.span_begin(SpanKind::AttnRound, "dr_bwd_slot");
            // Dereference the bundle lazily: a slot can be live purely for
            // the ∇Q stream (or an intra receive) while the read-only
            // bundle itself was gated off upstream and is absent here.
            let ro = if s.send_ro || s.compute {
                Some(match &cur_held {
                    RoHold::Local => start_held.view(shard.q, back.grad_o, back.lse, &d_vec),
                    held => held.view(shard.q, back.grad_o, back.lse, &d_vec),
                })
            } else {
                None
            };
            if inner < gpn - 1 {
                if s.send_ro {
                    // Read-only intra post before compute.
                    let (cur_q, cur_do, cur_lse, cur_d) =
                        ro.expect("send gate implies a held bundle");
                    let n = intra_next;
                    comm.try_send_mat(n, cur_q).map_err(&at)?;
                    comm.try_send_mat(n, cur_do).map_err(&at)?;
                    comm.try_send_vec(n, cur_lse).map_err(&at)?;
                    comm.try_send_vec(n, cur_d).map_err(&at)?;
                } else {
                    comm.note_skipped_mat(ro_mat_elems);
                    comm.note_skipped_vec(2 * rows_j);
                }
            }
            if s.compute {
                let (cur_q, cur_do, cur_lse, cur_d) =
                    ro.expect("compute gate implies a held bundle");
                dq_buf.reshape_in_place(cur_q.rows(), cur_q.cols());
                let w = attn_tile_backward_acc(
                    cur_q,
                    shard.k,
                    shard.v,
                    cur_do,
                    cur_lse,
                    cur_d,
                    shard.scale,
                    shard.mask,
                    &qidx_all[src],
                    &ki,
                    &mut dq_buf,
                    &mut grad_k,
                    &mut grad_v,
                    &mut scratch,
                );
                comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d));
            }
            // ∇Q stream, one step behind: receive the partial sum from the
            // bundle's previous processor (none at the very first slot),
            // add our contribution, forward to the next processor.
            let to = if inner == gpn - 1 {
                diag_next
            } else {
                intra_next
            };
            if s.recv_dq {
                let from = if inner == 0 { diag_prev } else { intra_prev };
                let mut dq_j = comm.try_recv_mat(from).map_err(&at)?;
                if !s.compute {
                    // Mirror the dense pass-through bit-for-bit: the reshape
                    // zeroes the staging buffer and the add replays dense's
                    // elementwise `+ 0.0`.
                    dq_buf.reshape_in_place(dq_j.rows(), dq_j.cols());
                }
                dq_j.add_assign(&dq_buf);
                comm.try_send_mat(to, &dq_j).map_err(&at)?;
            } else if s.send_dq {
                debug_assert!(s.compute, "first ∇Q contribution implies a live tile");
                if t == 0 {
                    comm.try_send_mat(to, &dq_buf).map_err(&at)?;
                } else {
                    // First contributor mid-ring: every upstream dense add
                    // was `0.0 + 0.0`, so materialize the zeros and add.
                    let mut dq_j = Mat::zeros(rows_j, shard.q.cols());
                    dq_j.add_assign(&dq_buf);
                    comm.try_send_mat(to, &dq_j).map_err(&at)?;
                }
            } else {
                comm.note_skipped_mat(dq_elems);
            }
            if inner < gpn - 1 {
                cur_held = if s.recv_ro {
                    let p = intra_prev;
                    RoHold::Owned(
                        comm.try_recv_mat(p).map_err(&at)?,
                        comm.try_recv_mat(p).map_err(&at)?,
                        comm.try_recv_vec(p).map_err(&at)?,
                        comm.try_recv_vec(p).map_err(&at)?,
                    )
                } else {
                    RoHold::Absent
                };
                src = spec.prev_in_node(src);
            }
            comm.span_end();
        }
        if outer < nodes - 1 {
            start_held = if op.recv_inter {
                let at = AttnFailure::at(Phase::Backward, (outer + 1) * gpn - 1);
                let p = peer_prev;
                RoHold::Owned(
                    comm.try_recv_mat(p).map_err(&at)?,
                    comm.try_recv_mat(p).map_err(&at)?,
                    comm.try_recv_vec(p).map_err(&at)?,
                    comm.try_recv_vec(p).map_err(&at)?,
                )
            } else {
                RoHold::Absent
            };
            start_src = spec.peer_prev_node(start_src);
        }
    }
    // The very last ∇Q send above (slot (nodes−1, gpn−1)) delivered that
    // bundle's gradient home via the diagonal; symmetrically, our own ∇Q
    // arrives from our diagonal predecessor — unless no rank anywhere
    // attends to our queries, in which case ∇Q is identically zero.
    let grad_q = if plan.dr_alg2_final(me) {
        comm.span_begin(SpanKind::AttnRound, "dr_dq_final");
        let gq = comm
            .try_recv_mat(diag_prev)
            .map_err(AttnFailure::at(Phase::Backward, nodes * gpn - 1))?;
        comm.span_end();
        gq
    } else {
        comm.note_round_skipped();
        Mat::zeros(shard.q.rows(), shard.q.cols())
    };
    comm.mem_note_workspace(scratch.resident_bytes());
    comm.mem_free(mem_dq_ring);
    comm.mem_free(mem_cur);
    comm.mem_free(mem_start);
    comm.mem_free(mem_dq_buf);
    comm.mem_free(mem_dkv);
    Ok((grad_q, grad_k, grad_v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_spec_is_the_identity_over_the_topology() {
        let topo = Topology::a800(3, 4);
        let spec = DoubleRingSpec::full(&topo);
        assert_eq!(spec.len(), 12);
        assert_eq!((spec.nodes(), spec.gpus_per_node()), (3, 4));
        for r in 0..12 {
            assert_eq!(spec.rank_at(r), r);
            assert_eq!(spec.slot_of(r), Some(r));
            assert_eq!(spec.next_in_node(r), topo.next_in_node(r));
            assert_eq!(spec.prev_in_node(r), topo.prev_in_node(r));
            assert_eq!(spec.peer_next_node(r), topo.peer_next_node(r));
            assert_eq!(spec.peer_prev_node(r), topo.peer_prev_node(r));
        }
    }

    #[test]
    fn balanced_survivors_rebuild_a_two_level_split() {
        // 2 nodes x 3 gpus; one death per node keeps the split valid as a
        // 2x2 logical double-ring.
        let topo = Topology::a800(2, 3);
        let spec = DoubleRingSpec::from_members(&topo, &[0, 2, 3, 5]).expect("balanced");
        assert_eq!((spec.nodes(), spec.gpus_per_node()), (2, 2));
        assert_eq!(
            (0..4).map(|s| spec.rank_at(s)).collect::<Vec<_>>(),
            vec![0, 2, 3, 5]
        );
        // Slot arithmetic mirrors a fresh 2x2 world: slot 1's intra
        // neighbour is slot 0, its inter peer is slot 3.
        assert_eq!(spec.next_in_node(1), 0);
        assert_eq!(spec.peer_next_node(1), 3);
        assert_eq!(spec.slot_of(5), Some(3));
        assert_eq!(spec.slot_of(1), None);
    }

    #[test]
    fn whole_node_loss_still_splits() {
        // Losing node 1 entirely leaves 2 nodes of 2 — still valid.
        let topo = Topology::a800(3, 2);
        let spec = DoubleRingSpec::from_members(&topo, &[0, 1, 4, 5]).expect("node loss");
        assert_eq!((spec.nodes(), spec.gpus_per_node()), (2, 2));
        assert_eq!(spec.rank_at(2), 4);
        assert_eq!(spec.peer_next_node(0), 2);
    }

    #[test]
    fn ragged_survivors_are_rejected() {
        let topo = Topology::a800(2, 3);
        // Node 0 keeps 3 ranks, node 1 keeps 2: no valid split.
        assert!(DoubleRingSpec::from_members(&topo, &[0, 1, 2, 3, 4]).is_none());
        // Empty and out-of-range member sets are rejected too.
        assert!(DoubleRingSpec::from_members(&topo, &[]).is_none());
        assert!(DoubleRingSpec::from_members(&topo, &[0, 99]).is_none());
    }

    #[test]
    fn single_survivor_is_a_one_by_one_spec() {
        let topo = Topology::a800(2, 2);
        let spec = DoubleRingSpec::from_members(&topo, &[3]).expect("singleton");
        assert_eq!((spec.nodes(), spec.gpus_per_node(), spec.len()), (1, 1, 1));
        assert_eq!(spec.next_in_node(0), 0);
        assert_eq!(spec.peer_next_node(0), 0);
    }
}
