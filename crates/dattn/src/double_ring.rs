//! Topology-aware two-level ring attention (paper §3.1, Fig. 4–5).
//!
//! The global ring is split into intra-node NVLink sub-rings nested inside
//! an inter-node NIC ring. One outer iteration = one full intra-node sweep
//! (`gpus_per_node` compute steps) + one inter-node exchange. Because every
//! GPU exchanges with its same-local-rank peer on the neighbouring node,
//! all NICs move data simultaneously — the bandwidth win over the flat
//! ring, where the single node-boundary link serialises everything.
//!
//! Three schedules are provided:
//!
//! * [`double_ring_forward`] — shared by DoubleRingAttention and
//!   BurstAttention: `K, V` are read-only, so the inter-node transfer is
//!   posted at the *start* of each outer iteration and hides behind the
//!   whole intra-node sweep;
//! * [`double_ring_backward_alg1`] — the LoongTrain DoubleRing baseline:
//!   Algorithm 1's `(K, V, ∇K, ∇V)` bundle circulates through every rank.
//!   Gradients ride in the same buffers as activations, so *nothing* can be
//!   posted early: each transfer waits for the compute that updated it
//!   (the paper's "fails to overlap gradient communication" critique);
//! * [`double_ring_backward_alg2`] — full BurstAttention: Algorithm 2's
//!   read-only bundle `(Q, ∇O, Lse, D)` flows exactly like the forward
//!   (early posts), while `∇Q` follows one compute step behind on a
//!   delayed stream (warm-up-round schedule, Fig. 5 bottom), so gradient
//!   communication also hides under compute.
//!
//! All three schedules use the `_acc` tile kernels with persistent
//! accumulators and one reused [`Scratch`], and read the local shard (and
//! each sweep's start bundle) by reference — steady-state rounds perform no
//! heap allocations in the tile-compute path.

use crate::ring::{escalate_attn, AttnFailure, AttnShard, BackwardInputs, DistAttnOut, Phase};
use burst_comm::{Communicator, SpanKind};
use burst_kernels::{attn_tile_backward, attn_tile_backward_acc, flash_forward_acc, KernelWork};
use burst_tensor::{Mat, Scratch};

/// Forward pass over the two-level ring.
pub fn double_ring_forward(comm: &mut Communicator, shard: &AttnShard) -> DistAttnOut {
    match try_double_ring_forward(comm, shard) {
        Ok(out) => out,
        Err(e) => escalate_attn(comm, e),
    }
}

/// Fallible [`double_ring_forward`]: failures at slot `(outer, inner)` are
/// reported with global round `outer · gpus_per_node + inner`.
pub fn try_double_ring_forward(
    comm: &mut Communicator,
    shard: &AttnShard,
) -> Result<DistAttnOut, AttnFailure> {
    let topo = comm.topology().clone();
    let (nodes, gpn) = (topo.nodes, topo.gpus_per_node);
    let g = comm.world_size();
    let d = shard.q.cols();
    let qi = shard.my_idx(comm);
    let kidx_all: Vec<Vec<usize>> = (0..g).map(|r| shard.idx_of(comm, r)).collect();
    let mut acc_o = Mat::zeros(shard.q.rows(), shard.v.cols());
    let mut acc_lse = vec![f32::NEG_INFINITY; shard.q.rows()];
    let mut scratch = Scratch::new();
    let mut work = KernelWork::default();

    // `None` start bundle = outer round 0, read the local shard in place;
    // `None` current bundle = inner step 0, read the start bundle in place.
    let mut start_owned: Option<(Mat, Mat)> = None;
    let mut start_src = comm.rank();
    for outer in 0..nodes {
        let (start_k, start_v) = match &start_owned {
            Some((k, v)) => (k, v),
            None => (shard.k, shard.v),
        };
        if outer < nodes - 1 {
            // Early inter-node post: hides behind the whole intra sweep.
            let at = AttnFailure::at(Phase::Forward, outer * gpn);
            comm.try_send_mat(comm.peer_next_node(), start_k)
                .map_err(&at)?;
            comm.try_send_mat(comm.peer_next_node(), start_v)
                .map_err(&at)?;
        }
        let mut cur_owned: Option<(Mat, Mat)> = None;
        let mut src = start_src;
        for inner in 0..gpn {
            let at = AttnFailure::at(Phase::Forward, outer * gpn + inner);
            comm.span_begin(SpanKind::AttnRound, "dr_fwd_slot");
            let (cur_k, cur_v) = match &cur_owned {
                Some((k, v)) => (k, v),
                None => (start_k, start_v),
            };
            if inner < gpn - 1 {
                comm.try_send_mat(comm.next_in_node(), cur_k).map_err(&at)?;
                comm.try_send_mat(comm.next_in_node(), cur_v).map_err(&at)?;
            }
            let w = flash_forward_acc(
                shard.q,
                cur_k,
                cur_v,
                shard.scale,
                shard.mask,
                &qi,
                &kidx_all[src],
                &mut acc_o,
                &mut acc_lse,
                &mut scratch,
            );
            comm.advance_compute(shard.cost.attn_fwd_secs(w.pairs, d));
            work.merge(w);
            if inner < gpn - 1 {
                cur_owned = Some((
                    comm.try_recv_mat(comm.prev_in_node()).map_err(&at)?,
                    comm.try_recv_mat(comm.prev_in_node()).map_err(&at)?,
                ));
                src = topo.prev_in_node(src);
            }
            comm.span_end();
        }
        if outer < nodes - 1 {
            let at = AttnFailure::at(Phase::Forward, (outer + 1) * gpn - 1);
            start_owned = Some((
                comm.try_recv_mat(comm.peer_prev_node()).map_err(&at)?,
                comm.try_recv_mat(comm.peer_prev_node()).map_err(&at)?,
            ));
            start_src = topo.peer_prev_node(start_src);
        }
    }
    Ok(DistAttnOut {
        o: acc_o,
        lse: acc_lse,
        work,
    })
}

/// DoubleRingAttention backward (Algorithm 1 over the two-level ring).
///
/// The `(K, V, ∇K, ∇V)` bundle physically accumulates gradients at every
/// rank, so every hop — intra and inter — departs only after the compute
/// that updated it: communication serialises with compute. After the sweep,
/// the bundle is one node and `nodes mod gpn` local hops away from home;
/// the completion hops deliver `(∇K, ∇V)` back to their owner.
pub fn double_ring_backward_alg1(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
) -> (Mat, Mat, Mat) {
    match try_double_ring_backward_alg1(comm, shard, back) {
        Ok(out) => out,
        Err(e) => escalate_attn(comm, e),
    }
}

/// Fallible [`double_ring_backward_alg1`].
pub fn try_double_ring_backward_alg1(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
) -> Result<(Mat, Mat, Mat), AttnFailure> {
    let topo = comm.topology().clone();
    let (nodes, gpn) = (topo.nodes, topo.gpus_per_node);
    let g = comm.world_size();
    let d = shard.q.cols();
    let qi = shard.my_idx(comm);
    let kidx_all: Vec<Vec<usize>> = (0..g).map(|r| shard.idx_of(comm, r)).collect();
    let d_vec = back.grad_o.rowsum_hadamard(back.o);
    let d_recompute = shard.cost.gemm_secs(shard.q.rows(), d, 1);
    let mut grad_q = Mat::zeros(shard.q.rows(), shard.q.cols());
    let mut owned_kv: Option<(Mat, Mat)> = None;
    let mut cur_dk = Mat::zeros(shard.k.rows(), shard.k.cols());
    let mut cur_dv = Mat::zeros(shard.v.rows(), shard.v.cols());
    let mut scratch = Scratch::new();
    let mut src = comm.rank();

    for outer in 0..nodes {
        for inner in 0..gpn {
            let at = AttnFailure::at(Phase::Backward, outer * gpn + inner);
            comm.span_begin(SpanKind::AttnRound, "dr_bwd_slot");
            let (cur_k, cur_v) = match &owned_kv {
                Some((k, v)) => (k, v),
                None => (shard.k, shard.v),
            };
            let w = attn_tile_backward_acc(
                shard.q,
                cur_k,
                cur_v,
                back.grad_o,
                back.lse,
                &d_vec,
                shard.scale,
                shard.mask,
                &qi,
                &kidx_all[src],
                &mut grad_q,
                &mut cur_dk,
                &mut cur_dv,
                &mut scratch,
            );
            // Algorithm 1 recomputes D every round.
            comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d) + d_recompute);
            let last_inner = inner == gpn - 1;
            let dst = if last_inner {
                if outer == nodes - 1 {
                    comm.span_end();
                    break; // sweep done; completion hops below
                }
                comm.peer_next_node()
            } else {
                comm.next_in_node()
            };
            let src_peer = if last_inner {
                comm.peer_prev_node()
            } else {
                comm.prev_in_node()
            };
            comm.try_send_mat(dst, cur_k).map_err(&at)?;
            comm.try_send_mat(dst, cur_v).map_err(&at)?;
            comm.try_send_mat(dst, &cur_dk).map_err(&at)?;
            comm.try_send_mat(dst, &cur_dv).map_err(&at)?;
            owned_kv = Some((
                comm.try_recv_mat(src_peer).map_err(&at)?,
                comm.try_recv_mat(src_peer).map_err(&at)?,
            ));
            cur_dk = comm.try_recv_mat(src_peer).map_err(&at)?;
            cur_dv = comm.try_recv_mat(src_peer).map_err(&at)?;
            src = if last_inner {
                topo.peer_prev_node(src)
            } else {
                topo.prev_in_node(src)
            };
            comm.span_end();
        }
    }
    // Completion: deliver (∇K, ∇V) home — one inter hop (the sweep ends one
    // node early) plus `nodes mod gpn` intra hops (local drift of the
    // nested rotation).
    let at = AttnFailure::at(Phase::Backward, nodes * gpn - 1);
    comm.span_begin(SpanKind::AttnRound, "dr_bwd_completion");
    if nodes > 1 {
        comm.try_send_mat(comm.peer_next_node(), &cur_dk)
            .map_err(&at)?;
        comm.try_send_mat(comm.peer_next_node(), &cur_dv)
            .map_err(&at)?;
        cur_dk = comm.try_recv_mat(comm.peer_prev_node()).map_err(&at)?;
        cur_dv = comm.try_recv_mat(comm.peer_prev_node()).map_err(&at)?;
        src = topo.peer_prev_node(src);
    }
    for _ in 0..nodes % gpn {
        comm.try_send_mat(comm.next_in_node(), &cur_dk)
            .map_err(&at)?;
        comm.try_send_mat(comm.next_in_node(), &cur_dv)
            .map_err(&at)?;
        cur_dk = comm.try_recv_mat(comm.prev_in_node()).map_err(&at)?;
        cur_dv = comm.try_recv_mat(comm.prev_in_node()).map_err(&at)?;
        // The buffer we now hold came from our intra predecessor, whose
        // owner sits one local slot earlier than our previous buffer's.
        src = topo.prev_in_node(src);
    }
    comm.span_end();
    debug_assert_eq!(src, comm.rank(), "alg1 completion must deliver home");
    Ok((grad_q, cur_dk, cur_dv))
}

/// Full BurstAttention backward: Algorithm 2 over the two-level ring with
/// fine-grained gradient overlap.
///
/// The read-only bundle `(Q_j, ∇O_j, Lse_j, D_j)` takes the forward's
/// traversal (early inter posts, intra posts before compute). `∇Q_j`
/// follows one compute step behind: after rank `r` computes its
/// contribution at slot `(o, t)`, it forwards `∇Q_j` to the rank that
/// processes bundle `j` at the next slot — `next_in_node(r)` within a
/// sweep, and the *diagonal* peer `peer_next(next_in(r))` across sweeps.
pub fn double_ring_backward_alg2(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
) -> (Mat, Mat, Mat) {
    match try_double_ring_backward_alg2(comm, shard, back) {
        Ok(out) => out,
        Err(e) => escalate_attn(comm, e),
    }
}

/// Fallible [`double_ring_backward_alg2`].
pub fn try_double_ring_backward_alg2(
    comm: &mut Communicator,
    shard: &AttnShard,
    back: &BackwardInputs,
) -> Result<(Mat, Mat, Mat), AttnFailure> {
    let topo = comm.topology().clone();
    let (nodes, gpn) = (topo.nodes, topo.gpus_per_node);
    let g = comm.world_size();
    let d = shard.q.cols();
    let ki = shard.my_idx(comm);
    let qidx_all: Vec<Vec<usize>> = (0..g).map(|r| shard.idx_of(comm, r)).collect();
    let d_vec = back.grad_o.rowsum_hadamard(back.o);
    comm.advance_compute(shard.cost.gemm_secs(shard.q.rows(), d, 1));
    let mut grad_k = Mat::zeros(shard.k.rows(), shard.k.cols());
    let mut grad_v = Mat::zeros(shard.v.rows(), shard.v.cols());
    let mut scratch = Scratch::new();
    let mut dq_buf = Mat::default();

    if g == 1 {
        let (dq, dk, dv, w) = attn_tile_backward(
            shard.q,
            shard.k,
            shard.v,
            back.grad_o,
            back.lse,
            &d_vec,
            shard.scale,
            shard.mask,
            &ki,
            &ki,
        );
        comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d));
        return Ok((dq, dk, dv));
    }

    // The rank that processes a bundle right after us when crossing nodes,
    // and the one that processed it right before us.
    let diag_next = topo.peer_next_node(topo.next_in_node(comm.rank()));
    let diag_prev = topo.peer_prev_node(topo.prev_in_node(comm.rank()));

    let mut start_owned: Option<(Mat, Mat, Vec<f32>, Vec<f32>)> = None;
    let mut start_src = comm.rank();

    for outer in 0..nodes {
        let (start_q, start_do, start_lse, start_d): (&Mat, &Mat, &[f32], &[f32]) =
            match &start_owned {
                Some((q, o, l, dd)) => (q, o, l, dd),
                None => (shard.q, back.grad_o, back.lse, &d_vec),
            };
        if outer < nodes - 1 {
            // Early inter-node post of the read-only bundle.
            let at = AttnFailure::at(Phase::Backward, outer * gpn);
            let p = comm.peer_next_node();
            comm.try_send_mat(p, start_q).map_err(&at)?;
            comm.try_send_mat(p, start_do).map_err(&at)?;
            comm.try_send_vec(p, start_lse).map_err(&at)?;
            comm.try_send_vec(p, start_d).map_err(&at)?;
        }
        let mut cur_owned: Option<(Mat, Mat, Vec<f32>, Vec<f32>)> = None;
        let mut src = start_src;
        for inner in 0..gpn {
            let at = AttnFailure::at(Phase::Backward, outer * gpn + inner);
            comm.span_begin(SpanKind::AttnRound, "dr_bwd_slot");
            let (cur_q, cur_do, cur_lse, cur_d): (&Mat, &Mat, &[f32], &[f32]) = match &cur_owned {
                Some((q, o, l, dd)) => (q, o, l, dd),
                None => (start_q, start_do, start_lse, start_d),
            };
            if inner < gpn - 1 {
                // Read-only intra post before compute.
                let n = comm.next_in_node();
                comm.try_send_mat(n, cur_q).map_err(&at)?;
                comm.try_send_mat(n, cur_do).map_err(&at)?;
                comm.try_send_vec(n, cur_lse).map_err(&at)?;
                comm.try_send_vec(n, cur_d).map_err(&at)?;
            }
            dq_buf.reshape_in_place(cur_q.rows(), cur_q.cols());
            let w = attn_tile_backward_acc(
                cur_q,
                shard.k,
                shard.v,
                cur_do,
                cur_lse,
                cur_d,
                shard.scale,
                shard.mask,
                &qidx_all[src],
                &ki,
                &mut dq_buf,
                &mut grad_k,
                &mut grad_v,
                &mut scratch,
            );
            comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d));
            // ∇Q stream, one step behind: receive the partial sum from the
            // bundle's previous processor (none at the very first slot),
            // add our contribution, forward to the next processor.
            let to = if inner == gpn - 1 {
                diag_next
            } else {
                comm.next_in_node()
            };
            if outer == 0 && inner == 0 {
                comm.try_send_mat(to, &dq_buf).map_err(&at)?;
            } else {
                let from = if inner == 0 {
                    diag_prev
                } else {
                    comm.prev_in_node()
                };
                let mut dq_j = comm.try_recv_mat(from).map_err(&at)?;
                dq_j.add_assign(&dq_buf);
                comm.try_send_mat(to, &dq_j).map_err(&at)?;
            }
            if inner < gpn - 1 {
                let p = comm.prev_in_node();
                cur_owned = Some((
                    comm.try_recv_mat(p).map_err(&at)?,
                    comm.try_recv_mat(p).map_err(&at)?,
                    comm.try_recv_vec(p).map_err(&at)?,
                    comm.try_recv_vec(p).map_err(&at)?,
                ));
                src = topo.prev_in_node(src);
            }
            comm.span_end();
        }
        if outer < nodes - 1 {
            let at = AttnFailure::at(Phase::Backward, (outer + 1) * gpn - 1);
            let p = comm.peer_prev_node();
            start_owned = Some((
                comm.try_recv_mat(p).map_err(&at)?,
                comm.try_recv_mat(p).map_err(&at)?,
                comm.try_recv_vec(p).map_err(&at)?,
                comm.try_recv_vec(p).map_err(&at)?,
            ));
            start_src = topo.peer_prev_node(start_src);
        }
    }
    // The very last ∇Q send above (slot (nodes−1, gpn−1)) delivered that
    // bundle's gradient home via the diagonal; symmetrically, our own ∇Q
    // arrives from our diagonal predecessor.
    comm.span_begin(SpanKind::AttnRound, "dr_dq_final");
    let grad_q = comm
        .try_recv_mat(diag_prev)
        .map_err(AttnFailure::at(Phase::Backward, nodes * gpn - 1))?;
    comm.span_end();
    Ok((grad_q, grad_k, grad_v))
}
