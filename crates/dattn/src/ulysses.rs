//! DeepSpeed-Ulysses head parallelism.
//!
//! Each rank starts with its sequence chunk of **all** heads. An all-to-all
//! re-partitions to *all* of the sequence × a subset of heads; attention is
//! then entirely local (no ring), and a second all-to-all restores the
//! sequence partition. Communication per rank is `O(N·d/G)` — cheaper than
//! ring attention's `O(N·d)` — but head parallelism caps the group size at
//! the head count: 40 heads on 32 GPUs (the paper's 14B setting) is
//! impossible, which [`UlyssesError::HeadsNotDivisible`] reports exactly as
//! DeepSpeed does.

use crate::cost::CostModel;
use crate::ring::{escalate_attn, AttnFailure, Phase};
use crate::DattnError;
use burst_comm::{CommError, Communicator, MemCategory, MemId, SpanKind};
use burst_kernels::{flash_backward, flash_forward, AttnMask};
use burst_tensor::Mat;

/// Why Ulysses could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UlyssesError {
    /// Head parallelism requires `heads % group_size == 0`.
    HeadsNotDivisible { heads: usize, group: usize },
}

impl std::fmt::Display for UlyssesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UlyssesError::HeadsNotDivisible { heads, group } => write!(
                f,
                "Ulysses head parallelism infeasible: {heads} heads not divisible by \
                 group size {group}"
            ),
        }
    }
}

impl std::error::Error for UlyssesError {}

/// All-to-all restricted to `members` (outgoing indexed by member position).
pub(crate) fn group_all_to_all(
    comm: &mut Communicator,
    members: &[usize],
    outgoing: Vec<Mat>,
) -> Vec<Mat> {
    match try_group_all_to_all(comm, members, outgoing) {
        Ok(v) => v,
        Err(e) => comm.escalate(e),
    }
}

/// Fallible [`group_all_to_all`]. Each call is one `a2a` round in the
/// trace; a failure mid-exchange settles the span before propagating.
pub(crate) fn try_group_all_to_all(
    comm: &mut Communicator,
    members: &[usize],
    outgoing: Vec<Mat>,
) -> Result<Vec<Mat>, CommError> {
    let depth = comm.span_depth();
    comm.span_begin(SpanKind::AttnRound, "a2a");
    // Staging for the exchange: the outgoing blocks plus the equal-sized
    // incoming set, live for the duration of the a2a, billed at the wire
    // dtype. One hook covers Ulysses and USP.
    let out_elems: usize = outgoing.iter().map(Mat::len).sum();
    let staging = 2 * comm.mem_wire_bytes(out_elems);
    let mem = comm.mem_alloc("a2a_staging", MemCategory::CommBuffers, staging);
    let res = a2a_inner(comm, members, outgoing);
    comm.mem_free(mem);
    comm.span_unwind(depth);
    res
}

fn a2a_inner(
    comm: &mut Communicator,
    members: &[usize],
    outgoing: Vec<Mat>,
) -> Result<Vec<Mat>, CommError> {
    assert_eq!(outgoing.len(), members.len(), "group_all_to_all: size");
    let pos = members
        .iter()
        .position(|&m| m == comm.rank())
        .expect("group_all_to_all: caller not in group");
    let len = members.len();
    let mut incoming: Vec<Option<Mat>> = vec![None; len];
    let mut keep = None;
    for (p, block) in outgoing.into_iter().enumerate() {
        if p == pos {
            keep = Some(block);
        } else {
            comm.try_send_mat(members[p], &block)?;
        }
    }
    incoming[pos] = keep;
    for off in 1..len {
        let sp = (pos + len - off) % len;
        incoming[sp] = Some(comm.try_recv_mat(members[sp])?);
    }
    Ok(incoming.into_iter().map(|m| m.unwrap()).collect())
}

/// Bundle `heads[h0..h1]` column-wise into one matrix.
fn bundle_heads(heads: &[Mat], h0: usize, h1: usize) -> Mat {
    Mat::hstack(&heads[h0..h1])
}

/// Split a bundle of `n_heads` equal column groups back into heads.
fn unbundle_heads(bundle: &Mat, n_heads: usize) -> Vec<Mat> {
    let dh = bundle.cols() / n_heads;
    (0..n_heads)
        .map(|h| bundle.slice_cols(h * dh, (h + 1) * dh))
        .collect()
}

/// State saved by the forward for the backward pass: the full-sequence
/// tensors of this rank's owned heads.
pub struct UlyssesSaved {
    q: Vec<Mat>,
    k: Vec<Mat>,
    v: Vec<Mat>,
    o: Vec<Mat>,
    lse: Vec<Vec<f32>>,
    heads_per_rank: usize,
    /// Accountant handle for the stash: opened when the forward saves this
    /// state, closed when the backward consumes it.
    mem: Option<MemId>,
}

/// Bill the full-sequence saved state (Q, K, V, O as f32 plus Lse) as one
/// checkpoint-stash entry spanning forward → backward.
pub(crate) fn stash_entry(
    comm: &mut Communicator,
    name: &str,
    q: &[Mat],
    k: &[Mat],
    v: &[Mat],
    o: &[Mat],
    lse: &[Vec<f32>],
) -> Option<MemId> {
    let mats: usize = q.iter().chain(k).chain(v).chain(o).map(Mat::nbytes).sum();
    let vecs: usize = lse.iter().map(|l| 4 * l.len()).sum();
    comm.mem_alloc(name, MemCategory::CkptStash, (mats + vecs) as u64)
}

/// Ulysses forward. `member_idx[p]` lists the global token indices of member
/// `p`'s local rows (contiguous chunks for pure Ulysses; arbitrary slices
/// when embedded in USP). Returns the local per-head outputs plus the saved
/// state for [`ulysses_backward`].
#[allow(clippy::too_many_arguments)]
pub fn ulysses_forward(
    comm: &mut Communicator,
    members: &[usize],
    member_idx: &[Vec<usize>],
    q_heads: &[Mat],
    k_heads: &[Mat],
    v_heads: &[Mat],
    scale: f32,
    mask: &AttnMask,
    cost: &CostModel,
) -> Result<(Vec<Mat>, UlyssesSaved), UlyssesError> {
    match try_ulysses_forward(
        comm, members, member_idx, q_heads, k_heads, v_heads, scale, mask, cost,
    ) {
        Ok(out) => Ok(out),
        Err(DattnError::Infeasible(e)) => Err(e),
        Err(DattnError::Comm(e)) => escalate_attn(comm, e),
    }
}

/// Fallible [`ulysses_forward`]: communication failures carry
/// `(Phase::Forward, k)` where `k` is the all-to-all index (0 = Q, 1 = K,
/// 2 = V, 3 = output).
#[allow(clippy::too_many_arguments)]
pub fn try_ulysses_forward(
    comm: &mut Communicator,
    members: &[usize],
    member_idx: &[Vec<usize>],
    q_heads: &[Mat],
    k_heads: &[Mat],
    v_heads: &[Mat],
    scale: f32,
    mask: &AttnMask,
    cost: &CostModel,
) -> Result<(Vec<Mat>, UlyssesSaved), DattnError> {
    let group = members.len();
    let heads = q_heads.len();
    if !heads.is_multiple_of(group) {
        return Err(DattnError::Infeasible(UlyssesError::HeadsNotDivisible {
            heads,
            group,
        }));
    }
    let hpr = heads / group;
    let pos = members
        .iter()
        .position(|&m| m == comm.rank())
        .expect("ulysses_forward: caller not in group");
    let full_idx: Vec<usize> = member_idx.iter().flatten().copied().collect();
    let dh = q_heads[0].cols();

    // Sequence-sharded → head-sharded: one all-to-all per tensor.
    let redistribute = |comm: &mut Communicator,
                        heads_in: &[Mat],
                        round: usize|
     -> Result<Vec<Mat>, AttnFailure> {
        let outgoing: Vec<Mat> = (0..group)
            .map(|p| bundle_heads(heads_in, p * hpr, (p + 1) * hpr))
            .collect();
        let incoming = try_group_all_to_all(comm, members, outgoing)
            .map_err(AttnFailure::at(Phase::Forward, round))?;
        let stacked = Mat::vstack(&incoming);
        Ok(unbundle_heads(&stacked, hpr))
    };
    let q_full = redistribute(comm, q_heads, 0)?;
    let k_full = redistribute(comm, k_heads, 1)?;
    let v_full = redistribute(comm, v_heads, 2)?;

    // Local attention over the full sequence for our heads.
    let mut o_full = Vec::with_capacity(hpr);
    let mut lse = Vec::with_capacity(hpr);
    for h in 0..hpr {
        let out = flash_forward(
            &q_full[h], &k_full[h], &v_full[h], scale, mask, &full_idx, &full_idx,
        );
        comm.advance_compute(cost.attn_fwd_secs(out.work.pairs, dh));
        o_full.push(out.o);
        lse.push(out.lse);
    }

    // Head-sharded output → sequence-sharded: reverse all-to-all.
    let row_of = |p: usize| -> (usize, usize) {
        let start: usize = member_idx[..p].iter().map(|v| v.len()).sum();
        (start, start + member_idx[p].len())
    };
    let outgoing: Vec<Mat> = (0..group)
        .map(|p| {
            let (r0, r1) = row_of(p);
            let slices: Vec<Mat> = o_full.iter().map(|o| o.slice_rows(r0, r1)).collect();
            Mat::hstack(&slices)
        })
        .collect();
    let incoming = try_group_all_to_all(comm, members, outgoing)
        .map_err(AttnFailure::at(Phase::Forward, 3))?;
    let mut o_heads = Vec::with_capacity(heads);
    for (s, bundle) in incoming.iter().enumerate() {
        debug_assert_eq!(bundle.rows(), member_idx[pos].len());
        o_heads.extend(unbundle_heads(bundle, hpr));
        let _ = s;
    }
    let mem = stash_entry(
        comm,
        "ulysses_saved",
        &q_full,
        &k_full,
        &v_full,
        &o_full,
        &lse,
    );
    Ok((
        o_heads,
        UlyssesSaved {
            q: q_full,
            k: k_full,
            v: v_full,
            o: o_full,
            lse,
            heads_per_rank: hpr,
            mem,
        },
    ))
}

/// Rebuild the backward state from sequence-sharded tensors (used when a
/// gradient-checkpointing strategy discarded the forward's saved state but
/// kept — or recomputed — the attention outputs). Costs the same
/// all-to-alls as a forward, but no attention compute.
#[allow(clippy::too_many_arguments)]
pub fn rebuild_saved(
    comm: &mut Communicator,
    members: &[usize],
    _member_idx: &[Vec<usize>],
    q_heads: &[Mat],
    k_heads: &[Mat],
    v_heads: &[Mat],
    o_heads: &[Mat],
    lse_heads: &[Vec<f32>],
) -> Result<UlyssesSaved, UlyssesError> {
    let group = members.len();
    let heads = q_heads.len();
    if !heads.is_multiple_of(group) {
        return Err(UlyssesError::HeadsNotDivisible { heads, group });
    }
    let hpr = heads / group;
    let redistribute = |comm: &mut Communicator, hs: &[Mat]| -> Vec<Mat> {
        let outgoing: Vec<Mat> = (0..group)
            .map(|p| bundle_heads(hs, p * hpr, (p + 1) * hpr))
            .collect();
        let incoming = group_all_to_all(comm, members, outgoing);
        unbundle_heads(&Mat::vstack(&incoming), hpr)
    };
    let q = redistribute(comm, q_heads);
    let k = redistribute(comm, k_heads);
    let v = redistribute(comm, v_heads);
    let o = redistribute(comm, o_heads);
    // Lse columns ride a bundled matrix (one column per head).
    let rows = lse_heads[0].len();
    let lse_local = Mat::from_fn(rows, heads, |r, h| lse_heads[h][r]);
    let lse_full = redistribute(
        comm,
        &(0..heads)
            .map(|h| lse_local.slice_cols(h, h + 1))
            .collect::<Vec<_>>(),
    );
    let lse: Vec<Vec<f32>> = lse_full.iter().map(|m| m.as_slice().to_vec()).collect();
    let mem = stash_entry(comm, "ulysses_saved", &q, &k, &v, &o, &lse);
    Ok(UlyssesSaved {
        q,
        k,
        v,
        o,
        lse,
        heads_per_rank: hpr,
        mem,
    })
}

/// Per-head `(∇Q, ∇K, ∇V)` triple returned by the backward passes.
pub type HeadGrads = (Vec<Mat>, Vec<Mat>, Vec<Mat>);

/// Ulysses backward: all-to-all of `∇O`, local blocked backward per owned
/// head, all-to-all of `(∇Q, ∇K, ∇V)` back to the sequence partition.
#[allow(clippy::too_many_arguments)]
pub fn ulysses_backward(
    comm: &mut Communicator,
    members: &[usize],
    member_idx: &[Vec<usize>],
    saved: &UlyssesSaved,
    grad_o_heads: &[Mat],
    scale: f32,
    mask: &AttnMask,
    cost: &CostModel,
) -> Result<HeadGrads, UlyssesError> {
    match try_ulysses_backward(
        comm,
        members,
        member_idx,
        saved,
        grad_o_heads,
        scale,
        mask,
        cost,
    ) {
        Ok(out) => Ok(out),
        Err(DattnError::Infeasible(e)) => Err(e),
        Err(DattnError::Comm(e)) => escalate_attn(comm, e),
    }
}

/// Fallible [`ulysses_backward`]: communication failures carry
/// `(Phase::Backward, k)` where `k` is the all-to-all index (0 = ∇O,
/// 1 = ∇Q, 2 = ∇K, 3 = ∇V).
#[allow(clippy::too_many_arguments)]
pub fn try_ulysses_backward(
    comm: &mut Communicator,
    members: &[usize],
    member_idx: &[Vec<usize>],
    saved: &UlyssesSaved,
    grad_o_heads: &[Mat],
    scale: f32,
    mask: &AttnMask,
    cost: &CostModel,
) -> Result<HeadGrads, DattnError> {
    let group = members.len();
    let heads = grad_o_heads.len();
    if !heads.is_multiple_of(group) {
        return Err(DattnError::Infeasible(UlyssesError::HeadsNotDivisible {
            heads,
            group,
        }));
    }
    let hpr = saved.heads_per_rank;
    let full_idx: Vec<usize> = member_idx.iter().flatten().copied().collect();
    let dh = saved.q[0].cols();
    // The full-sequence (∇Q, ∇K, ∇V) of this rank's owned heads, live from
    // the head loop until the scatters return them to the sequence
    // partition.
    let grads_bytes: usize = 3 * saved.q.iter().map(Mat::nbytes).sum::<usize>();
    let mem_grads = comm.mem_alloc(
        "ulysses_grads",
        MemCategory::Activations,
        grads_bytes as u64,
    );

    let outgoing: Vec<Mat> = (0..group)
        .map(|p| bundle_heads(grad_o_heads, p * hpr, (p + 1) * hpr))
        .collect();
    let incoming = try_group_all_to_all(comm, members, outgoing)
        .map_err(AttnFailure::at(Phase::Backward, 0))?;
    let do_full = unbundle_heads(&Mat::vstack(&incoming), hpr);

    let mut dq_full = Vec::with_capacity(hpr);
    let mut dk_full = Vec::with_capacity(hpr);
    let mut dv_full = Vec::with_capacity(hpr);
    for (h, do_h) in do_full.iter().enumerate().take(hpr) {
        let (dq, dk, dv, w) = flash_backward(
            &saved.q[h],
            &saved.k[h],
            &saved.v[h],
            &saved.o[h],
            do_h,
            &saved.lse[h],
            scale,
            mask,
            &full_idx,
            &full_idx,
        );
        comm.advance_compute(cost.attn_bwd_secs(w.pairs, dh));
        dq_full.push(dq);
        dk_full.push(dk);
        dv_full.push(dv);
    }

    let row_of = |p: usize| -> (usize, usize) {
        let start: usize = member_idx[..p].iter().map(|v| v.len()).sum();
        (start, start + member_idx[p].len())
    };
    let scatter =
        |comm: &mut Communicator, grads: &[Mat], round: usize| -> Result<Vec<Mat>, AttnFailure> {
            let outgoing: Vec<Mat> = (0..group)
                .map(|p| {
                    let (r0, r1) = row_of(p);
                    let slices: Vec<Mat> = grads.iter().map(|g| g.slice_rows(r0, r1)).collect();
                    Mat::hstack(&slices)
                })
                .collect();
            let incoming = try_group_all_to_all(comm, members, outgoing)
                .map_err(AttnFailure::at(Phase::Backward, round))?;
            Ok(incoming
                .iter()
                .flat_map(|bundle| unbundle_heads(bundle, hpr))
                .collect())
        };
    let dq = scatter(comm, &dq_full, 1)?;
    let dk = scatter(comm, &dk_full, 2)?;
    let dv = scatter(comm, &dv_full, 3)?;
    comm.mem_free(mem_grads);
    comm.mem_free(saved.mem);
    Ok((dq, dk, dv))
}
