//! Elastic ring attention: when a rank dies mid-ring, the survivors agree
//! to evict it, re-partition the sequence over the shrunken ring —
//! recovering the dead rank's tokens from its checkpoint shard — and re-run
//! the step, producing output **bit-identical** to a run that started with
//! the smaller world.
//!
//! The full re-run (rather than patching only the affected rounds) is what
//! makes bit-identity possible: re-partitioning changes every survivor's
//! `Q` ownership, so the online-softmax merge order of a patched run could
//! never match a fresh small-world run. Because the kernels and the virtual
//! clock are deterministic, re-running on identically assembled shards is
//! exactly a fresh run.
//!
//! Failure detection, eviction agreement and the stale-message drain
//! barrier come from `burst_comm::membership`; this module adds the
//! attention-specific pieces: suspect extraction from [`AttnFailure`],
//! shard re-assembly from per-rank checkpoint data, and the re-run loop.

use crate::cost::CostModel;
use crate::double_ring::{
    try_double_ring_backward_alg2_on, try_double_ring_forward_on, DoubleRingSpec,
};
use crate::layout::Layout;
use crate::ring::{
    try_burst_backward, try_ring_forward, AttnFailure, AttnShard, BackwardInputs, OverlapMode, Ring,
};
use burst_comm::{
    agree_on_eviction, send_abort, CommError, Communicator, MemCategory, MemId, Membership,
    RetryPolicy, SpanKind,
};
use burst_kernels::AttnMask;
use burst_tensor::Mat;
use std::collections::HashMap;

/// A rank's original `(Q, K, V, ∇O)` shard, as a checkpoint loader returns
/// it (rows in that rank's original layout order).
pub type ShardData = (Mat, Mat, Mat, Mat);

/// Result of an elastic attention step on one survivor.
#[derive(Debug, Clone)]
pub struct ElasticAttnOut {
    pub o: Mat,
    pub lse: Vec<f32>,
    pub dq: Mat,
    pub dk: Mat,
    pub dv: Mat,
    /// Global token indices this rank owns after any re-partitioning.
    pub idx: Vec<usize>,
    /// Every rank evicted over the course of the call.
    pub evicted: Vec<usize>,
    /// Final membership epoch.
    pub epoch: u64,
    /// Checkpoint shards loaded to rebuild this rank's partition (IO
    /// accounting: restore-after-shrink must only load what it needs).
    pub shards_loaded: usize,
    /// Ring attempts run (1 = no failure).
    pub attempts: usize,
    /// Attempts where a topology-aware double-ring was requested but the
    /// alive set was ragged (no valid inner/outer split), so the flat ring
    /// ran instead.
    pub flat_fallbacks: usize,
}

/// Options for [`try_elastic_attention_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ElasticOpts {
    /// Run the topology-aware double-ring schedules (forward + Algorithm 2
    /// backward) whenever the alive set preserves node locality
    /// ([`DoubleRingSpec::from_members`]); ragged alive sets fall back to
    /// the flat ring for that attempt (counted in
    /// [`ElasticAttnOut::flat_fallbacks`]).
    pub double_ring: bool,
    /// This rank's local `Q/K/V/∇O` buffers are stale (a freshly re-admitted
    /// joiner warm-starting from checkpoint): force a partition rebuild even
    /// at full world, sourcing *every* row — including this rank's own —
    /// from `load_shard`.
    pub warm_start: bool,
    /// Mask-aware round skipping on every schedule the elastic loop runs
    /// (flat ring, burst backward, double-ring): fully-masked rounds send
    /// nothing, compute nothing and advance no virtual time, bit-identical
    /// to the dense run. Off by default.
    pub skip_masked_rounds: bool,
}

/// Ranks an attention failure implicates, for the eviction proposal.
fn suspects_of(e: &AttnFailure) -> Vec<usize> {
    match &e.source {
        CommError::PeerLost { src, .. } | CommError::Timeout { src, .. } => vec![*src],
        CommError::Aborted { suspects, .. } => suspects.clone(),
        _ => Vec::new(),
    }
}

/// Assemble this rank's `(Q, K, V, ∇O)` partition for the current alive
/// set: rows it already owns are copied locally, rows owned by other
/// *original* ranks come from `load_shard` (cached across attempts,
/// counted in `loads`). Returns the rebuilt shard and its global indices.
#[allow(clippy::too_many_arguments)]
fn rebuild_partition(
    layout: Layout,
    seq_len: usize,
    orig_world: usize,
    me: usize,
    ring_size: usize,
    pos: usize,
    local: &ShardData,
    use_local: bool,
    cache: &mut HashMap<usize, ShardData>,
    loads: &mut usize,
    load_shard: &mut dyn FnMut(usize) -> ShardData,
) -> (ShardData, Vec<usize>) {
    let new_idx = layout.indices(seq_len, ring_size, pos);
    // token → (original owner, row within that owner's shard).
    let mut home = vec![(usize::MAX, usize::MAX); seq_len];
    for r in 0..orig_world {
        for (row, t) in layout
            .indices(seq_len, orig_world, r)
            .into_iter()
            .enumerate()
        {
            home[t] = (r, row);
        }
    }
    let cols = [
        local.0.cols(),
        local.1.cols(),
        local.2.cols(),
        local.3.cols(),
    ];
    let mut out = (
        Mat::zeros(new_idx.len(), cols[0]),
        Mat::zeros(new_idx.len(), cols[1]),
        Mat::zeros(new_idx.len(), cols[2]),
        Mat::zeros(new_idx.len(), cols[3]),
    );
    for (row_out, &t) in new_idx.iter().enumerate() {
        let (owner, row_in) = home[t];
        let src: &ShardData = if owner == me && use_local {
            local
        } else {
            cache.entry(owner).or_insert_with(|| {
                *loads += 1;
                load_shard(owner)
            })
        };
        let copy = |dst: &mut Mat, s: &Mat, c: usize| {
            dst.as_mut_slice()[row_out * c..(row_out + 1) * c]
                .copy_from_slice(&s.as_slice()[row_in * c..(row_in + 1) * c]);
        };
        copy(&mut out.0, &src.0, cols[0]);
        copy(&mut out.1, &src.1, cols[1]);
        copy(&mut out.2, &src.2, cols[2]);
        copy(&mut out.3, &src.3, cols[3]);
    }
    (out, new_idx)
}

/// One elastic forward+backward (BurstAttention Algorithm 2, fine overlap)
/// on this rank's shard.
///
/// `q/k/v/grad_o` are the rank's shard under `layout` over the *original*
/// world; `load_shard(r)` returns original rank `r`'s shard from its
/// checkpoint (only called for rows this rank does not hold locally, and
/// at most once per `r`). On a mid-ring failure the survivors evict the
/// dead rank(s), re-partition over the shrunken ring and re-run; the
/// output is bit-identical to a run that started with the smaller world.
///
/// A rank observing its own scheduled crash returns the failure without
/// joining the agreement — the dead stay silent.
#[allow(clippy::too_many_arguments)]
pub fn try_elastic_attention(
    comm: &mut Communicator,
    m: &mut Membership,
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    scale: f32,
    mask: &AttnMask,
    layout: Layout,
    seq_len: usize,
    cost: &CostModel,
    load_shard: &mut dyn FnMut(usize) -> ShardData,
    policy: &RetryPolicy,
) -> Result<ElasticAttnOut, AttnFailure> {
    try_elastic_attention_opts(
        comm,
        m,
        q,
        k,
        v,
        grad_o,
        scale,
        mask,
        layout,
        seq_len,
        cost,
        load_shard,
        policy,
        ElasticOpts::default(),
    )
}

/// [`try_elastic_attention`] with explicit [`ElasticOpts`]: topology-aware
/// double-ring scheduling and/or a warm-starting joiner whose shard must be
/// reassembled entirely from checkpoint data.
#[allow(clippy::too_many_arguments)]
pub fn try_elastic_attention_opts(
    comm: &mut Communicator,
    m: &mut Membership,
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    scale: f32,
    mask: &AttnMask,
    layout: Layout,
    seq_len: usize,
    cost: &CostModel,
    load_shard: &mut dyn FnMut(usize) -> ShardData,
    policy: &RetryPolicy,
    opts: ElasticOpts,
) -> Result<ElasticAttnOut, AttnFailure> {
    let me = comm.rank();
    let orig_world = comm.world_size();
    assert!(
        m.is_alive(me),
        "rank {me}: elastic attention on an evicted rank"
    );
    let local: ShardData = (q.clone(), k.clone(), v.clone(), grad_o.clone());
    // Accountant entries that live across attempts: the cloned local shard
    // (checkpoint-shaped recovery data) plus every peer shard loaded into
    // the cache. Closed on every surviving exit path; a rank that dies
    // mid-call leaves them open, and the ledger's force-close at crash time
    // keeps its books balanced.
    let mut mem_open: Vec<Option<MemId>> = vec![comm.mem_alloc(
        "elastic_local_stash",
        MemCategory::CkptStash,
        (local.0.nbytes() + local.1.nbytes() + local.2.nbytes() + local.3.nbytes()) as u64,
    )];
    let my_orig_idx = layout.indices(seq_len, orig_world, me);
    let mut cache: HashMap<usize, ShardData> = HashMap::new();
    let mut loads = 0usize;
    let mut evicted_all: Vec<usize> = Vec::new();
    let mut attempts = 0usize;
    let mut flat_fallbacks = 0usize;
    let mut last_err: Option<AttnFailure> = None;
    while attempts <= orig_world {
        attempts += 1;
        let members = m.alive_ranks();
        let pos = m.pos_of(me).expect("alive rank has a ring position");
        // First attempt on the full world runs straight off the caller's
        // borrowed shard; any shrunken ring — or a warm-starting joiner
        // whose local buffers are stale — re-assembles its partition.
        let cached_before: Vec<usize> = cache.keys().copied().collect();
        let (shard_data, idx) = if members.len() == orig_world && !opts.warm_start {
            (None, my_orig_idx.clone())
        } else {
            let (data, idx) = rebuild_partition(
                layout,
                seq_len,
                orig_world,
                me,
                members.len(),
                pos,
                &local,
                !opts.warm_start,
                &mut cache,
                &mut loads,
                load_shard,
            );
            (Some(data), idx)
        };
        // Bill this attempt's cache growth (shards newly loaded from
        // checkpoint; they stay resident for later attempts) and the
        // rebuilt partition itself (dropped when the attempt ends).
        let fresh_bytes: usize = cache
            .iter()
            .filter(|(owner, _)| !cached_before.contains(owner))
            .map(|(_, s)| s.0.nbytes() + s.1.nbytes() + s.2.nbytes() + s.3.nbytes())
            .sum();
        if fresh_bytes > 0 {
            mem_open.push(comm.mem_alloc(
                "elastic_shard_cache",
                MemCategory::CkptStash,
                fresh_bytes as u64,
            ));
        }
        let mem_rebuilt = shard_data.as_ref().map(|s| {
            comm.mem_alloc(
                "elastic_rebuilt_shard",
                MemCategory::RingShards,
                (s.0.nbytes() + s.1.nbytes() + s.2.nbytes() + s.3.nbytes()) as u64,
            )
        });
        let (sq, sk, sv, sgo): (&Mat, &Mat, &Mat, &Mat) = match &shard_data {
            Some((a, b, c, d)) => (a, b, c, d),
            None => (q, k, v, grad_o),
        };
        let shard = AttnShard {
            q: sq,
            k: sk,
            v: sv,
            scale,
            mask,
            layout,
            seq_len,
            cost: *cost,
            max_token: None,
            skip: opts.skip_masked_rounds,
        };
        let ring = Ring {
            members: members.clone(),
            pos,
        };
        // Attempts past the first re-run the step on the shrunken ring:
        // mark them as replay time so the trace separates productive work
        // from recovery.
        let span_depth = comm.span_depth();
        if attempts > 1 {
            comm.span_begin(SpanKind::Replay, "replay_attempt");
        }
        // Schedule selection: the topology-aware double-ring when requested
        // and the alive set preserves node locality, the flat ring
        // otherwise. Slot order == ascending member order == ring position,
        // so both schedules consume the identical partition.
        let dr_spec = if opts.double_ring {
            DoubleRingSpec::from_members(comm.topology(), &members)
        } else {
            None
        };
        if opts.double_ring && dr_spec.is_none() {
            flat_fallbacks += 1;
        }
        let result = match &dr_spec {
            Some(spec) => try_double_ring_forward_on(comm, &shard, spec).and_then(|fwd| {
                let back = BackwardInputs {
                    o: &fwd.o,
                    lse: &fwd.lse,
                    grad_o: sgo,
                };
                try_double_ring_backward_alg2_on(comm, &shard, &back, spec)
                    .map(|(dq, dk, dv)| (fwd, dq, dk, dv))
            }),
            None => try_ring_forward(comm, &ring, &shard).and_then(|fwd| {
                let back = BackwardInputs {
                    o: &fwd.o,
                    lse: &fwd.lse,
                    grad_o: sgo,
                };
                try_burst_backward(comm, &ring, &shard, &back, OverlapMode::Fine)
                    .map(|(dq, dk, dv)| (fwd, dq, dk, dv))
            }),
        };
        // Settle the span stack: closes the replay span and any round span
        // a failure left open via `?`.
        comm.span_unwind(span_depth);
        comm.mem_free(mem_rebuilt.flatten());
        let my_suspects = match &result {
            Ok(_) => Vec::new(),
            Err(e) => {
                if matches!(e.source, CommError::Crashed { rank, .. } if rank == me) {
                    return Err(result.unwrap_err());
                }
                let s = suspects_of(e);
                send_abort(comm, m, &s);
                s
            }
        };
        // Commit barrier: every survivor agrees before anyone moves on —
        // this also catches a rank that died so late that no data
        // operation failed (the leader's gather sees its channels drop).
        let outcome =
            agree_on_eviction(comm, m, &my_suspects, policy).map_err(AttnFailure::from)?;
        if !m.is_alive(me) {
            // The agreement parked this rank — it sat on the minority side
            // of a split and lost the quorum. Surface it as a self-eviction
            // so the caller parks instead of retrying on a ring it left.
            for id in mem_open.drain(..) {
                comm.mem_free(id);
            }
            return Err(AttnFailure::from(CommError::Evicted {
                rank: me,
                epoch: outcome.epoch,
                evicted: outcome.evicted,
                at: comm.time(),
            }));
        }
        if outcome.evicted.is_empty() {
            for id in mem_open.drain(..) {
                comm.mem_free(id);
            }
            match result {
                Ok((fwd, dq, dk, dv)) => {
                    return Ok(ElasticAttnOut {
                        o: fwd.o,
                        lse: fwd.lse,
                        dq,
                        dk,
                        dv,
                        idx,
                        evicted: evicted_all,
                        epoch: outcome.epoch,
                        shards_loaded: loads,
                        attempts,
                        flat_fallbacks,
                    });
                }
                // Nothing evicted yet the ring failed: a non-membership
                // fault (corruption, shape) — not recoverable by shrinking.
                Err(e) => return Err(e),
            }
        }
        evicted_all.extend(outcome.evicted);
        last_err = result.err();
    }
    for id in mem_open.drain(..) {
        comm.mem_free(id);
    }
    Err(last_err.unwrap_or_else(|| {
        AttnFailure::from(CommError::Panicked {
            rank: me,
            detail: "elastic attention did not converge within the eviction budget".to_string(),
        })
    }))
}
