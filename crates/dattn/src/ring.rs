//! Flat global-ring attention: the shared forward pass, RingAttention's
//! backward (Algorithm 1) and BurstAttention's backward (Algorithm 2).
//!
//! ## Communication accounting (per rank, `N` tokens, `G` ranks, head dim `d`)
//!
//! * forward: `(G−1)` ring hops of `(K_j, V_j)` → `2Nd·(G−1)/G ≈ 2Nd`;
//! * Algorithm 1 backward: `G` hops of `(K_j, V_j, ∇K_j, ∇V_j)` → exactly
//!   `4Nd` (the read-only `K, V` ride the ring all the way home — the waste
//!   BurstAttention eliminates);
//! * Algorithm 2 backward: `(G−1)` hops of the read-only bundle
//!   `(Q_j, ∇O_j, Lse_j, D_j)` plus `G` hops of `∇Q_j` →
//!   `(2Nd + 2N)(G−1)/G + Nd ≈ 3Nd + 2N`, ~25 % less than Algorithm 1.
//!
//! These counts are asserted exactly from the simulator's byte counters in
//! the crate tests.
//!
//! ## Overlap
//!
//! With [`OverlapMode::Fine`], read-only payloads are posted *before* the
//! local compute of each step (activation overlapping, Fig. 5 top) and
//! gradients are forwarded right after the compute that produced them, one
//! round behind the read-only stream (the warm-up-round trick, Fig. 5
//! bottom) — so both transfer streams hide behind compute in virtual time.
//! [`OverlapMode::None`] sends everything after compute and receives before
//! the next compute, serialising communication; the delta between the two
//! modes is the paper's "fine-grained overlap" ablation row.

use crate::cost::CostModel;
use crate::layout::Layout;
use crate::skip::SkipPlan;
use burst_comm::{CommError, Communicator, MemCategory, SpanKind};
use burst_kernels::{
    attn_tile_backward, attn_tile_backward_acc, flash_forward_acc, AttnMask, KernelWork,
};
use burst_tensor::{Mat, Scratch};

/// Which half of the attention computation a failure struck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Forward,
    Backward,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Forward => write!(f, "forward"),
            Phase::Backward => write!(f, "backward"),
        }
    }
}

/// A communication failure inside a distributed attention loop, annotated
/// with *where* it struck: the phase (fwd/bwd) and the ring round (for
/// Ulysses/USP, the all-to-all index). The underlying [`CommError`] names
/// the rank and peer, so together a mid-ring death reports which rank,
/// which round, and which phase died.
#[derive(Debug, Clone, PartialEq)]
pub struct AttnFailure {
    /// `(phase, round)` when the failure struck inside an attention loop;
    /// `None` when a raw [`CommError`] was promoted outside one.
    pub context: Option<(Phase, usize)>,
    pub source: CommError,
}

impl AttnFailure {
    /// A `map_err` adaptor pinning the failure to `(phase, round)`.
    pub fn at(phase: Phase, round: usize) -> impl Fn(CommError) -> AttnFailure {
        move |source| AttnFailure {
            context: Some((phase, round)),
            source,
        }
    }

    pub fn phase(&self) -> Option<Phase> {
        self.context.map(|(p, _)| p)
    }

    pub fn round(&self) -> Option<usize> {
        self.context.map(|(_, r)| r)
    }

    /// The rank on which the failure was observed.
    pub fn rank(&self) -> usize {
        self.source.rank()
    }
}

impl From<CommError> for AttnFailure {
    fn from(source: CommError) -> Self {
        AttnFailure {
            context: None,
            source,
        }
    }
}

impl std::fmt::Display for AttnFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.context {
            Some((phase, round)) => write!(
                f,
                "distributed attention {phase} failed at ring round {round}: {}",
                self.source
            ),
            None => write!(f, "distributed attention failed: {}", self.source),
        }
    }
}

impl std::error::Error for AttnFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Escalate an attention failure through the infallible API: under a fault
/// plan the panic payload is the underlying [`CommError`] (recoverable by
/// `World::run_faulty`); otherwise a readable message with phase/round.
pub(crate) fn escalate_attn(comm: &Communicator, e: AttnFailure) -> ! {
    if comm.has_faults() {
        std::panic::panic_any(e.source)
    } else {
        panic!("{e}")
    }
}

/// This rank's slice of the attention problem plus the global parameters.
pub struct AttnShard<'a> {
    pub q: &'a Mat,
    pub k: &'a Mat,
    pub v: &'a Mat,
    pub scale: f32,
    pub mask: &'a AttnMask,
    pub layout: Layout,
    /// Global sequence length `N`.
    pub seq_len: usize,
    pub cost: CostModel,
    /// Restrict the attention problem to global tokens `< max_token`
    /// (every rank's `Q/K/V` must hold exactly its owned tokens below the
    /// cutoff, in layout order). Used by sequence-level selective
    /// checkpointing to recompute only the front segment. `None` = full
    /// sequence.
    pub max_token: Option<usize>,
    /// Mask-aware round skipping: classify every (q-shard × kv-shard) tile
    /// up front and elide fully-masked rounds (no compute, no wire bytes,
    /// no virtual time). Off by default — the dense path reproduces the
    /// paper's headline `2Nd`/`4Nd`/`3Nd + 2N` traffic exactly; with skip
    /// on the counters shrink to the masked census (and Algorithm 1's
    /// read-only K/V homecoming hop disappears even under a full mask).
    pub skip: bool,
}

impl AttnShard<'_> {
    /// The pass's [`SkipPlan`]: tile liveness from the per-position index
    /// tables when skipping is enabled, the gate-everything-on dense plan
    /// otherwise.
    pub(crate) fn skip_plan(&self, idx: &[Vec<usize>]) -> SkipPlan {
        if self.skip {
            SkipPlan::from_indices(self.mask, idx)
        } else {
            SkipPlan::dense(idx.len())
        }
    }
    /// Global indices owned by ring position `pos` of a `ring_size` ring.
    pub fn idx_at(&self, ring_size: usize, pos: usize) -> Vec<usize> {
        let idx = self.layout.indices(self.seq_len, ring_size, pos);
        match self.max_token {
            Some(cut) => idx.into_iter().filter(|&i| i < cut).collect(),
            None => idx,
        }
    }

    /// Global indices owned by `rank` on the global ring.
    pub fn idx_of(&self, comm: &Communicator, rank: usize) -> Vec<usize> {
        self.idx_at(comm.world_size(), rank)
    }

    pub fn my_idx(&self, comm: &Communicator) -> Vec<usize> {
        self.idx_of(comm, comm.rank())
    }

    fn head_dim(&self) -> usize {
        self.q.cols()
    }
}

/// Extra inputs for the backward pass.
pub struct BackwardInputs<'a> {
    pub o: &'a Mat,
    pub lse: &'a [f32],
    pub grad_o: &'a Mat,
}

/// Per-rank result of a distributed attention forward.
#[derive(Debug, Clone)]
pub struct DistAttnOut {
    pub o: Mat,
    pub lse: Vec<f32>,
    pub work: KernelWork,
}

/// What a rank holds of a circulating (K, V) pair mid-ring. `Absent` only
/// arises with skipping on, when the upstream gate elided the transfer;
/// the gate monotonicity guarantees an absent shard is never read.
pub(crate) enum KvHold {
    /// Round 0: the local shard, by reference.
    Local,
    /// A received partition (owned ring buffers).
    Owned(Mat, Mat),
    /// Gated off upstream — no consumer here or downstream.
    Absent,
}

impl KvHold {
    pub(crate) fn view<'a>(&'a self, k: &'a Mat, v: &'a Mat) -> (&'a Mat, &'a Mat) {
        match self {
            KvHold::Local => (k, v),
            KvHold::Owned(ok, ov) => (ok, ov),
            KvHold::Absent => unreachable!("skip gates never read an absent shard"),
        }
    }
}

/// Communication/computation overlap discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapMode {
    /// Communicate strictly between compute steps (no hiding).
    None,
    /// Fine-grained overlap: read-only data posted before compute,
    /// gradients one round behind (paper Fig. 5).
    Fine,
}

/// An ordered ring of ranks. [`Ring::global`] spans the whole world;
/// sub-rings (e.g. the context-parallel groups of USP) list their members
/// explicitly.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Global rank of each member, in ring order.
    pub members: Vec<usize>,
    /// This rank's position within `members`.
    pub pos: usize,
}

impl Ring {
    /// The flat ring over all ranks.
    pub fn global(comm: &Communicator) -> Ring {
        Ring {
            members: (0..comm.world_size()).collect(),
            pos: comm.rank(),
        }
    }

    /// A sub-ring; panics if `comm`'s rank is not a member.
    #[track_caller]
    pub fn subgroup(comm: &Communicator, members: Vec<usize>) -> Ring {
        let pos = members
            .iter()
            .position(|&m| m == comm.rank())
            .expect("Ring::subgroup: calling rank not in member list");
        Ring { members, pos }
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global rank of the next member.
    #[inline]
    pub fn next(&self) -> usize {
        self.members[(self.pos + 1) % self.members.len()]
    }

    /// Global rank of the previous member.
    #[inline]
    pub fn prev(&self) -> usize {
        self.members[(self.pos + self.members.len() - 1) % self.members.len()]
    }
}

/// Forward pass on the flat global ring (shared by RingAttention and
/// BurstAttention): `K, V` partitions circulate, each rank folds every
/// partition into its online-softmax state.
///
/// Steady-state rounds are allocation-free in the tile-compute path: the
/// first round reads the local shard by reference (no clone), index tables
/// for every ring position are precomputed, and the kernel merges each
/// partition straight into persistent `(O, Lse)` accumulators through one
/// reused [`Scratch`].
pub fn ring_forward(comm: &mut Communicator, ring: &Ring, shard: &AttnShard) -> DistAttnOut {
    match try_ring_forward(comm, ring, shard) {
        Ok(out) => out,
        Err(e) => escalate_attn(comm, e),
    }
}

/// Fallible [`ring_forward`]: a failed send/receive at ring round `k`
/// surfaces as an [`AttnFailure`] carrying `(Phase::Forward, k)`.
pub fn try_ring_forward(
    comm: &mut Communicator,
    ring: &Ring,
    shard: &AttnShard,
) -> Result<DistAttnOut, AttnFailure> {
    let g = ring.size();
    let d = shard.head_dim();
    let qi = shard.idx_at(g, ring.pos);
    let kidx_all: Vec<Vec<usize>> = (0..g).map(|p| shard.idx_at(g, p)).collect();
    let plan = shard.skip_plan(&kidx_all);
    let mut acc_o = Mat::zeros(shard.q.rows(), shard.v.cols());
    let mut acc_lse = vec![f32::NEG_INFINITY; shard.q.rows()];
    let mut scratch = Scratch::new();
    let mut work = KernelWork::default();
    // Accountant entries for the pass: the persistent (O, Lse) accumulators
    // and — when the ring actually lands a partition here — one
    // steady-state slot for the received (K, V) bundle, billed at the wire
    // dtype. Registered once per pass, so steady-state rounds append
    // nothing to the ledger.
    let mem_acc = comm.mem_alloc(
        "ring_fwd_acc",
        MemCategory::Activations,
        (acc_o.nbytes() + 4 * acc_lse.len()) as u64,
    );
    let kv_wire = comm.mem_wire_bytes(shard.k.len() + shard.v.len());
    let mem_kv = if g > 1 && plan.flat_fwd_recv_any(ring.pos) {
        comm.mem_alloc("ring_fwd_kv", MemCategory::CommBuffers, kv_wire)
    } else {
        None
    };
    let mut held = KvHold::Local;
    for step in 0..g {
        let at = AttnFailure::at(Phase::Forward, step);
        let r = plan.flat_fwd_round(ring.pos, step);
        let k_elems = kidx_all[r.shard_out].len() * shard.k.cols();
        let v_elems = kidx_all[r.shard_out].len() * shard.v.cols();
        if r.idle() {
            // Fully-masked round: no span, no clock, no wire. The sends the
            // dense schedule would have posted are billed to the skip dual.
            comm.note_round_skipped();
            if step < g - 1 {
                comm.note_skipped_mat(k_elems);
                comm.note_skipped_mat(v_elems);
            }
            held = KvHold::Absent;
            continue;
        }
        // A rank that dies mid-round leaves this span open; the trace
        // collector force-closes it at crash time (with a warning).
        comm.span_begin(SpanKind::AttnRound, "fwd_round");
        // Post the shift before computing so the transfer hides under the
        // kernel (double buffering).
        if step < g - 1 {
            if r.send {
                let (cur_k, cur_v) = held.view(shard.k, shard.v);
                comm.try_send_mat(ring.next(), cur_k).map_err(&at)?;
                comm.try_send_mat(ring.next(), cur_v).map_err(&at)?;
            } else {
                comm.note_skipped_mat(k_elems);
                comm.note_skipped_mat(v_elems);
            }
        }
        if r.compute {
            let (cur_k, cur_v) = held.view(shard.k, shard.v);
            let w = flash_forward_acc(
                shard.q,
                cur_k,
                cur_v,
                shard.scale,
                shard.mask,
                &qi,
                &kidx_all[r.shard_out],
                &mut acc_o,
                &mut acc_lse,
                &mut scratch,
            );
            comm.advance_compute(shard.cost.attn_fwd_secs(w.pairs, d));
            work.merge(w);
        }
        if step < g - 1 {
            held = if r.recv {
                KvHold::Owned(
                    comm.try_recv_mat(ring.prev()).map_err(&at)?,
                    comm.try_recv_mat(ring.prev()).map_err(&at)?,
                )
            } else {
                KvHold::Absent
            };
        }
        comm.span_end();
    }
    comm.mem_note_workspace(scratch.resident_bytes());
    comm.mem_free(mem_kv);
    comm.mem_free(mem_acc);
    Ok(DistAttnOut {
        o: acc_o,
        lse: acc_lse,
        work,
    })
}

/// RingAttention backward (Algorithm 1): `(K_j, V_j, ∇K_j, ∇V_j)` circulate
/// for `G` full hops (exactly `4Nd` words per rank); `∇Q_i` accumulates
/// locally. Per Algorithm 1 line 10, `D_i = rowsum(∇O_i ∘ O_i)` is
/// recomputed every round — we charge its (small) cost each round, which is
/// precisely the compute overhead Algorithm 2 removes.
pub fn ring_backward(
    comm: &mut Communicator,
    ring: &Ring,
    shard: &AttnShard,
    back: &BackwardInputs,
    overlap: OverlapMode,
) -> (Mat, Mat, Mat) {
    match try_ring_backward(comm, ring, shard, back, overlap) {
        Ok(out) => out,
        Err(e) => escalate_attn(comm, e),
    }
}

/// Fallible [`ring_backward`]: a failed send/receive at ring round `k`
/// surfaces as an [`AttnFailure`] carrying `(Phase::Backward, k)`.
pub fn try_ring_backward(
    comm: &mut Communicator,
    ring: &Ring,
    shard: &AttnShard,
    back: &BackwardInputs,
    overlap: OverlapMode,
) -> Result<(Mat, Mat, Mat), AttnFailure> {
    let g = ring.size();
    let d = shard.head_dim();
    let qi = shard.idx_at(g, ring.pos);
    let d_vec = back.grad_o.rowsum_hadamard(back.o);
    let d_recompute = shard.cost.gemm_secs(shard.q.rows(), d, 1);
    if g == 1 {
        let (dq, dk, dv, w) = attn_tile_backward(
            shard.q,
            shard.k,
            shard.v,
            back.grad_o,
            back.lse,
            &d_vec,
            shard.scale,
            shard.mask,
            &qi,
            &qi,
        );
        comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d) + d_recompute);
        return Ok((dq, dk, dv));
    }
    let mut grad_q = Mat::zeros(shard.q.rows(), shard.q.cols());
    let kidx_all: Vec<Vec<usize>> = (0..g).map(|p| shard.idx_at(g, p)).collect();
    let plan = shard.skip_plan(&kidx_all);
    // Pass-scoped accountant entries: the local ∇Q accumulator, plus one
    // steady-state slot for Algorithm 1's circulating (K, V, ∇K, ∇V)
    // bundle at the wire dtype — twice the forward's traffic, the waste
    // Algorithm 2 removes. With skipping on, a rank that never holds the
    // read-only half (or never holds gradients) only bills the half it
    // actually buffers.
    let mem_dq = comm.mem_alloc(
        "ring_bwd_dq",
        MemCategory::Activations,
        grad_q.nbytes() as u64,
    );
    let (buf_kv, buf_dkv) = plan.flat_alg1_bufs(ring.pos);
    let halves = buf_kv as usize + buf_dkv as usize;
    let mem_bundle = if halves > 0 {
        let bundle_wire = comm.mem_wire_bytes(halves * (shard.k.len() + shard.v.len()));
        comm.mem_alloc("ring_bwd_kv_grads", MemCategory::CommBuffers, bundle_wire)
    } else {
        None
    };
    // Round 0 reads the local K/V shard by reference; the circulating
    // gradient buffers materialize (at zero) at the first live consumer of
    // each shard and the tile kernel accumulates into them (and into
    // `grad_q`) in place, through one reused scratch — no per-round
    // temporaries on the dense path.
    let mut held = KvHold::Local;
    let mut dkv: Option<(Mat, Mat)> = None;
    let mut scratch = Scratch::new();
    for step in 0..g {
        let at = AttnFailure::at(Phase::Backward, step);
        let r = plan.flat_alg1_round(ring.pos, step);
        let k_elems = kidx_all[r.shard_out].len() * shard.k.cols();
        let v_elems = kidx_all[r.shard_out].len() * shard.v.cols();
        if r.idle() {
            comm.note_round_skipped();
            comm.note_skipped_mat(k_elems);
            comm.note_skipped_mat(v_elems);
            comm.note_skipped_mat(k_elems);
            comm.note_skipped_mat(v_elems);
            held = KvHold::Absent;
            dkv = None;
            continue;
        }
        comm.span_begin(SpanKind::AttnRound, "bwd_round");
        if overlap == OverlapMode::Fine {
            // Activations can depart before the compute that reads them
            // (we own a copy); gradients cannot.
            if r.send_kv {
                let (cur_k, cur_v) = held.view(shard.k, shard.v);
                comm.try_send_mat(ring.next(), cur_k).map_err(&at)?;
                comm.try_send_mat(ring.next(), cur_v).map_err(&at)?;
            } else {
                comm.note_skipped_mat(k_elems);
                comm.note_skipped_mat(v_elems);
            }
        }
        if r.compute {
            if dkv.is_none() {
                // First live consumer after a gated-off stretch: carry the
                // zeros the dense ring would have delivered.
                dkv = Some((
                    Mat::zeros(kidx_all[r.shard_out].len(), shard.k.cols()),
                    Mat::zeros(kidx_all[r.shard_out].len(), shard.v.cols()),
                ));
            }
            let (cur_dk, cur_dv) = dkv.as_mut().expect("just materialized");
            let (cur_k, cur_v) = held.view(shard.k, shard.v);
            let w = attn_tile_backward_acc(
                shard.q,
                cur_k,
                cur_v,
                back.grad_o,
                back.lse,
                &d_vec,
                shard.scale,
                shard.mask,
                &qi,
                &kidx_all[r.shard_out],
                &mut grad_q,
                cur_dk,
                cur_dv,
                &mut scratch,
            );
            comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d) + d_recompute);
        }
        if overlap == OverlapMode::None {
            if r.send_kv {
                let (cur_k, cur_v) = held.view(shard.k, shard.v);
                comm.try_send_mat(ring.next(), cur_k).map_err(&at)?;
                comm.try_send_mat(ring.next(), cur_v).map_err(&at)?;
            } else {
                comm.note_skipped_mat(k_elems);
                comm.note_skipped_mat(v_elems);
            }
        }
        if r.send_dkv {
            let (cur_dk, cur_dv) = dkv.as_ref().expect("dkv gate implies a contribution");
            comm.try_send_mat(ring.next(), cur_dk).map_err(&at)?;
            comm.try_send_mat(ring.next(), cur_dv).map_err(&at)?;
        } else {
            comm.note_skipped_mat(k_elems);
            comm.note_skipped_mat(v_elems);
        }
        held = if r.recv_kv {
            KvHold::Owned(
                comm.try_recv_mat(ring.prev()).map_err(&at)?,
                comm.try_recv_mat(ring.prev()).map_err(&at)?,
            )
        } else {
            KvHold::Absent
        };
        dkv = if r.recv_dkv {
            Some((
                comm.try_recv_mat(ring.prev()).map_err(&at)?,
                comm.try_recv_mat(ring.prev()).map_err(&at)?,
            ))
        } else {
            None
        };
        comm.span_end();
    }
    // After G hops everything is home: the circulating buffers carry the
    // fully reduced gradients of our own K, V (zeros if no q-shard anywhere
    // attends to them — the dense ring would have carried zeros home too).
    let (dk_home, dv_home) = dkv.unwrap_or_else(|| {
        (
            Mat::zeros(shard.k.rows(), shard.k.cols()),
            Mat::zeros(shard.v.rows(), shard.v.cols()),
        )
    });
    comm.mem_note_workspace(scratch.resident_bytes());
    comm.mem_free(mem_bundle);
    comm.mem_free(mem_dq);
    Ok((grad_q, dk_home, dv_home))
}

/// BurstAttention backward (Algorithm 2): `K_i, V_i, ∇K_i, ∇V_i` stay
/// local; the read-only bundle `(Q_j, ∇O_j, Lse_j, D_j)` circulates `G−1`
/// hops and `∇Q_j` circulates `G` hops — `≈ 3Nd + 2N` words per rank.
/// `D_i` is computed once, before the loop (Algorithm 2 line 2).
///
/// With [`OverlapMode::Fine`] the read-only bundle is forwarded *on
/// receipt* (before the local compute) and `∇Q` follows one round behind —
/// the warm-up-round schedule of Fig. 5 that lets gradient communication
/// hide under compute.
pub fn burst_backward(
    comm: &mut Communicator,
    ring: &Ring,
    shard: &AttnShard,
    back: &BackwardInputs,
    overlap: OverlapMode,
) -> (Mat, Mat, Mat) {
    match try_burst_backward(comm, ring, shard, back, overlap) {
        Ok(out) => out,
        Err(e) => escalate_attn(comm, e),
    }
}

/// Fallible [`burst_backward`]: a failed send/receive at ring round `k`
/// surfaces as an [`AttnFailure`] carrying `(Phase::Backward, k)`.
pub fn try_burst_backward(
    comm: &mut Communicator,
    ring: &Ring,
    shard: &AttnShard,
    back: &BackwardInputs,
    overlap: OverlapMode,
) -> Result<(Mat, Mat, Mat), AttnFailure> {
    let g = ring.size();
    let d = shard.head_dim();
    let ki = shard.idx_at(g, ring.pos);
    let qidx_all: Vec<Vec<usize>> = (0..g).map(|p| shard.idx_at(g, p)).collect();
    let d_vec = back.grad_o.rowsum_hadamard(back.o);
    comm.advance_compute(shard.cost.gemm_secs(shard.q.rows(), d, 1));
    let mut grad_k = Mat::zeros(shard.k.rows(), shard.k.cols());
    let mut grad_v = Mat::zeros(shard.v.rows(), shard.v.cols());
    let mut scratch = Scratch::new();

    if g == 1 {
        let (dq, dk, dv, w) = attn_tile_backward(
            shard.q,
            shard.k,
            shard.v,
            back.grad_o,
            back.lse,
            &d_vec,
            shard.scale,
            shard.mask,
            &qidx_all[0],
            &ki,
        );
        comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d));
        return Ok((dq, dk, dv));
    }

    let plan = shard.skip_plan(&qidx_all);
    let (buf_ro, buf_dq_ring, buf_dq_buf) = plan.flat_alg2_bufs(ring.pos);
    // Pass-scoped accountant entries: the local ∇K/∇V accumulators, one
    // steady-state slot for the circulating read-only bundle
    // (Q, ∇O, Lse, D) — matrices at the wire dtype, softmax statistics as
    // f32 — and one slot for the ∇Q partial riding the ring. With skipping
    // on, slots this rank's gates never fill are not billed.
    let mem_dkv = comm.mem_alloc(
        "burst_bwd_dkv",
        MemCategory::Activations,
        (grad_k.nbytes() + grad_v.nbytes()) as u64,
    );
    let ro_wire = comm.mem_wire_bytes(shard.q.len() + back.grad_o.len())
        + 4 * (back.lse.len() + d_vec.len()) as u64;
    let mem_ro = if buf_ro {
        comm.mem_alloc("burst_ro_bundle", MemCategory::CommBuffers, ro_wire)
    } else {
        None
    };
    let dq_wire = comm.mem_wire_bytes(shard.q.len());
    let mem_dq_ring = if buf_dq_ring {
        comm.mem_alloc("burst_dq_ring", MemCategory::CommBuffers, dq_wire)
    } else {
        None
    };

    match overlap {
        OverlapMode::Fine => {
            // Warm-up round: process our own bundle before any communication
            // (Fig. 5 bottom), then stream: forward the read-only bundle the
            // moment it arrives, compute, and send ∇Q one round behind.
            // `dq_buf` is re-zeroed in place each round (capacity reused),
            // and ∇K/∇V accumulate directly into the local outputs — the
            // steady-state tile-compute path allocates nothing.
            let me = ring.pos;
            let next = ring.next();
            let prev = ring.prev();
            let mut dq_buf = Mat::default();
            let mem_dq_buf = if buf_dq_buf {
                comm.mem_alloc(
                    "burst_dq_buf",
                    MemCategory::Activations,
                    shard.q.nbytes() as u64,
                )
            } else {
                None
            };
            let dq_elems = |j: usize| qidx_all[j].len() * shard.q.cols();
            let ro_mat_elems = |j: usize| qidx_all[j].len() * (shard.q.cols() + back.grad_o.cols());
            // Warm-up round: the read-only parts depart before the local
            // compute; ∇Q follows one round behind it.
            let r0 = plan.flat_alg2_round(me, 0);
            if r0.idle() {
                comm.note_round_skipped();
                comm.note_skipped_mat(ro_mat_elems(me));
                comm.note_skipped_vec(2 * qidx_all[me].len());
                comm.note_skipped_mat(dq_elems(me));
            } else {
                let at = AttnFailure::at(Phase::Backward, 0);
                comm.span_begin(SpanKind::AttnRound, "burst_warmup");
                if r0.fwd_ro {
                    comm.try_send_mat(next, shard.q).map_err(&at)?;
                    comm.try_send_mat(next, back.grad_o).map_err(&at)?;
                    comm.try_send_vec(next, back.lse).map_err(&at)?;
                    comm.try_send_vec(next, &d_vec).map_err(&at)?;
                } else {
                    comm.note_skipped_mat(ro_mat_elems(me));
                    comm.note_skipped_vec(2 * qidx_all[me].len());
                }
                if r0.compute {
                    dq_buf.reshape_in_place(shard.q.rows(), shard.q.cols());
                    let w = attn_tile_backward_acc(
                        shard.q,
                        shard.k,
                        shard.v,
                        back.grad_o,
                        back.lse,
                        &d_vec,
                        shard.scale,
                        shard.mask,
                        &qidx_all[me],
                        &ki,
                        &mut dq_buf,
                        &mut grad_k,
                        &mut grad_v,
                        &mut scratch,
                    );
                    comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d));
                }
                if r0.send_dq {
                    debug_assert!(r0.compute, "∇Q warm-up gate implies a live local tile");
                    comm.try_send_mat(next, &dq_buf).map_err(&at)?;
                } else {
                    comm.note_skipped_mat(dq_elems(me));
                }
                comm.span_end();
            }
            for s in 1..g {
                let at = AttnFailure::at(Phase::Backward, s);
                let r = plan.flat_alg2_round(me, s);
                let j = r.bundle;
                if r.idle() {
                    comm.note_round_skipped();
                    if s < g - 1 {
                        comm.note_skipped_mat(ro_mat_elems(j));
                        comm.note_skipped_vec(2 * qidx_all[j].len());
                    }
                    comm.note_skipped_mat(dq_elems(j));
                    continue;
                }
                comm.span_begin(SpanKind::AttnRound, "burst_round");
                let bundle = if r.recv_ro {
                    Some((
                        comm.try_recv_mat(prev).map_err(&at)?,
                        comm.try_recv_mat(prev).map_err(&at)?,
                        comm.try_recv_vec(prev).map_err(&at)?,
                        comm.try_recv_vec(prev).map_err(&at)?,
                    ))
                } else {
                    None
                };
                if s < g - 1 {
                    if r.fwd_ro {
                        // The next rank is not the bundle's home: forward the
                        // read-only parts immediately, before computing.
                        let (q_j, do_j, lse_j, d_j) =
                            bundle.as_ref().expect("forward gate implies receipt");
                        comm.try_send_mat(next, q_j).map_err(&at)?;
                        comm.try_send_mat(next, do_j).map_err(&at)?;
                        comm.try_send_vec(next, lse_j).map_err(&at)?;
                        comm.try_send_vec(next, d_j).map_err(&at)?;
                    } else {
                        comm.note_skipped_mat(ro_mat_elems(j));
                        comm.note_skipped_vec(2 * qidx_all[j].len());
                    }
                }
                if r.compute {
                    let (q_j, do_j, lse_j, d_j) =
                        bundle.as_ref().expect("compute gate implies receipt");
                    dq_buf.reshape_in_place(q_j.rows(), q_j.cols());
                    let w = attn_tile_backward_acc(
                        q_j,
                        shard.k,
                        shard.v,
                        do_j,
                        lse_j,
                        d_j,
                        shard.scale,
                        shard.mask,
                        &qidx_all[j],
                        &ki,
                        &mut dq_buf,
                        &mut grad_k,
                        &mut grad_v,
                        &mut scratch,
                    );
                    comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d));
                }
                if r.recv_dq {
                    let mut dq_j = comm.try_recv_mat(prev).map_err(&at)?;
                    if !r.compute {
                        // The dense schedule adds a freshly zeroed buffer
                        // here; mirror it so the bits (±0.0 included) match.
                        dq_buf.reshape_in_place(dq_j.rows(), dq_j.cols());
                    }
                    dq_j.add_assign(&dq_buf);
                    debug_assert!(r.send_dq, "held ∇Q always travels on");
                    comm.try_send_mat(next, &dq_j).map_err(&at)?;
                } else if r.send_dq {
                    // First live contributor after a gated-off stretch:
                    // materialize the zeros the dense ring would have
                    // delivered, then add our contribution.
                    debug_assert!(r.compute, "first ∇Q hop implies a live tile");
                    let mut dq_j = Mat::zeros(qidx_all[j].len(), shard.q.cols());
                    dq_j.add_assign(&dq_buf);
                    comm.try_send_mat(next, &dq_j).map_err(&at)?;
                } else {
                    comm.note_skipped_mat(dq_elems(j));
                }
                comm.span_end();
            }
            let grad_q = if plan.flat_alg2_final(me) {
                comm.span_begin(SpanKind::AttnRound, "burst_final");
                let gq = comm
                    .try_recv_mat(prev)
                    .map_err(AttnFailure::at(Phase::Backward, g - 1))?;
                comm.span_end();
                gq
            } else {
                // No rank anywhere attends to our queries: the homecoming
                // hop is gated off and ∇Q is identically zero.
                comm.note_round_skipped();
                Mat::zeros(shard.q.rows(), shard.q.cols())
            };
            comm.mem_note_workspace(scratch.resident_bytes());
            comm.mem_free(mem_dq_buf);
            comm.mem_free(mem_dq_ring);
            comm.mem_free(mem_ro);
            comm.mem_free(mem_dkv);
            Ok((grad_q, grad_k, grad_v))
        }
        OverlapMode::None => {
            // Bundle moves strictly after each compute: no hiding. Round 0
            // reads the local bundle by reference; the circulating ∇Q
            // partial is accumulated into directly by the tile kernel. The
            // round structure differs from `Fine` (receives land in the
            // same round as the sends), so the gates are indexed directly;
            // total message/byte counts match the fine-overlap census.
            let me = ring.pos;
            let dq_elems = |j: usize| qidx_all[j].len() * shard.q.cols();
            let ro_mat_elems = |j: usize| qidx_all[j].len() * (shard.q.cols() + back.grad_o.cols());
            // `None` = gated off upstream (never read, by monotonicity).
            let mut owned: Option<(Mat, Mat, Vec<f32>, Vec<f32>)> = None;
            let mut have_local = true;
            let mut cur_dq: Option<Mat> = None;
            for step in 0..g {
                let at = AttnFailure::at(Phase::Backward, step);
                let j = (me + g - step % g) % g;
                let j_in = (j + g - 1) % g;
                let compute = plan.live(j, me);
                let send_ro = step < g - 1 && plan.alg2_ro_hop(j, step);
                let send_dq = plan.alg2_dq_hop(j, step);
                let recv_ro = step < g - 1 && plan.alg2_ro_hop(j_in, step);
                let recv_dq = if step < g - 1 {
                    plan.alg2_dq_hop(j_in, step)
                } else {
                    plan.flat_alg2_final(me)
                };
                if !(compute || send_ro || send_dq || recv_ro || recv_dq) {
                    comm.note_round_skipped();
                    if step < g - 1 {
                        comm.note_skipped_mat(ro_mat_elems(j));
                        comm.note_skipped_vec(2 * qidx_all[j].len());
                    }
                    comm.note_skipped_mat(dq_elems(j));
                    owned = None;
                    have_local = false;
                    continue;
                }
                comm.span_begin(SpanKind::AttnRound, "burst_round");
                if compute {
                    let (q_j, do_j, lse_j, d_j): (&Mat, &Mat, &[f32], &[f32]) = match &owned {
                        Some((q, o, l, dd)) => (q, o, l, dd),
                        None => {
                            debug_assert!(have_local, "compute gate implies a held bundle");
                            (shard.q, back.grad_o, back.lse, &d_vec)
                        }
                    };
                    if cur_dq.is_none() {
                        // First live contributor: carry the zeros the dense
                        // ring would have delivered.
                        cur_dq = Some(Mat::zeros(q_j.rows(), q_j.cols()));
                    }
                    let w = attn_tile_backward_acc(
                        q_j,
                        shard.k,
                        shard.v,
                        do_j,
                        lse_j,
                        d_j,
                        shard.scale,
                        shard.mask,
                        &qidx_all[j],
                        &ki,
                        cur_dq.as_mut().expect("just materialized"),
                        &mut grad_k,
                        &mut grad_v,
                        &mut scratch,
                    );
                    comm.advance_compute(shard.cost.attn_bwd_secs(w.pairs, d));
                }
                if step < g - 1 {
                    if send_ro {
                        let (q_j, do_j, lse_j, d_j): (&Mat, &Mat, &[f32], &[f32]) = match &owned {
                            Some((q, o, l, dd)) => (q, o, l, dd),
                            None => (shard.q, back.grad_o, back.lse, &d_vec),
                        };
                        comm.try_send_mat(ring.next(), q_j).map_err(&at)?;
                        comm.try_send_mat(ring.next(), do_j).map_err(&at)?;
                        comm.try_send_vec(ring.next(), lse_j).map_err(&at)?;
                        comm.try_send_vec(ring.next(), d_j).map_err(&at)?;
                    } else {
                        comm.note_skipped_mat(ro_mat_elems(j));
                        comm.note_skipped_vec(2 * qidx_all[j].len());
                    }
                }
                if send_dq {
                    let dq = cur_dq.as_ref().expect("∇Q gate implies a contribution");
                    comm.try_send_mat(ring.next(), dq).map_err(&at)?;
                } else {
                    comm.note_skipped_mat(dq_elems(j));
                }
                if step < g - 1 {
                    owned = if recv_ro {
                        Some((
                            comm.try_recv_mat(ring.prev()).map_err(&at)?,
                            comm.try_recv_mat(ring.prev()).map_err(&at)?,
                            comm.try_recv_vec(ring.prev()).map_err(&at)?,
                            comm.try_recv_vec(ring.prev()).map_err(&at)?,
                        ))
                    } else {
                        None
                    };
                    have_local = false;
                    cur_dq = if recv_dq {
                        Some(comm.try_recv_mat(ring.prev()).map_err(&at)?)
                    } else {
                        None
                    };
                } else {
                    // Last hop: only ∇Q needs to travel home.
                    cur_dq = if recv_dq {
                        Some(comm.try_recv_mat(ring.prev()).map_err(&at)?)
                    } else {
                        None
                    };
                }
                comm.span_end();
            }
            let grad_q = cur_dq.unwrap_or_else(|| Mat::zeros(shard.q.rows(), shard.q.cols()));
            comm.mem_note_workspace(scratch.resident_bytes());
            comm.mem_free(mem_dq_ring);
            comm.mem_free(mem_ro);
            comm.mem_free(mem_dkv);
            Ok((grad_q, grad_k, grad_v))
        }
    }
}
