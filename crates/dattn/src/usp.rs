//! USP: LoongTrain's hybrid head–context parallelism (the paper's strongest
//! baseline).
//!
//! With `G = U × R` ranks (head-first placement: consecutive ranks — i.e.
//! NVLink neighbours — form a Ulysses group of size `U`; same-position
//! ranks across groups form a context-parallel ring of size `R`):
//!
//! 1. an intra-group all-to-all turns sequence shards into head shards
//!    (all NVLink traffic),
//! 2. ring attention with zigzag balance runs across the size-`R` ring on
//!    each rank's `H/U` heads,
//! 3. a reverse all-to-all restores the sequence partition.
//!
//! The ring carries `N/R`-token shards instead of `N/G`, but only `R` hops;
//! the all-to-alls add `O(N·d/G)` NVLink traffic. USP's win over pure ring
//! attention comes from replacing most inter-node ring hops with cheap
//! intra-node all-to-alls.

use crate::cost::CostModel;
use crate::layout::Layout;
use crate::ring::{
    escalate_attn, try_ring_backward, try_ring_forward, AttnFailure, AttnShard, BackwardInputs,
    OverlapMode, Phase, Ring,
};
use crate::ulysses::{
    group_all_to_all, stash_entry, try_group_all_to_all, HeadGrads, UlyssesError,
};
use crate::DattnError;
use burst_comm::{Communicator, MemCategory, MemId};
use burst_kernels::AttnMask;
use burst_tensor::Mat;

/// USP group geometry for one rank.
#[derive(Debug, Clone)]
pub struct UspTopo {
    /// Ulysses (head-parallel) group size `U`.
    pub ulysses: usize,
    /// Ring (context-parallel) group size `R`.
    pub ring: usize,
    /// Members of this rank's Ulysses group (consecutive ranks).
    pub u_members: Vec<usize>,
    /// Members of this rank's ring group (stride-`U` ranks).
    pub r_members: Vec<usize>,
    /// Position within the Ulysses group.
    pub u_pos: usize,
    /// Position within the ring group.
    pub r_pos: usize,
    /// Mask-aware round skipping on the ring legs (off by default). The
    /// all-to-alls are mask-independent — every token still changes owner —
    /// so only the ring rounds shrink.
    pub skip: bool,
}

impl UspTopo {
    /// Build the geometry; `ulysses_size` must divide the world size.
    #[track_caller]
    pub fn new(comm: &Communicator, ulysses_size: usize) -> Self {
        let g = comm.world_size();
        assert!(
            ulysses_size > 0 && g.is_multiple_of(ulysses_size),
            "USP: ulysses size {ulysses_size} must divide world size {g}"
        );
        let r = g / ulysses_size;
        let rank = comm.rank();
        let u_pos = rank % ulysses_size;
        let r_pos = rank / ulysses_size;
        UspTopo {
            ulysses: ulysses_size,
            ring: r,
            u_members: (r_pos * ulysses_size..(r_pos + 1) * ulysses_size).collect(),
            r_members: (0..r).map(|i| u_pos + i * ulysses_size).collect(),
            u_pos,
            r_pos,
            skip: false,
        }
    }

    /// Same geometry with mask-aware ring-round skipping switched on/off.
    pub fn with_skip(mut self, skip: bool) -> Self {
        self.skip = skip;
        self
    }

    /// Global token indices of this rank's local rows: the zigzag shard of
    /// ring position `r_pos`, sliced contiguously (in shard order) among the
    /// Ulysses group members.
    pub fn local_idx(&self, seq_len: usize) -> Vec<usize> {
        self.member_idx(seq_len, self.u_pos)
    }

    /// Same for an arbitrary Ulysses-group member.
    pub fn member_idx(&self, seq_len: usize, u_pos: usize) -> Vec<usize> {
        let shard = Layout::Zigzag.indices(seq_len, self.ring, self.r_pos);
        let per = shard.len() / self.ulysses;
        shard[u_pos * per..(u_pos + 1) * per].to_vec()
    }

    /// Index lists of every Ulysses-group member, in member order.
    pub fn all_member_idx(&self, seq_len: usize) -> Vec<Vec<usize>> {
        (0..self.ulysses)
            .map(|p| self.member_idx(seq_len, p))
            .collect()
    }
}

/// State saved by [`usp_forward`] for the backward pass.
pub struct UspSaved {
    q: Vec<Mat>,
    k: Vec<Mat>,
    v: Vec<Mat>,
    o: Vec<Mat>,
    lse: Vec<Vec<f32>>,
    heads_per_rank: usize,
    /// Accountant handle for the stash: opened when the forward saves this
    /// state, closed when the backward consumes it.
    mem: Option<MemId>,
}

fn bundle(heads: &[Mat], h0: usize, h1: usize) -> Mat {
    Mat::hstack(&heads[h0..h1])
}

fn unbundle(bundle: &Mat, n: usize) -> Vec<Mat> {
    let dh = bundle.cols() / n;
    (0..n)
        .map(|h| bundle.slice_cols(h * dh, (h + 1) * dh))
        .collect()
}

/// USP forward: intra-group all-to-all, zigzag ring attention per owned
/// head across the ring group, reverse all-to-all.
#[allow(clippy::too_many_arguments)]
pub fn usp_forward(
    comm: &mut Communicator,
    topo: &UspTopo,
    q_heads: &[Mat],
    k_heads: &[Mat],
    v_heads: &[Mat],
    scale: f32,
    mask: &AttnMask,
    seq_len: usize,
    cost: &CostModel,
) -> Result<(Vec<Mat>, UspSaved), UlyssesError> {
    match try_usp_forward(
        comm, topo, q_heads, k_heads, v_heads, scale, mask, seq_len, cost,
    ) {
        Ok(out) => Ok(out),
        Err(DattnError::Infeasible(e)) => Err(e),
        Err(DattnError::Comm(e)) => escalate_attn(comm, e),
    }
}

/// Fallible [`usp_forward`]: all-to-all failures carry `(Phase::Forward, k)`
/// with `k` the all-to-all index; ring failures keep the ring's own
/// phase/round annotation.
#[allow(clippy::too_many_arguments)]
pub fn try_usp_forward(
    comm: &mut Communicator,
    topo: &UspTopo,
    q_heads: &[Mat],
    k_heads: &[Mat],
    v_heads: &[Mat],
    scale: f32,
    mask: &AttnMask,
    seq_len: usize,
    cost: &CostModel,
) -> Result<(Vec<Mat>, UspSaved), DattnError> {
    let heads = q_heads.len();
    if !heads.is_multiple_of(topo.ulysses) {
        return Err(DattnError::Infeasible(UlyssesError::HeadsNotDivisible {
            heads,
            group: topo.ulysses,
        }));
    }
    let hpr = heads / topo.ulysses;
    let dh = q_heads[0].cols();

    let redistribute =
        |comm: &mut Communicator, hs: &[Mat], round: usize| -> Result<Vec<Mat>, AttnFailure> {
            let outgoing: Vec<Mat> = (0..topo.ulysses)
                .map(|p| bundle(hs, p * hpr, (p + 1) * hpr))
                .collect();
            let incoming = try_group_all_to_all(comm, &topo.u_members, outgoing)
                .map_err(AttnFailure::at(Phase::Forward, round))?;
            Ok(unbundle(&Mat::vstack(&incoming), hpr))
        };
    let q_shard = redistribute(comm, q_heads, 0)?;
    let k_shard = redistribute(comm, k_heads, 1)?;
    let v_shard = redistribute(comm, v_heads, 2)?;

    // Ring attention over the context group, zigzag-balanced.
    let ring = Ring::subgroup(comm, topo.r_members.clone());
    let mut o_shard = Vec::with_capacity(hpr);
    let mut lse = Vec::with_capacity(hpr);
    for h in 0..hpr {
        let shard = AttnShard {
            q: &q_shard[h],
            k: &k_shard[h],
            v: &v_shard[h],
            scale,
            mask,
            layout: Layout::Zigzag,
            seq_len,
            cost: *cost,
            max_token: None,
            skip: topo.skip,
        };
        let out = try_ring_forward(comm, &ring, &shard)?;
        let _ = dh;
        o_shard.push(out.o);
        lse.push(out.lse);
    }

    // Reverse all-to-all on O.
    let rows_per_member = o_shard[0].rows() / topo.ulysses;
    let outgoing: Vec<Mat> = (0..topo.ulysses)
        .map(|p| {
            let slices: Vec<Mat> = o_shard
                .iter()
                .map(|o| o.slice_rows(p * rows_per_member, (p + 1) * rows_per_member))
                .collect();
            Mat::hstack(&slices)
        })
        .collect();
    let incoming = try_group_all_to_all(comm, &topo.u_members, outgoing)
        .map_err(AttnFailure::at(Phase::Forward, 3))?;
    let o_heads: Vec<Mat> = incoming.iter().flat_map(|b| unbundle(b, hpr)).collect();
    let mem = stash_entry(
        comm,
        "usp_saved",
        &q_shard,
        &k_shard,
        &v_shard,
        &o_shard,
        &lse,
    );
    Ok((
        o_heads,
        UspSaved {
            q: q_shard,
            k: k_shard,
            v: v_shard,
            o: o_shard,
            lse,
            heads_per_rank: hpr,
            mem,
        },
    ))
}

/// Rebuild the backward state from sequence-sharded tensors (see
/// `ulysses::rebuild_saved`): all-to-all only, no attention compute.
#[allow(clippy::too_many_arguments)]
pub fn rebuild_saved(
    comm: &mut Communicator,
    topo: &UspTopo,
    q_heads: &[Mat],
    k_heads: &[Mat],
    v_heads: &[Mat],
    o_heads: &[Mat],
    lse_heads: &[Vec<f32>],
) -> Result<UspSaved, UlyssesError> {
    let heads = q_heads.len();
    if !heads.is_multiple_of(topo.ulysses) {
        return Err(UlyssesError::HeadsNotDivisible {
            heads,
            group: topo.ulysses,
        });
    }
    let hpr = heads / topo.ulysses;
    let redistribute = |comm: &mut Communicator, hs: &[Mat]| -> Vec<Mat> {
        let outgoing: Vec<Mat> = (0..topo.ulysses)
            .map(|p| bundle(hs, p * hpr, (p + 1) * hpr))
            .collect();
        let incoming = group_all_to_all(comm, &topo.u_members, outgoing);
        unbundle(&Mat::vstack(&incoming), hpr)
    };
    let q = redistribute(comm, q_heads);
    let k = redistribute(comm, k_heads);
    let v = redistribute(comm, v_heads);
    let o = redistribute(comm, o_heads);
    let rows = lse_heads[0].len();
    let lse_local = Mat::from_fn(rows, heads, |r, h| lse_heads[h][r]);
    let lse_cols: Vec<Mat> = (0..heads).map(|h| lse_local.slice_cols(h, h + 1)).collect();
    let lse_full = redistribute(comm, &lse_cols);
    let lse: Vec<Vec<f32>> = lse_full.iter().map(|m| m.as_slice().to_vec()).collect();
    let mem = stash_entry(comm, "usp_saved", &q, &k, &v, &o, &lse);
    Ok(UspSaved {
        q,
        k,
        v,
        o,
        lse,
        heads_per_rank: hpr,
        mem,
    })
}

/// USP backward: all-to-all of `∇O`, zigzag ring backward (Algorithm 1 with
/// fine overlap — LoongTrain's implementation) per owned head, all-to-all of
/// the input gradients back.
#[allow(clippy::too_many_arguments)]
pub fn usp_backward(
    comm: &mut Communicator,
    topo: &UspTopo,
    saved: &UspSaved,
    grad_o_heads: &[Mat],
    scale: f32,
    mask: &AttnMask,
    seq_len: usize,
    cost: &CostModel,
) -> Result<HeadGrads, UlyssesError> {
    match try_usp_backward(comm, topo, saved, grad_o_heads, scale, mask, seq_len, cost) {
        Ok(out) => Ok(out),
        Err(DattnError::Infeasible(e)) => Err(e),
        Err(DattnError::Comm(e)) => escalate_attn(comm, e),
    }
}

/// Fallible [`usp_backward`]: all-to-all failures carry
/// `(Phase::Backward, k)` with `k` the all-to-all index (0 = ∇O, 1 = ∇Q,
/// 2 = ∇K, 3 = ∇V); ring failures keep the ring's own annotation.
#[allow(clippy::too_many_arguments)]
pub fn try_usp_backward(
    comm: &mut Communicator,
    topo: &UspTopo,
    saved: &UspSaved,
    grad_o_heads: &[Mat],
    scale: f32,
    mask: &AttnMask,
    seq_len: usize,
    cost: &CostModel,
) -> Result<HeadGrads, DattnError> {
    let heads = grad_o_heads.len();
    if !heads.is_multiple_of(topo.ulysses) {
        return Err(DattnError::Infeasible(UlyssesError::HeadsNotDivisible {
            heads,
            group: topo.ulysses,
        }));
    }
    let hpr = saved.heads_per_rank;
    // The ring-shard (∇Q, ∇K, ∇V) of this rank's owned heads, live from the
    // per-head ring backwards until the scatters return them.
    let grads_bytes: usize = 3 * saved.q.iter().map(Mat::nbytes).sum::<usize>();
    let mem_grads = comm.mem_alloc("usp_grads", MemCategory::Activations, grads_bytes as u64);

    let outgoing: Vec<Mat> = (0..topo.ulysses)
        .map(|p| bundle(grad_o_heads, p * hpr, (p + 1) * hpr))
        .collect();
    let incoming = try_group_all_to_all(comm, &topo.u_members, outgoing)
        .map_err(AttnFailure::at(Phase::Backward, 0))?;
    let do_shard = unbundle(&Mat::vstack(&incoming), hpr);

    let ring = Ring::subgroup(comm, topo.r_members.clone());
    let mut dq_shard = Vec::with_capacity(hpr);
    let mut dk_shard = Vec::with_capacity(hpr);
    let mut dv_shard = Vec::with_capacity(hpr);
    for (h, do_h) in do_shard.iter().enumerate().take(hpr) {
        let shard = AttnShard {
            q: &saved.q[h],
            k: &saved.k[h],
            v: &saved.v[h],
            scale,
            mask,
            layout: Layout::Zigzag,
            seq_len,
            cost: *cost,
            max_token: None,
            skip: topo.skip,
        };
        let back = BackwardInputs {
            o: &saved.o[h],
            lse: &saved.lse[h],
            grad_o: do_h,
        };
        let (dq, dk, dv) = try_ring_backward(comm, &ring, &shard, &back, OverlapMode::Fine)?;
        dq_shard.push(dq);
        dk_shard.push(dk);
        dv_shard.push(dv);
    }

    let rows_per_member = dq_shard[0].rows() / topo.ulysses;
    let scatter =
        |comm: &mut Communicator, grads: &[Mat], round: usize| -> Result<Vec<Mat>, AttnFailure> {
            let outgoing: Vec<Mat> = (0..topo.ulysses)
                .map(|p| {
                    let slices: Vec<Mat> = grads
                        .iter()
                        .map(|g| g.slice_rows(p * rows_per_member, (p + 1) * rows_per_member))
                        .collect();
                    Mat::hstack(&slices)
                })
                .collect();
            let incoming = try_group_all_to_all(comm, &topo.u_members, outgoing)
                .map_err(AttnFailure::at(Phase::Backward, round))?;
            Ok(incoming.iter().flat_map(|b| unbundle(b, hpr)).collect())
        };
    let dq = scatter(comm, &dq_shard, 1)?;
    let dk = scatter(comm, &dk_shard, 2)?;
    let dv = scatter(comm, &dv_shard, 3)?;
    comm.mem_free(mem_grads);
    comm.mem_free(saved.mem);
    Ok((dq, dk, dv))
}
