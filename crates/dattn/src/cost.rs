//! The FLOP→virtual-seconds model for the simulated devices.
//!
//! Kernels report *allowed query–key pairs*; one pair costs `4·d` FLOPs in
//! the forward pass (the `QKᵀ` and `PV` products) and `10·d` in the
//! backward (score recompute plus the four gradient products of
//! Algorithms 1–2). The model converts pairs into seconds on an A800-like
//! device. Absolute values only anchor the virtual clock; every paper
//! comparison is a ratio.

use serde::{Deserialize, Serialize};

/// Device compute model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Peak dense throughput in FLOP/s (A800 bf16: 312e12).
    pub peak_flops: f64,
    /// Achieved fraction of peak for attention kernels.
    pub efficiency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::a800()
    }
}

impl CostModel {
    /// The paper's A800-SXM4-80GB at a measured-kernel efficiency.
    pub fn a800() -> Self {
        CostModel {
            peak_flops: 312e12,
            efficiency: 0.55,
        }
    }

    /// A model where compute is instantaneous — isolates communication in
    /// virtual-time experiments.
    pub fn free() -> Self {
        CostModel {
            peak_flops: f64::INFINITY,
            efficiency: 1.0,
        }
    }

    #[inline]
    fn secs(&self, flops: f64) -> f64 {
        if self.peak_flops.is_infinite() {
            0.0
        } else {
            flops / (self.peak_flops * self.efficiency)
        }
    }

    /// Forward attention time for `pairs` allowed pairs at head dim `d`.
    pub fn attn_fwd_secs(&self, pairs: u64, d: usize) -> f64 {
        self.secs(pairs as f64 * 4.0 * d as f64)
    }

    /// Backward attention time for `pairs` allowed pairs at head dim `d`.
    pub fn attn_bwd_secs(&self, pairs: u64, d: usize) -> f64 {
        self.secs(pairs as f64 * 10.0 * d as f64)
    }

    /// Time for a dense GEMM of `m × k · k × n`.
    pub fn gemm_secs(&self, m: usize, k: usize, n: usize) -> f64 {
        self.secs(2.0 * m as f64 * k as f64 * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_cost_scales_linearly() {
        let c = CostModel::a800();
        let t1 = c.attn_fwd_secs(1000, 64);
        let t2 = c.attn_fwd_secs(2000, 64);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        assert!(t1 > 0.0);
    }

    #[test]
    fn backward_is_2_5x_forward() {
        let c = CostModel::a800();
        let f = c.attn_fwd_secs(1234, 32);
        let b = c.attn_bwd_secs(1234, 32);
        assert!((b / f - 2.5).abs() < 1e-12);
    }

    #[test]
    fn free_model_is_zero() {
        let c = CostModel::free();
        assert_eq!(c.attn_fwd_secs(u64::MAX, 128), 0.0);
        assert_eq!(c.gemm_secs(1000, 1000, 1000), 0.0);
    }

    #[test]
    fn gemm_cost_formula() {
        let c = CostModel {
            peak_flops: 1e12,
            efficiency: 0.5,
        };
        // 2*10*20*30 = 12000 FLOPs at 5e11 FLOP/s.
        assert!((c.gemm_secs(10, 20, 30) - 12000.0 / 5e11).abs() < 1e-18);
    }
}
