//! # burst-dattn
//!
//! Distributed attention — the paper's primary contribution — implemented on
//! the simulated cluster of [`burst_comm`]. Real tensors move between rank
//! threads, so every algorithm here is validated bit-for-bit against the
//! single-device kernels; virtual time and byte counters reproduce the
//! paper's communication claims.
//!
//! Algorithms:
//!
//! * [`ring`] — the flat global ring: forward pass (shared by RingAttention
//!   and BurstAttention, `2Nd` communication), RingAttention's backward
//!   (Algorithm 1, `4Nd`) and BurstAttention's backward (Algorithm 2,
//!   `3Nd + 2N`) with optional fine-grained gradient overlap;
//! * [`double_ring`] — topology-aware two-level rings (paper §3.1, Fig. 4):
//!   intra-node NVLink sub-rings nested inside an inter-node NIC ring, with
//!   the inter-node exchange posted early so it hides behind a whole
//!   intra-node sweep. Provides both the DoubleRingAttention baseline
//!   (no gradient overlap in backward) and BurstAttention's topology-aware
//!   variant;
//! * [`ulysses`] — DeepSpeed-Ulysses head parallelism (all-to-all);
//! * [`usp`] — LoongTrain's hybrid head+context parallelism;
//! * [`layout`] — sequence partitions: contiguous, zigzag (Eq. 11–12) and
//!   striped (Eq. 13–14) causal workload balance. Because the kernels take
//!   global token indices and skip fully-masked tiles, balance follows from
//!   the partition alone — including for block-wise sparse masks (Fig. 11);
//! * [`cost`] — the FLOP→seconds model that turns kernel work counters into
//!   virtual compute time on the simulated A800s.

pub mod cost;
pub mod double_ring;
pub mod elastic;
pub mod layout;
pub mod ring;
pub mod skip;
pub mod ulysses;
pub mod usp;

pub use cost::CostModel;
pub use double_ring::DoubleRingSpec;
pub use elastic::{
    try_elastic_attention, try_elastic_attention_opts, ElasticAttnOut, ElasticOpts, ShardData,
};
pub use layout::Layout;
pub use ring::{
    burst_backward, ring_backward, ring_forward, try_burst_backward, try_ring_backward,
    try_ring_forward, AttnFailure, AttnShard, BackwardInputs, DistAttnOut, OverlapMode, Phase,
    Ring,
};
pub use skip::{
    census_dr_alg1, census_dr_alg2, census_dr_forward, census_flat_alg1, census_flat_alg2,
    census_flat_forward, MaskedWire, RingGeom, SkipPlan,
};

use burst_comm::{CommError, Communicator, MemCategory};
use burst_kernels::AttnMask;
use burst_tensor::Mat;
use ulysses::UlyssesError;

/// Why a distributed attention call failed: either the requested geometry
/// is infeasible (a configuration error, reported before any communication
/// happens) or a communication fault struck mid-loop (carrying phase, round,
/// rank and peer via [`AttnFailure`]).
#[derive(Debug, Clone, PartialEq)]
pub enum DattnError {
    /// A communication failure inside an attention loop.
    Comm(AttnFailure),
    /// The requested head/group geometry cannot run.
    Infeasible(UlyssesError),
}

impl From<AttnFailure> for DattnError {
    fn from(e: AttnFailure) -> Self {
        DattnError::Comm(e)
    }
}

impl From<UlyssesError> for DattnError {
    fn from(e: UlyssesError) -> Self {
        DattnError::Infeasible(e)
    }
}

impl From<CommError> for DattnError {
    fn from(e: CommError) -> Self {
        DattnError::Comm(AttnFailure::from(e))
    }
}

impl std::fmt::Display for DattnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DattnError::Comm(e) => write!(f, "{e}"),
            DattnError::Infeasible(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DattnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DattnError::Comm(e) => Some(e),
            DattnError::Infeasible(e) => Some(e),
        }
    }
}

/// Which distributed attention implementation to run — mirrors the paper's
/// evaluated systems (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// RingAttention on the flat global ring (Megatron-CP style).
    RingFlat,
    /// BurstAttention (Alg. 2 backward) on the flat global ring.
    BurstFlat,
    /// DoubleRingAttention (LoongTrain): topology-aware rings, Alg. 1
    /// backward, no gradient overlap.
    DoubleRing,
    /// Full BurstAttention: topology-aware rings + Alg. 2 backward with
    /// fine-grained gradient overlap.
    BurstTopo,
}

/// One forward+backward of the selected algorithm on this rank's shard.
/// Returns `(O, Lse, dQ, dK, dV)`.
#[allow(clippy::too_many_arguments)]
pub fn run_attention(
    algo: Algo,
    comm: &mut Communicator,
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    scale: f32,
    mask: &AttnMask,
    layout: Layout,
    seq_len: usize,
    cost: &CostModel,
) -> (Mat, Vec<f32>, Mat, Mat, Mat) {
    match try_run_attention(
        algo, comm, q, k, v, grad_o, scale, mask, layout, seq_len, cost,
    ) {
        Ok(out) => out,
        Err(e) => ring::escalate_attn(comm, e),
    }
}

/// Fallible [`run_attention`]: a mid-loop communication fault surfaces as an
/// [`AttnFailure`] naming the rank, the peer, the ring round and the phase.
#[allow(clippy::too_many_arguments)]
pub fn try_run_attention(
    algo: Algo,
    comm: &mut Communicator,
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    scale: f32,
    mask: &AttnMask,
    layout: Layout,
    seq_len: usize,
    cost: &CostModel,
) -> Result<(Mat, Vec<f32>, Mat, Mat, Mat), AttnFailure> {
    try_run_attention_opts(
        algo, comm, q, k, v, grad_o, scale, mask, layout, seq_len, cost, false,
    )
}

/// [`try_run_attention`] with mask-aware round skipping selectable: with
/// `skip` on, every schedule classifies each (q-shard × kv-shard) tile via
/// [`AttnMask::tile_state`] and elides fully-masked rounds — no compute, no
/// wire traffic, no virtual time — while staying bit-identical to the
/// unskipped run (a skipped tile contributes exactly nothing).
#[allow(clippy::too_many_arguments)]
pub fn try_run_attention_opts(
    algo: Algo,
    comm: &mut Communicator,
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    scale: f32,
    mask: &AttnMask,
    layout: Layout,
    seq_len: usize,
    cost: &CostModel,
    skip: bool,
) -> Result<(Mat, Vec<f32>, Mat, Mat, Mat), AttnFailure> {
    let shard = AttnShard {
        q,
        k,
        v,
        scale,
        mask,
        layout,
        seq_len,
        cost: *cost,
        max_token: None,
        skip,
    };
    // The rank's resident sequence shards — Q, K, V and ∇O, f32 on device —
    // live for the whole forward+backward call.
    let mem_inputs = comm.mem_alloc(
        "attn_inputs",
        MemCategory::RingShards,
        (q.nbytes() + k.nbytes() + v.nbytes() + grad_o.nbytes()) as u64,
    );
    let ring = Ring::global(comm);
    let fwd = match algo {
        Algo::RingFlat | Algo::BurstFlat => try_ring_forward(comm, &ring, &shard)?,
        Algo::DoubleRing | Algo::BurstTopo => double_ring::try_double_ring_forward(comm, &shard)?,
    };
    // The forward's (O, Lse) outputs stay live through the backward (the
    // schedule's own accumulator entry closed when it returned them).
    let mem_out = comm.mem_alloc(
        "attn_fwd_out",
        MemCategory::Activations,
        (fwd.o.nbytes() + 4 * fwd.lse.len()) as u64,
    );
    let back = BackwardInputs {
        o: &fwd.o,
        lse: &fwd.lse,
        grad_o,
    };
    let (dq, dk, dv) = match algo {
        Algo::RingFlat => try_ring_backward(comm, &ring, &shard, &back, OverlapMode::Fine)?,
        Algo::BurstFlat => try_burst_backward(comm, &ring, &shard, &back, OverlapMode::Fine)?,
        Algo::DoubleRing => double_ring::try_double_ring_backward_alg1(comm, &shard, &back)?,
        Algo::BurstTopo => double_ring::try_double_ring_backward_alg2(comm, &shard, &back)?,
    };
    comm.mem_free(mem_out);
    comm.mem_free(mem_inputs);
    Ok((fwd.o, fwd.lse, dq, dk, dv))
}
