//! Mask-aware round skipping: the tile classifier lifted to the schedule.
//!
//! Every dattn schedule moves K/V (or Q/∇O) shards around a ring and folds
//! one (q-shard × kv-shard) *tile* per round. With a sparse [`AttnMask`]
//! many of those tiles are fully masked: the kernels already skip them
//! tile-by-tile, but the schedule still ships the shard and opens the
//! round. A [`SkipPlan`] classifies every tile once per pass via
//! [`AttnMask::tile_state`] and derives, for each hop of each schedule, a
//! *gate*: whether that hop's payload still has a consumer downstream. A
//! gated-off hop sends nothing; a round with no compute, no send and no
//! receive is *idle* — no span, no virtual time, one `rounds_skipped` tick.
//!
//! The same gates drive both the live loops (`ring.rs`, `double_ring.rs`)
//! and the symbolic per-rank censuses below, so the masked analytic wire
//! counts equal the measured counters *by construction* — there is exactly
//! one place deciding whether a hop happens.
//!
//! ## Gate algebra (flat ring, `G` ranks)
//!
//! Write `live[i][j]` for "tile (q-shard `i`, kv-shard `j`) has at least
//! one allowed pair". The processor of kv-shard `x` at ring step `t` is
//! rank `(x + t) mod G`; the consumer of q-bundle `j` at step `t` is rank
//! `(j + t) mod G`. Then:
//!
//! * forward kv hop at step `t`: keep iff `∃ t' ∈ (t, G): live[(x+t')%G][x]`
//!   — some later rank still folds shard `x`;
//! * Algorithm 1 kv hop: same predicate over `t' ∈ (t, G)` — at the final
//!   (homecoming) step the range is empty, so the read-only K/V never ride
//!   home with skipping on (the waste Algorithm 2 removes, here recovered
//!   for free);
//! * Algorithm 1 ∇K/∇V hop at step `t`: keep iff
//!   `∃ t' ∈ [0, t]: live[(x+t')%G][x]` — some contribution is already in
//!   the circulating buffer and must reach home;
//! * Algorithm 2 read-only hop: keep iff `∃ t' ∈ (t, G): live[j][(j+t')%G]`;
//! * Algorithm 2 ∇Q hop: keep iff `∃ t' ∈ [0, t]: live[j][(j+t')%G]`.
//!
//! All gates are monotone along the ring, so sender and receiver always
//! agree without any metadata exchange: if a rank never received a shard,
//! no later gate can ask it to forward that shard, and the first live
//! consumer after a gap *materializes* the zero gradient buffers the dense
//! schedule would have carried to it (bit-identical, since a skipped tile
//! contributes exactly nothing to the accumulators).
//!
//! A [`SkipPlan::dense`] plan short-circuits every gate to `true` and
//! reports no idle rounds — the skip-off path *is* the legacy schedule,
//! byte for byte and span for span.

use crate::layout::Layout;
use burst_kernels::{AttnMask, TileState};

/// Per-pass tile liveness for one ring, plus the hop gates derived from it.
#[derive(Debug, Clone)]
pub struct SkipPlan {
    g: usize,
    /// Dense plans gate nothing (legacy traffic); built plans consult `live`.
    dense: bool,
    /// `live[q * g + k]` — tile (q-shard, kv-shard) has ≥1 allowed pair.
    live: Vec<bool>,
}

impl SkipPlan {
    /// The skip-off plan: every gate true, no round ever idle.
    pub fn dense(g: usize) -> SkipPlan {
        SkipPlan {
            g,
            dense: true,
            live: vec![true; g * g],
        }
    }

    /// Classify all `g²` tiles from per-position global index lists
    /// (already filtered by any `max_token` cutoff).
    pub fn from_indices(mask: &AttnMask, idx: &[Vec<usize>]) -> SkipPlan {
        let g = idx.len();
        let mut live = vec![false; g * g];
        for (qi, q) in idx.iter().enumerate() {
            for (ki, k) in idx.iter().enumerate() {
                live[qi * g + ki] = mask.tile_state(q, k) != TileState::FullyMasked;
            }
        }
        SkipPlan {
            g,
            dense: false,
            live,
        }
    }

    /// Build from a layout directly (used by the analytic censuses, which
    /// have no materialized index tables).
    pub fn build(
        mask: &AttnMask,
        layout: Layout,
        seq_len: usize,
        g: usize,
        max_token: Option<usize>,
    ) -> SkipPlan {
        let idx: Vec<Vec<usize>> = (0..g)
            .map(|p| {
                let v = layout.indices(seq_len, g, p);
                match max_token {
                    Some(cut) => v.into_iter().filter(|&i| i < cut).collect(),
                    None => v,
                }
            })
            .collect();
        SkipPlan::from_indices(mask, &idx)
    }

    #[inline]
    pub fn ring_size(&self) -> usize {
        self.g
    }

    #[inline]
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// Tile (q-shard, kv-shard) has at least one allowed pair.
    #[inline]
    pub fn live(&self, q_shard: usize, kv_shard: usize) -> bool {
        self.live[q_shard * self.g + kv_shard]
    }

    /// Any kv-shard live for this q-shard (the q-shard's ∇Q is nonzero-able).
    pub fn row_any(&self, q_shard: usize) -> bool {
        (0..self.g).any(|k| self.live(q_shard, k))
    }

    /// Any q-shard live for this kv-shard (its ∇K/∇V have a contributor).
    pub fn col_any(&self, kv_shard: usize) -> bool {
        (0..self.g).any(|q| self.live(q, kv_shard))
    }

    pub fn all_live(&self) -> bool {
        self.live.iter().all(|&b| b)
    }

    /// Rounds on which every rank is idle never even open a span; counting
    /// per rank happens in the censuses.
    /// `∃ t ∈ [lo, hi): live[(shard + t) % g][shard]` — kv-shard `shard`
    /// has a consumer somewhere in that step range.
    #[inline]
    fn kv_consumer_in(&self, shard: usize, lo: usize, hi: usize) -> bool {
        (lo..hi).any(|t| self.live((shard + t) % self.g, shard))
    }

    /// `∃ t ∈ [lo, hi): live[bundle][(bundle + t) % g]` — q-bundle `bundle`
    /// has a consumer somewhere in that step range.
    #[inline]
    fn ro_consumer_in(&self, bundle: usize, lo: usize, hi: usize) -> bool {
        (lo..hi).any(|t| self.live(bundle, (bundle + t) % self.g))
    }

    // ---- flat-ring hop gates -------------------------------------------

    /// Forward kv hop: shard `shard` leaves its step-`hop` holder iff a
    /// later rank still folds it.
    pub fn fwd_kv_hop(&self, shard: usize, hop: usize) -> bool {
        self.dense || self.kv_consumer_in(shard, hop + 1, self.g)
    }

    /// Algorithm 1 read-only kv hop (steps `0..g`; the homecoming step
    /// `g−1` has an empty consumer range, so it is never kept when built).
    pub fn alg1_kv_hop(&self, shard: usize, hop: usize) -> bool {
        self.dense || self.kv_consumer_in(shard, hop + 1, self.g)
    }

    /// Algorithm 1 ∇K/∇V hop: kept once any contribution is in flight.
    pub fn alg1_dkv_hop(&self, shard: usize, hop: usize) -> bool {
        self.dense || self.kv_consumer_in(shard, 0, hop + 1)
    }

    /// Algorithm 2 read-only bundle hop.
    pub fn alg2_ro_hop(&self, bundle: usize, hop: usize) -> bool {
        self.dense || self.ro_consumer_in(bundle, hop + 1, self.g)
    }

    /// Algorithm 2 ∇Q hop: kept once any contribution is in flight; the
    /// homecoming gate (`hop = g−1`) is `row_any(bundle)`.
    pub fn alg2_dq_hop(&self, bundle: usize, hop: usize) -> bool {
        self.dense || self.ro_consumer_in(bundle, 0, hop + 1)
    }

    // ---- per-round plans (single source of truth for loop + census) ----

    /// One rank-round of the flat forward.
    pub fn flat_fwd_round(&self, me: usize, step: usize) -> FlatFwdRound {
        let g = self.g;
        let shard_out = (me + g - step % g) % g;
        let shard_in = (me + g - step % g + g - 1) % g;
        let last = step == g - 1;
        FlatFwdRound {
            shard_out,
            shard_in,
            send: !last && self.fwd_kv_hop(shard_out, step),
            recv: !last && self.fwd_kv_hop(shard_in, step),
            compute: self.live(me, shard_out),
        }
    }

    /// One rank-round of Algorithm 1's backward.
    pub fn flat_alg1_round(&self, me: usize, step: usize) -> FlatAlg1Round {
        let g = self.g;
        let shard_out = (me + g - step % g) % g;
        let shard_in = (me + g - step % g + g - 1) % g;
        FlatAlg1Round {
            shard_out,
            shard_in,
            send_kv: self.alg1_kv_hop(shard_out, step),
            send_dkv: self.alg1_dkv_hop(shard_out, step),
            recv_kv: self.alg1_kv_hop(shard_in, step),
            recv_dkv: self.alg1_dkv_hop(shard_in, step),
            compute: self.live(me, shard_out),
        }
    }

    /// One rank-round of Algorithm 2's backward (round `0` is the warm-up:
    /// nothing is received, the local bundle departs).
    pub fn flat_alg2_round(&self, me: usize, round: usize) -> FlatAlg2Round {
        let g = self.g;
        let bundle = (me + g - round % g) % g;
        let warmup = round == 0;
        FlatAlg2Round {
            bundle,
            recv_ro: !warmup && self.alg2_ro_hop(bundle, round - 1),
            fwd_ro: round < g - 1 && self.alg2_ro_hop(bundle, round),
            recv_dq: !warmup && self.alg2_dq_hop(bundle, round - 1),
            send_dq: self.alg2_dq_hop(bundle, round),
            compute: self.live(bundle, me),
        }
    }

    /// Gate on Algorithm 2's final homecoming receive of this rank's ∇Q.
    pub fn flat_alg2_final(&self, me: usize) -> bool {
        self.dense || self.row_any(me)
    }

    // ---- per-pass memory activity (gates the pass-scoped ledger slots) --

    /// Does the flat forward ever land a received (K, V) bundle here?
    pub fn flat_fwd_recv_any(&self, me: usize) -> bool {
        (0..self.g).any(|s| self.flat_fwd_round(me, s).recv)
    }

    /// Which halves of Algorithm 1's circulating (K, V, ∇K, ∇V) slot this
    /// rank ever holds: `(kv_buf, dkv_buf)`.
    pub fn flat_alg1_bufs(&self, me: usize) -> (bool, bool) {
        let mut kv = false;
        let mut dkv = false;
        for s in 0..self.g {
            let r = self.flat_alg1_round(me, s);
            kv |= r.recv_kv;
            dkv |= r.recv_dkv || r.compute;
        }
        (kv, dkv)
    }

    /// Which of Algorithm 2's steady-state slots this rank ever touches:
    /// `(ro_bundle, dq_ring, dq_buf)`.
    pub fn flat_alg2_bufs(&self, me: usize) -> (bool, bool, bool) {
        let mut ro = false;
        let mut dq_ring = self.flat_alg2_final(me);
        let mut dq_buf = false;
        for s in 0..self.g {
            let r = self.flat_alg2_round(me, s);
            ro |= r.recv_ro;
            dq_ring |= r.send_dq || r.recv_dq;
            dq_buf |= r.compute || r.recv_dq;
        }
        (ro, dq_ring, dq_buf)
    }

    // ---- double-ring hop gates -----------------------------------------

    /// Rank processing kv-shard / q-bundle `x` at double-ring slot `t`
    /// (forward and Algorithm 2 traversal: the inner ring advances every
    /// slot, the outer ring every `p` slots, and the shard ladder resets
    /// to the sweep's start shard at each outer boundary).
    fn dr_proc(x: usize, t: usize, n: usize, p: usize) -> usize {
        let (ox, ix) = (x / p, x % p);
        ((ox + t / p) % n) * p + (ix + t % p) % p
    }

    /// Same for Algorithm 1's continuous traversal: hops `1..=t` contain
    /// `⌊t/p⌋` inter hops (one after every `p`-th step), the rest intra.
    fn dr_alg1_proc(x: usize, t: usize, n: usize, p: usize) -> usize {
        let q = t / p;
        let (ox, ix) = (x / p, x % p);
        ((ox + q) % n) * p + (ix + (t - q)) % p
    }

    /// Shard / bundle handled by `me` at forward / Algorithm 2 slot
    /// `(outer, inner)` — the inverse of [`Self::dr_proc`].
    fn dr_held(me: usize, outer: usize, inner: usize, n: usize, p: usize) -> usize {
        let (om, im) = (me / p, me % p);
        ((om + n - outer % n) % n) * p + (im + p - inner % p) % p
    }

    /// Shard held by `me` at Algorithm 1 step `t` — the inverse of
    /// [`Self::dr_alg1_proc`].
    fn dr_alg1_held(me: usize, t: usize, n: usize, p: usize) -> usize {
        let q = t / p;
        let (om, im) = (me / p, me % p);
        ((om + n - q % n) % n) * p + (im + p - (t - q) % p) % p
    }

    /// `∃ t ∈ [lo, hi): live[dr_proc(shard, t)][shard]`.
    fn dr_kv_consumer_in(&self, shard: usize, lo: usize, hi: usize, n: usize, p: usize) -> bool {
        (lo..hi).any(|t| self.live(Self::dr_proc(shard, t, n, p), shard))
    }

    /// `∃ t ∈ [lo, hi): live[bundle][dr_proc(bundle, t)]`.
    fn dr_ro_consumer_in(&self, bundle: usize, lo: usize, hi: usize, n: usize, p: usize) -> bool {
        (lo..hi).any(|t| self.live(bundle, Self::dr_proc(bundle, t, n, p)))
    }

    /// `∃ t ∈ [lo, hi): live[dr_alg1_proc(shard, t)][shard]`.
    fn dr_alg1_consumer_in(&self, shard: usize, lo: usize, hi: usize, n: usize, p: usize) -> bool {
        (lo..hi).any(|t| self.live(Self::dr_alg1_proc(shard, t, n, p), shard))
    }

    // ---- double-ring per-round plans ------------------------------------

    /// Gates for one outer-ring boundary of the double-ring forward: the
    /// early posting of the *next sweep's* start shard to the peer node,
    /// and the matching receive after this sweep drains. A start shard
    /// travels iff any slot of a later sweep still folds it.
    pub fn dr_fwd_outer(&self, me: usize, outer: usize, n: usize, p: usize) -> DrFwdOuter {
        let start_shard = Self::dr_held(me, outer, 0, n, p);
        let start_in = Self::dr_held(me, outer + 1, 0, n, p);
        let boundary = outer + 1 < n;
        let np = n * p;
        DrFwdOuter {
            start_shard,
            start_in,
            send_inter: boundary
                && (self.dense || self.dr_kv_consumer_in(start_shard, (outer + 1) * p, np, n, p)),
            recv_inter: boundary
                && (self.dense || self.dr_kv_consumer_in(start_in, (outer + 1) * p, np, n, p)),
        }
    }

    /// Gates for one inner slot of the double-ring forward. Intra hops are
    /// scoped to the current sweep: a shard leaves this slot iff a later
    /// slot of the *same* sweep still folds it (later sweeps reach it via
    /// the outer ring's start-shard chain instead).
    pub fn dr_fwd_slot(
        &self,
        me: usize,
        outer: usize,
        inner: usize,
        n: usize,
        p: usize,
    ) -> DrFwdSlot {
        let shard = Self::dr_held(me, outer, inner, n, p);
        let shard_in = Self::dr_held(me, outer, inner + 1, n, p);
        let t = outer * p + inner;
        let within = inner + 1 < p;
        let sweep_end = (outer + 1) * p;
        DrFwdSlot {
            shard,
            shard_in,
            send: within && (self.dense || self.dr_kv_consumer_in(shard, t + 1, sweep_end, n, p)),
            recv: within
                && (self.dense || self.dr_kv_consumer_in(shard_in, t + 1, sweep_end, n, p)),
            compute: self.live(me, shard),
        }
    }

    /// Gates for one step of Algorithm 1's double-ring backward (the
    /// continuous 4-mat circulation). The read-only (K, V) half travels on
    /// future consumers, the (∇K, ∇V) half on accumulated contributions;
    /// the final step `n·p − 1` breaks before sending.
    pub fn dr_alg1_slot(&self, me: usize, t: usize, n: usize, p: usize) -> DrAlg1Slot {
        let np = n * p;
        let shard = Self::dr_alg1_held(me, t, n, p);
        let shard_in = Self::dr_alg1_held(me, t + 1, n, p);
        let last = t + 1 == np;
        DrAlg1Slot {
            shard,
            shard_in,
            inter: t % p == p - 1,
            send_kv: !last && (self.dense || self.dr_alg1_consumer_in(shard, t + 1, np, n, p)),
            send_dkv: !last && (self.dense || self.dr_alg1_consumer_in(shard, 0, t + 1, n, p)),
            recv_kv: !last && (self.dense || self.dr_alg1_consumer_in(shard_in, t + 1, np, n, p)),
            recv_dkv: !last && (self.dense || self.dr_alg1_consumer_in(shard_in, 0, t + 1, n, p)),
            compute: self.live(me, shard),
        }
    }

    /// Algorithm 1's completion hops: the ∇K/∇V bundles finish their ride
    /// home (one inter hop when `n > 1`, then `n mod p` intra hops). Each
    /// hop's gate is `col_any` of the shard it carries — the full sweep
    /// visits every rank, so a shard with any contributor anywhere holds a
    /// nonzero gradient here.
    pub fn dr_alg1_completion(&self, me: usize, n: usize, p: usize) -> Vec<DrCompletionHop> {
        let (om, im) = (me / p, me % p);
        let mut hops = Vec::new();
        if n > 1 {
            let held = ((om + 1) % n) * p + (im + n) % p;
            let next = om * p + (im + n) % p;
            hops.push(DrCompletionHop {
                inter: true,
                send_shard: held,
                recv_shard: next,
                send: self.dense || self.col_any(held),
                recv: self.dense || self.col_any(next),
            });
        }
        for j in 0..n % p {
            let cur = om * p + (im + n - j) % p;
            let nxt = om * p + (im + n - j - 1) % p;
            hops.push(DrCompletionHop {
                inter: false,
                send_shard: cur,
                recv_shard: nxt,
                send: self.dense || self.col_any(cur),
                recv: self.dense || self.col_any(nxt),
            });
        }
        hops
    }

    /// Gates for one outer-ring boundary of Algorithm 2's double-ring
    /// backward: the early posting of the next sweep's read-only start
    /// bundle `(Q, ∇O, lse, D)`.
    pub fn dr_alg2_outer(&self, me: usize, outer: usize, n: usize, p: usize) -> DrAlg2Outer {
        let start_bundle = Self::dr_held(me, outer, 0, n, p);
        let start_in = Self::dr_held(me, outer + 1, 0, n, p);
        let boundary = outer + 1 < n;
        let np = n * p;
        DrAlg2Outer {
            start_bundle,
            start_in,
            send_inter: boundary
                && (self.dense || self.dr_ro_consumer_in(start_bundle, (outer + 1) * p, np, n, p)),
            recv_inter: boundary
                && (self.dense || self.dr_ro_consumer_in(start_in, (outer + 1) * p, np, n, p)),
        }
    }

    /// Gates for one inner slot of Algorithm 2's double-ring backward. The
    /// ∇Q stream rides the slot ladder (intra within a sweep, one diagonal
    /// hop per boundary): held once any contribution is aboard.
    pub fn dr_alg2_slot(
        &self,
        me: usize,
        outer: usize,
        inner: usize,
        n: usize,
        p: usize,
    ) -> DrAlg2Slot {
        let bundle = Self::dr_held(me, outer, inner, n, p);
        let bundle_in = Self::dr_held(me, outer, inner + 1, n, p);
        let t = outer * p + inner;
        let within = inner + 1 < p;
        let sweep_end = (outer + 1) * p;
        DrAlg2Slot {
            bundle,
            bundle_in,
            diag: inner + 1 == p,
            send_ro: within
                && (self.dense || self.dr_ro_consumer_in(bundle, t + 1, sweep_end, n, p)),
            recv_ro: within
                && (self.dense || self.dr_ro_consumer_in(bundle_in, t + 1, sweep_end, n, p)),
            recv_dq: t > 0 && (self.dense || self.dr_ro_consumer_in(bundle, 0, t, n, p)),
            send_dq: self.dense || self.dr_ro_consumer_in(bundle, 0, t + 1, n, p),
            compute: self.live(bundle, me),
        }
    }

    /// Gate on Algorithm 2's double-ring homecoming receive of this rank's
    /// ∇Q (the diagonal sender's final gate covers every slot, i.e. every
    /// rank, so both sides reduce to `row_any`).
    pub fn dr_alg2_final(&self, me: usize) -> bool {
        self.dense || self.row_any(me)
    }

    // ---- double-ring per-pass memory activity ---------------------------

    /// Double-ring forward buffers this rank ever lands: `(start, cur)`.
    pub fn dr_fwd_bufs(&self, me: usize, n: usize, p: usize) -> (bool, bool) {
        let start = (0..n).any(|o| self.dr_fwd_outer(me, o, n, p).recv_inter);
        let cur = (0..n).any(|o| (0..p).any(|i| self.dr_fwd_slot(me, o, i, n, p).recv));
        (start, cur)
    }

    /// Which halves of Algorithm 1's circulating 4-mat bundle this rank
    /// ever holds on the double ring: `(kv, dkv)`.
    pub fn dr_alg1_bufs(&self, me: usize, n: usize, p: usize) -> (bool, bool) {
        let np = n * p;
        let mut kv = false;
        let mut dkv = false;
        for t in 0..np {
            let s = self.dr_alg1_slot(me, t, n, p);
            kv |= s.recv_kv;
            dkv |= s.recv_dkv || s.compute;
        }
        for h in self.dr_alg1_completion(me, n, p) {
            dkv |= h.recv;
        }
        (kv, dkv)
    }

    /// Algorithm 2 double-ring slots this rank ever touches:
    /// `(start, cur, dq_ring, dq_buf)`.
    pub fn dr_alg2_bufs(&self, me: usize, n: usize, p: usize) -> (bool, bool, bool, bool) {
        let start = (0..n).any(|o| self.dr_alg2_outer(me, o, n, p).recv_inter);
        let mut cur = false;
        let mut dq_ring = self.dr_alg2_final(me);
        let mut dq_buf = false;
        for o in 0..n {
            for i in 0..p {
                let s = self.dr_alg2_slot(me, o, i, n, p);
                cur |= s.recv_ro;
                dq_ring |= s.send_dq || s.recv_dq;
                dq_buf |= s.compute || s.recv_dq;
            }
        }
        (start, cur, dq_ring, dq_buf)
    }
}

/// Gates for one rank-round of the flat forward.
#[derive(Debug, Clone, Copy)]
pub struct FlatFwdRound {
    /// Shard held (and computed against) this round.
    pub shard_out: usize,
    /// Shard arriving this round (if any).
    pub shard_in: usize,
    pub send: bool,
    pub recv: bool,
    pub compute: bool,
}

impl FlatFwdRound {
    /// No compute, no send, no receive: the round never opens.
    pub fn idle(&self) -> bool {
        !(self.send || self.recv || self.compute)
    }
}

/// Gates for one rank-round of Algorithm 1's backward.
#[derive(Debug, Clone, Copy)]
pub struct FlatAlg1Round {
    pub shard_out: usize,
    pub shard_in: usize,
    pub send_kv: bool,
    pub send_dkv: bool,
    pub recv_kv: bool,
    pub recv_dkv: bool,
    pub compute: bool,
}

impl FlatAlg1Round {
    pub fn idle(&self) -> bool {
        !(self.send_kv || self.send_dkv || self.recv_kv || self.recv_dkv || self.compute)
    }
}

/// Gates for one rank-round of Algorithm 2's backward.
#[derive(Debug, Clone, Copy)]
pub struct FlatAlg2Round {
    /// Which q-bundle this round handles.
    pub bundle: usize,
    pub recv_ro: bool,
    pub fwd_ro: bool,
    pub recv_dq: bool,
    pub send_dq: bool,
    pub compute: bool,
}

impl FlatAlg2Round {
    pub fn idle(&self) -> bool {
        !(self.recv_ro || self.fwd_ro || self.recv_dq || self.send_dq || self.compute)
    }
}

/// Gates for one outer-ring boundary of the double-ring forward.
#[derive(Debug, Clone, Copy)]
pub struct DrFwdOuter {
    /// Start shard of the current sweep (the one posted early).
    pub start_shard: usize,
    /// Start shard of the next sweep (the one received after draining).
    pub start_in: usize,
    pub send_inter: bool,
    pub recv_inter: bool,
}

/// Gates for one inner slot of the double-ring forward.
#[derive(Debug, Clone, Copy)]
pub struct DrFwdSlot {
    /// Shard computed against this slot.
    pub shard: usize,
    /// Shard arriving on the intra ring this slot (if any).
    pub shard_in: usize,
    pub send: bool,
    pub recv: bool,
    pub compute: bool,
}

impl DrFwdSlot {
    /// No compute, no intra send, no intra receive: the slot never opens.
    pub fn idle(&self) -> bool {
        !(self.send || self.recv || self.compute)
    }
}

/// Gates for one step of Algorithm 1's double-ring backward.
#[derive(Debug, Clone, Copy)]
pub struct DrAlg1Slot {
    pub shard: usize,
    pub shard_in: usize,
    /// This step's outbound hop crosses the outer (node) ring.
    pub inter: bool,
    pub send_kv: bool,
    pub send_dkv: bool,
    pub recv_kv: bool,
    pub recv_dkv: bool,
    pub compute: bool,
}

impl DrAlg1Slot {
    pub fn idle(&self) -> bool {
        !(self.send_kv || self.send_dkv || self.recv_kv || self.recv_dkv || self.compute)
    }
}

/// One hop of Algorithm 1's double-ring completion phase (∇K/∇V bundles
/// finishing the ride home).
#[derive(Debug, Clone, Copy)]
pub struct DrCompletionHop {
    pub inter: bool,
    /// Shard whose gradients depart on this hop.
    pub send_shard: usize,
    /// Shard whose gradients arrive on this hop.
    pub recv_shard: usize,
    pub send: bool,
    pub recv: bool,
}

/// Gates for one outer-ring boundary of Algorithm 2's double-ring backward.
#[derive(Debug, Clone, Copy)]
pub struct DrAlg2Outer {
    pub start_bundle: usize,
    pub start_in: usize,
    pub send_inter: bool,
    pub recv_inter: bool,
}

/// Gates for one inner slot of Algorithm 2's double-ring backward.
#[derive(Debug, Clone, Copy)]
pub struct DrAlg2Slot {
    /// Which q-bundle this slot handles.
    pub bundle: usize,
    /// Bundle arriving on the intra ring this slot (if any).
    pub bundle_in: usize,
    /// This slot's ∇Q hop is the per-sweep diagonal (inter when `n > 1`).
    pub diag: bool,
    pub send_ro: bool,
    pub recv_ro: bool,
    pub recv_dq: bool,
    pub send_dq: bool,
    pub compute: bool,
}

impl DrAlg2Slot {
    pub fn idle(&self) -> bool {
        !(self.send_ro || self.recv_ro || self.recv_dq || self.send_dq || self.compute)
    }
}

// ---------------------------------------------------------------------
// Symbolic per-rank censuses
// ---------------------------------------------------------------------

/// Shard geometry shared by the censuses: per-position row counts (post
/// `max_token` filtering) and the K/Q and V/∇O column widths.
#[derive(Debug, Clone)]
pub struct RingGeom {
    /// Rows owned by each ring position.
    pub rows: Vec<usize>,
    /// Columns of Q/K/∇Q (head dim).
    pub d: usize,
    /// Columns of V/O/∇O.
    pub dv: usize,
}

impl RingGeom {
    pub fn build(
        layout: Layout,
        seq_len: usize,
        g: usize,
        d: usize,
        dv: usize,
        max_token: Option<usize>,
    ) -> RingGeom {
        let rows = (0..g)
            .map(|p| {
                let v = layout.indices(seq_len, g, p);
                match max_token {
                    Some(cut) => v.into_iter().filter(|&i| i < cut).count(),
                    None => v.len(),
                }
            })
            .collect();
        RingGeom { rows, d, dv }
    }
}

/// Exact per-rank wire activity of one masked pass, in logical elements
/// (dtype-free — the perf crate converts to bytes at the wire dtype;
/// `vec` elements are the always-f32 softmax statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskedWire {
    pub intra_msgs: u64,
    pub inter_msgs: u64,
    pub intra_mat_elems: u64,
    pub inter_mat_elems: u64,
    pub intra_vec_elems: u64,
    pub inter_vec_elems: u64,
    /// Rank-rounds elided entirely (no span, no clock).
    pub rounds_skipped: u64,
    /// Matrix elements the gates kept off the wire (dense-schedule dual).
    pub skipped_mat_elems: u64,
    /// Vector elements the gates kept off the wire.
    pub skipped_vec_elems: u64,
}

impl MaskedWire {
    pub fn add(&self, other: &MaskedWire) -> MaskedWire {
        MaskedWire {
            intra_msgs: self.intra_msgs + other.intra_msgs,
            inter_msgs: self.inter_msgs + other.inter_msgs,
            intra_mat_elems: self.intra_mat_elems + other.intra_mat_elems,
            inter_mat_elems: self.inter_mat_elems + other.inter_mat_elems,
            intra_vec_elems: self.intra_vec_elems + other.intra_vec_elems,
            inter_vec_elems: self.inter_vec_elems + other.inter_vec_elems,
            rounds_skipped: self.rounds_skipped + other.rounds_skipped,
            skipped_mat_elems: self.skipped_mat_elems + other.skipped_mat_elems,
            skipped_vec_elems: self.skipped_vec_elems + other.skipped_vec_elems,
        }
    }

    pub fn msgs(&self) -> u64 {
        self.intra_msgs + self.inter_msgs
    }

    pub fn mat_elems(&self) -> u64 {
        self.intra_mat_elems + self.inter_mat_elems
    }

    pub fn vec_elems(&self) -> u64 {
        self.intra_vec_elems + self.inter_vec_elems
    }

    fn mat(&mut self, inter: bool, elems: u64) {
        if inter {
            self.inter_msgs += 1;
            self.inter_mat_elems += elems;
        } else {
            self.intra_msgs += 1;
            self.intra_mat_elems += elems;
        }
    }

    fn vec(&mut self, inter: bool, elems: u64) {
        if inter {
            self.inter_msgs += 1;
            self.inter_vec_elems += elems;
        } else {
            self.intra_msgs += 1;
            self.intra_vec_elems += elems;
        }
    }
}

/// Flat forward census for `me`. `edge_inter` is the link class of this
/// rank's ring edge to its successor (all flat-ring sends use it).
pub fn census_flat_forward(
    plan: &SkipPlan,
    geom: &RingGeom,
    edge_inter: bool,
    me: usize,
) -> MaskedWire {
    let g = plan.ring_size();
    let mut w = MaskedWire::default();
    for step in 0..g {
        let r = plan.flat_fwd_round(me, step);
        if r.idle() {
            w.rounds_skipped += 1;
        }
        if step < g - 1 {
            let k = (geom.rows[r.shard_out] * geom.d) as u64;
            let v = (geom.rows[r.shard_out] * geom.dv) as u64;
            if r.send {
                w.mat(edge_inter, k);
                w.mat(edge_inter, v);
            } else {
                w.skipped_mat_elems += k + v;
            }
        }
    }
    w
}

/// Algorithm 1 backward census for `me` (overlap-mode independent).
pub fn census_flat_alg1(
    plan: &SkipPlan,
    geom: &RingGeom,
    edge_inter: bool,
    me: usize,
) -> MaskedWire {
    let g = plan.ring_size();
    let mut w = MaskedWire::default();
    if g == 1 {
        return w;
    }
    for step in 0..g {
        let r = plan.flat_alg1_round(me, step);
        if r.idle() {
            w.rounds_skipped += 1;
        }
        let k = (geom.rows[r.shard_out] * geom.d) as u64;
        let v = (geom.rows[r.shard_out] * geom.dv) as u64;
        if r.send_kv {
            w.mat(edge_inter, k);
            w.mat(edge_inter, v);
        } else {
            w.skipped_mat_elems += k + v;
        }
        if r.send_dkv {
            w.mat(edge_inter, k);
            w.mat(edge_inter, v);
        } else {
            w.skipped_mat_elems += k + v;
        }
    }
    w
}

/// Algorithm 2 backward census for `me` (fine-overlap round structure;
/// message and byte totals are overlap-mode independent).
pub fn census_flat_alg2(
    plan: &SkipPlan,
    geom: &RingGeom,
    edge_inter: bool,
    me: usize,
) -> MaskedWire {
    let g = plan.ring_size();
    let mut w = MaskedWire::default();
    if g == 1 {
        return w;
    }
    for round in 0..g {
        let r = plan.flat_alg2_round(me, round);
        if r.idle() {
            w.rounds_skipped += 1;
        }
        let rows = geom.rows[r.bundle] as u64;
        if round < g - 1 {
            let q = rows * geom.d as u64;
            let dout = rows * geom.dv as u64;
            if r.fwd_ro {
                w.mat(edge_inter, q);
                w.mat(edge_inter, dout);
                w.vec(edge_inter, rows);
                w.vec(edge_inter, rows);
            } else {
                w.skipped_mat_elems += q + dout;
                w.skipped_vec_elems += 2 * rows;
            }
        }
        let dq = rows * geom.d as u64;
        if r.send_dq {
            w.mat(edge_inter, dq);
        } else {
            w.skipped_mat_elems += dq;
        }
    }
    if !plan.flat_alg2_final(me) {
        w.rounds_skipped += 1;
    }
    w
}

/// Double-ring forward census for `me` on an `n`-node × `p`-GPU world
/// (canonical slot-is-rank placement: intra-sweep hops ride node-local
/// links; outer-ring start-shard hops are inter-node, which only exist
/// when `n > 1`).
pub fn census_dr_forward(
    plan: &SkipPlan,
    geom: &RingGeom,
    n: usize,
    p: usize,
    me: usize,
) -> MaskedWire {
    let mut w = MaskedWire::default();
    for outer in 0..n {
        let op = plan.dr_fwd_outer(me, outer, n, p);
        if outer + 1 < n {
            let k = (geom.rows[op.start_shard] * geom.d) as u64;
            let v = (geom.rows[op.start_shard] * geom.dv) as u64;
            if op.send_inter {
                w.mat(true, k);
                w.mat(true, v);
            } else {
                w.skipped_mat_elems += k + v;
            }
        }
        for inner in 0..p {
            let s = plan.dr_fwd_slot(me, outer, inner, n, p);
            if s.idle() {
                w.rounds_skipped += 1;
            }
            if inner + 1 < p {
                let k = (geom.rows[s.shard] * geom.d) as u64;
                let v = (geom.rows[s.shard] * geom.dv) as u64;
                if s.send {
                    w.mat(false, k);
                    w.mat(false, v);
                } else {
                    w.skipped_mat_elems += k + v;
                }
            }
        }
    }
    w
}

/// Algorithm 1 double-ring backward census for `me`, including the
/// completion phase. The completion span counts as one skipped round iff
/// it has hops and every one of this rank's gates is off.
pub fn census_dr_alg1(
    plan: &SkipPlan,
    geom: &RingGeom,
    n: usize,
    p: usize,
    me: usize,
) -> MaskedWire {
    let np = n * p;
    let mut w = MaskedWire::default();
    for t in 0..np {
        let s = plan.dr_alg1_slot(me, t, n, p);
        if s.idle() {
            w.rounds_skipped += 1;
        }
        if t + 1 < np {
            let k = (geom.rows[s.shard] * geom.d) as u64;
            let v = (geom.rows[s.shard] * geom.dv) as u64;
            if s.send_kv {
                w.mat(s.inter, k);
                w.mat(s.inter, v);
            } else {
                w.skipped_mat_elems += k + v;
            }
            if s.send_dkv {
                w.mat(s.inter, k);
                w.mat(s.inter, v);
            } else {
                w.skipped_mat_elems += k + v;
            }
        }
    }
    let hops = plan.dr_alg1_completion(me, n, p);
    if !hops.is_empty() && hops.iter().all(|h| !(h.send || h.recv)) {
        w.rounds_skipped += 1;
    }
    for h in &hops {
        let dk = (geom.rows[h.send_shard] * geom.d) as u64;
        let dv = (geom.rows[h.send_shard] * geom.dv) as u64;
        if h.send {
            w.mat(h.inter, dk);
            w.mat(h.inter, dv);
        } else {
            w.skipped_mat_elems += dk + dv;
        }
    }
    w
}

/// Algorithm 2 double-ring backward census for `me`. The ∇Q diagonal hop
/// (one per sweep) is inter-node when `n > 1`, node-local otherwise.
pub fn census_dr_alg2(
    plan: &SkipPlan,
    geom: &RingGeom,
    n: usize,
    p: usize,
    me: usize,
) -> MaskedWire {
    let np = n * p;
    let mut w = MaskedWire::default();
    if np == 1 {
        return w;
    }
    for outer in 0..n {
        let op = plan.dr_alg2_outer(me, outer, n, p);
        if outer + 1 < n {
            let rows = geom.rows[op.start_bundle] as u64;
            let q = rows * geom.d as u64;
            let dout = rows * geom.dv as u64;
            if op.send_inter {
                w.mat(true, q);
                w.mat(true, dout);
                w.vec(true, rows);
                w.vec(true, rows);
            } else {
                w.skipped_mat_elems += q + dout;
                w.skipped_vec_elems += 2 * rows;
            }
        }
        for inner in 0..p {
            let s = plan.dr_alg2_slot(me, outer, inner, n, p);
            if s.idle() {
                w.rounds_skipped += 1;
            }
            let rows = geom.rows[s.bundle] as u64;
            if inner + 1 < p {
                let q = rows * geom.d as u64;
                let dout = rows * geom.dv as u64;
                if s.send_ro {
                    w.mat(false, q);
                    w.mat(false, dout);
                    w.vec(false, rows);
                    w.vec(false, rows);
                } else {
                    w.skipped_mat_elems += q + dout;
                    w.skipped_vec_elems += 2 * rows;
                }
            }
            let dq = rows * geom.d as u64;
            let inter = s.diag && n > 1;
            if s.send_dq {
                w.mat(inter, dq);
            } else {
                w.skipped_mat_elems += dq;
            }
        }
    }
    if !plan.dr_alg2_final(me) {
        w.rounds_skipped += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn causal_plan(g: usize, n: usize) -> SkipPlan {
        SkipPlan::build(&AttnMask::Causal, Layout::Contiguous, n, g, None)
    }

    #[test]
    fn dense_plan_gates_everything_on() {
        let p = SkipPlan::dense(4);
        for x in 0..4 {
            for h in 0..4 {
                assert!(p.alg1_kv_hop(x, h));
                assert!(p.alg1_dkv_hop(x, h));
                assert!(p.alg2_ro_hop(x, h));
                assert!(p.alg2_dq_hop(x, h));
                assert!(!p.flat_fwd_round(x, h).idle());
                assert!(!p.flat_alg1_round(x, h).idle());
                assert!(!p.flat_alg2_round(x, h).idle());
            }
            assert!(p.flat_alg2_final(x));
            assert_eq!(p.flat_alg1_bufs(x), (true, true));
            assert_eq!(p.flat_alg2_bufs(x), (true, true, true));
            assert!(p.flat_fwd_recv_any(x));
        }
    }

    #[test]
    fn causal_contiguous_liveness_is_lower_triangular() {
        let g = 4;
        let p = causal_plan(g, 16);
        for q in 0..g {
            for k in 0..g {
                assert_eq!(p.live(q, k), k <= q, "tile ({q},{k})");
            }
        }
        // Forward: shard c is forwarded at hop h iff a rank > c still needs
        // it, i.e. h ≤ g−2−c; the last shard never moves.
        for c in 0..g {
            for h in 0..g - 1 {
                assert_eq!(p.fwd_kv_hop(c, h), h + c + 1 < g, "shard {c} hop {h}");
            }
        }
        // Alg 1 homecoming kv hop is always gated off on built plans.
        for c in 0..g {
            assert!(!p.alg1_kv_hop(c, g - 1));
        }
    }

    #[test]
    fn dense_census_matches_closed_forms() {
        // G ranks, r rows each, square heads: forward 2(G−1) mats per rank,
        // alg1 4G mats, alg2 (G−1)(2 mats + 2 vecs) + G dq mats.
        let (g, r, d) = (4, 3, 8);
        let plan = SkipPlan::dense(g);
        let geom = RingGeom {
            rows: vec![r; g],
            d,
            dv: d,
        };
        for me in 0..g {
            let f = census_flat_forward(&plan, &geom, false, me);
            assert_eq!(f.msgs(), 2 * (g as u64 - 1));
            assert_eq!(f.mat_elems(), 2 * (g as u64 - 1) * (r * d) as u64);
            assert_eq!(f.rounds_skipped, 0);
            assert_eq!(f.skipped_mat_elems, 0);

            let a1 = census_flat_alg1(&plan, &geom, false, me);
            assert_eq!(a1.msgs(), 4 * g as u64);
            assert_eq!(a1.mat_elems(), 4 * g as u64 * (r * d) as u64);

            let a2 = census_flat_alg2(&plan, &geom, false, me);
            assert_eq!(a2.msgs(), 4 * (g as u64 - 1) + g as u64);
            assert_eq!(
                a2.mat_elems(),
                2 * (g as u64 - 1) * (r * d) as u64 + g as u64 * (r * d) as u64
            );
            assert_eq!(a2.vec_elems(), 2 * (g as u64 - 1) * r as u64);
        }
    }

    #[test]
    fn masked_census_duals_to_dense() {
        // sent + skipped == dense schedule totals, per rank, any mask.
        let g = 4;
        let n = 32;
        let geom = RingGeom {
            rows: vec![n / g; g],
            d: 8,
            dv: 8,
        };
        let dense = SkipPlan::dense(g);
        for mask in [
            AttnMask::Causal,
            AttnMask::SlidingWindow { window: 6 },
            AttnMask::Dilated { window: 9, step: 2 },
        ] {
            let plan = SkipPlan::build(&mask, Layout::Contiguous, n, g, None);
            for me in 0..g {
                let m = census_flat_forward(&plan, &geom, false, me);
                let d0 = census_flat_forward(&dense, &geom, false, me);
                assert_eq!(m.mat_elems() + m.skipped_mat_elems, d0.mat_elems());
                let m = census_flat_alg1(&plan, &geom, false, me);
                let d0 = census_flat_alg1(&dense, &geom, false, me);
                assert_eq!(m.mat_elems() + m.skipped_mat_elems, d0.mat_elems());
                let m = census_flat_alg2(&plan, &geom, false, me);
                let d0 = census_flat_alg2(&dense, &geom, false, me);
                assert_eq!(m.mat_elems() + m.skipped_mat_elems, d0.mat_elems());
                assert_eq!(m.vec_elems() + m.skipped_vec_elems, d0.vec_elems());
            }
        }
    }

    #[test]
    fn window_mask_skips_far_rounds() {
        // Contiguous layout, narrow window: distant tiles are dead, so some
        // rounds are idle and some hops are gated off.
        let g = 4;
        let plan = SkipPlan::build(
            &AttnMask::SlidingWindow { window: 8 },
            Layout::Contiguous,
            32,
            g,
            None,
        );
        // Tile (q-shard 3, kv-shard 0): rows 24..32 vs keys 0..8 — distance
        // ≥ 17 > window, fully masked.
        assert!(!plan.live(3, 0));
        assert!(plan.live(3, 3) && plan.live(3, 2));
        let geom = RingGeom {
            rows: vec![8; g],
            d: 4,
            dv: 4,
        };
        let total: u64 = (0..g)
            .map(|me| census_flat_forward(&plan, &geom, false, me).rounds_skipped)
            .sum();
        assert!(total > 0, "expected idle forward rounds under the window");
        let dense_total: u64 = (0..g)
            .map(|me| census_flat_forward(&SkipPlan::dense(g), &geom, false, me).msgs())
            .sum();
        let masked_total: u64 = (0..g)
            .map(|me| census_flat_forward(&plan, &geom, false, me).msgs())
            .sum();
        assert!(masked_total < dense_total);
    }

    #[test]
    fn empty_row_gates_dq_homecoming_off() {
        // With max_token cutting rank 3's rows to zero, its bundle is dead:
        // row_any(3) is false and the final ∇Q homecoming is gated off.
        let plan = SkipPlan::build(&AttnMask::Causal, Layout::Contiguous, 32, 4, Some(24));
        assert!(!plan.row_any(3));
        assert!(!plan.flat_alg2_final(3));
        assert!(plan.flat_alg2_final(0));
    }

    #[test]
    fn dr_dense_census_matches_closed_forms() {
        // fwd + alg1 message counts per rank on a dense double ring:
        // inter = 6(n−1)+2 when n>1, intra = 6n(p−1)+2(n mod p).
        let r = 4usize;
        for (n, p) in [(2usize, 2usize), (3, 2), (2, 3), (1, 4), (4, 1), (2, 1)] {
            let g = n * p;
            let plan = SkipPlan::dense(g);
            let geom = RingGeom {
                rows: vec![r; g],
                d: 8,
                dv: 8,
            };
            let exp_inter = if n > 1 { 6 * (n as u64 - 1) + 2 } else { 0 };
            let exp_intra = 6 * (n as u64) * (p as u64 - 1) + 2 * (n % p) as u64;
            for me in 0..g {
                let w = census_dr_forward(&plan, &geom, n, p, me)
                    .add(&census_dr_alg1(&plan, &geom, n, p, me));
                assert_eq!(w.inter_msgs, exp_inter, "n={n} p={p} me={me}");
                assert_eq!(w.intra_msgs, exp_intra, "n={n} p={p} me={me}");
                assert_eq!(w.rounds_skipped, 0);
                assert_eq!(w.skipped_mat_elems, 0);

                // Alg2: RO boundaries are 4 msgs each, diagonal ∇Q hops are
                // inter only across real node edges.
                let a2 = census_dr_alg2(&plan, &geom, n, p, me);
                let (e_inter, e_intra) = if g == 1 {
                    (0, 0)
                } else if n > 1 {
                    (4 * (n as u64 - 1) + n as u64, 5 * n as u64 * (p as u64 - 1))
                } else {
                    (0, 5 * (p as u64 - 1) + 1)
                };
                assert_eq!(a2.inter_msgs, e_inter, "alg2 n={n} p={p} me={me}");
                assert_eq!(a2.intra_msgs, e_intra, "alg2 n={n} p={p} me={me}");
            }
        }
    }

    #[test]
    fn dr_masked_census_duals_to_dense() {
        // sent + skipped == dense totals per rank on the double ring too.
        let seq = 48;
        for (n, p) in [(2usize, 3usize), (3, 2), (2, 2)] {
            let g = n * p;
            let geom = RingGeom {
                rows: vec![seq / g; g],
                d: 8,
                dv: 8,
            };
            let dense = SkipPlan::dense(g);
            for mask in [
                AttnMask::Causal,
                AttnMask::SlidingWindow { window: 7 },
                AttnMask::Dilated { window: 9, step: 2 },
            ] {
                let plan = SkipPlan::build(&mask, Layout::Contiguous, seq, g, None);
                for me in 0..g {
                    for (m, d0) in [
                        (
                            census_dr_forward(&plan, &geom, n, p, me),
                            census_dr_forward(&dense, &geom, n, p, me),
                        ),
                        (
                            census_dr_alg1(&plan, &geom, n, p, me),
                            census_dr_alg1(&dense, &geom, n, p, me),
                        ),
                        (
                            census_dr_alg2(&plan, &geom, n, p, me),
                            census_dr_alg2(&dense, &geom, n, p, me),
                        ),
                    ] {
                        assert_eq!(m.mat_elems() + m.skipped_mat_elems, d0.mat_elems());
                        assert_eq!(m.vec_elems() + m.skipped_vec_elems, d0.vec_elems());
                    }
                }
            }
        }
    }

    #[test]
    fn dr_gates_agree_between_sender_and_receiver() {
        // Every receive gate must equal the matching sender's send gate, and
        // both sides must name the same shard — the loop's hold-consistency
        // invariant (an Absent hold is never read).
        let seq = 48;
        for (n, p) in [(2usize, 3usize), (3, 2), (4, 2)] {
            let g = n * p;
            let intra_prev = |me: usize| (me / p) * p + (me % p + p - 1) % p;
            let peer_prev = |me: usize| ((me / p + n - 1) % n) * p + me % p;
            let diag_prev = |me: usize| ((me / p + n - 1) % n) * p + (me % p + p - 1) % p;
            for mask in [
                AttnMask::SlidingWindow { window: 7 },
                AttnMask::Dilated { window: 9, step: 3 },
            ] {
                let plan = SkipPlan::build(&mask, Layout::Contiguous, seq, g, None);
                for me in 0..g {
                    for o in 0..n {
                        let op = plan.dr_fwd_outer(me, o, n, p);
                        let pp = plan.dr_fwd_outer(peer_prev(me), o, n, p);
                        assert_eq!(op.recv_inter, pp.send_inter);
                        assert_eq!(op.start_in, pp.start_shard);
                        let o2 = plan.dr_alg2_outer(me, o, n, p);
                        let p2 = plan.dr_alg2_outer(peer_prev(me), o, n, p);
                        assert_eq!(o2.recv_inter, p2.send_inter);
                        for i in 0..p {
                            let s = plan.dr_fwd_slot(me, o, i, n, p);
                            let sp = plan.dr_fwd_slot(intra_prev(me), o, i, n, p);
                            assert_eq!(s.recv, sp.send);
                            if s.recv {
                                assert_eq!(s.shard_in, sp.shard);
                            }
                            let b = plan.dr_alg2_slot(me, o, i, n, p);
                            let bp = plan.dr_alg2_slot(intra_prev(me), o, i, n, p);
                            assert_eq!(b.recv_ro, bp.send_ro);
                            // ∇Q stream: my receive at slot t pairs with the
                            // previous slot-holder's send at t−1.
                            let t = o * p + i;
                            if t > 0 {
                                let (po, pi) = ((t - 1) / p, (t - 1) % p);
                                let sender = if i == 0 {
                                    diag_prev(me)
                                } else {
                                    intra_prev(me)
                                };
                                let sb = plan.dr_alg2_slot(sender, po, pi, n, p);
                                assert_eq!(b.recv_dq, sb.send_dq);
                                assert_eq!(b.bundle, sb.bundle);
                            }
                        }
                    }
                    for t in 0..g {
                        let s = plan.dr_alg1_slot(me, t, n, p);
                        let src = if t % p == p - 1 {
                            peer_prev(me)
                        } else {
                            intra_prev(me)
                        };
                        let ss = plan.dr_alg1_slot(src, t, n, p);
                        assert_eq!(s.recv_kv, ss.send_kv);
                        assert_eq!(s.recv_dkv, ss.send_dkv);
                        if s.recv_kv || s.recv_dkv {
                            assert_eq!(s.shard_in, ss.shard);
                        }
                        // Compute requires the shard to actually be here: any
                        // step with compute on must have had last hop's recv
                        // on (or hold the local shard at t = 0).
                        if s.compute && t > 0 {
                            let prev = plan.dr_alg1_slot(me, t - 1, n, p);
                            assert!(prev.recv_kv, "t={t} me={me} n={n} p={p}");
                        }
                    }
                    // Homecoming: the diagonal sender's last-slot ∇Q gate must
                    // equal this rank's final-receive gate.
                    let sb = plan.dr_alg2_slot(diag_prev(me), n - 1, p - 1, n, p);
                    assert_eq!(sb.bundle, me);
                    assert_eq!(sb.send_dq, plan.dr_alg2_final(me));
                }
            }
        }
    }

    #[test]
    fn dr_fwd_compute_implies_shard_present() {
        // Monotone-superset chains: a live compute slot always has its shard
        // delivered (start chain across sweeps, intra chain within).
        let seq = 60;
        let (n, p) = (3usize, 2usize);
        let g = n * p;
        let plan = SkipPlan::build(
            &AttnMask::SlidingWindow { window: 11 },
            Layout::Contiguous,
            seq,
            g,
            None,
        );
        for me in 0..g {
            for o in 0..n {
                let have_start = o == 0 || plan.dr_fwd_outer(me, o - 1, n, p).recv_inter;
                for i in 0..p {
                    let s = plan.dr_fwd_slot(me, o, i, n, p);
                    if !s.compute {
                        continue;
                    }
                    if i == 0 {
                        assert!(have_start, "me={me} o={o}");
                    } else {
                        assert!(
                            plan.dr_fwd_slot(me, o, i - 1, n, p).recv,
                            "me={me} o={o} i={i}"
                        );
                    }
                }
            }
        }
    }
}
